"""Multi-accelerator model sharding: planner + pipeline executor.

One Trident has a fixed bank budget; a model that overflows it is served
by splitting it across several accelerators as a layer pipeline (with
wide layers optionally row-sharded across chips).  :func:`plan_pipeline`
chooses the cut points from the dataflow cost model;
:func:`build_pipeline` programs one accelerator per stage part and
returns a :class:`ShardedPipeline` whose outputs are bit-identical to a
single large reference accelerator.  The serving-side pipeline worker
(overlapped stage execution, per-stage breakers/fault managers) lives in
:mod:`repro.serving.sharded`.
"""

from repro.sharding.pipeline import (
    PipelineStage,
    ShardedPipeline,
    build_pipeline,
    reference_weight_scale,
    slice_stage_weights,
)
from repro.sharding.planner import (
    ShardPlan,
    StageSpec,
    layer_tile_count,
    plan_from_cuts,
    plan_pipeline,
    reduction_tile_count,
)

__all__ = [
    "PipelineStage",
    "ShardPlan",
    "ShardedPipeline",
    "StageSpec",
    "build_pipeline",
    "layer_tile_count",
    "plan_from_cuts",
    "plan_pipeline",
    "reduction_tile_count",
    "reference_weight_scale",
    "slice_stage_weights",
]
