"""Cost-model-driven cut-point planning for multi-accelerator pipelines.

One Trident instance has a fixed bank budget (``TridentConfig.n_pes``
PEs of ``bank_rows x bank_cols`` cells), so a model whose tile count
exceeds that budget cannot be mapped at all — :class:`~repro.arch.
TridentAccelerator.map_mlp` rejects it.  The planner splits such a model
across several accelerators as a *layer pipeline*: contiguous layer
ranges become stages, each stage mapped onto its own accelerator, and a
sample flows stage 0 -> 1 -> ... -> K-1 exactly as it would flow layer
by layer on one large machine.

Cut points come from the dataflow cost model, not from heuristics
(Andrulis et al., arxiv 2405.07266: drive placement from the
architecture model).  Each candidate stage ``[i, j)`` is priced with
:func:`repro.dataflow.cost_model.forward_batch_latency_s` — the same
estimate the serving micro-batcher and admission control already trust —
and a dynamic program picks, among all partitions with the minimal
feasible stage count (or an explicitly requested count), the one that
minimizes the *bottleneck* stage latency, tie-breaking on pipeline fill
time.  The bottleneck is what bounds steady-state pipelined throughput
(one batch leaves the pipeline per bottleneck interval once it is full),
so minimizing it is exactly the latency-hiding objective; keeping the
search parameterized on :class:`~repro.dataflow.cost_model.PhotonicArch`
keeps it honest for other ring geometries too (Vatsavai et al., arxiv
2402.03149).

A single layer wider than one accelerator (its tile count alone exceeds
``n_pes``) becomes a *row-sharded* stage: its output rows split at
bank-row boundaries across several accelerators that all receive the
same input and whose row slices concatenate back into the full layer
output.  Because row strips are the unit of the reference tile grid, a
row-sharded stage reproduces the single-accelerator math bit for bit
(see :mod:`repro.sharding.pipeline` for the equivalence argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import TridentConfig
from repro.dataflow.cost_model import PhotonicArch, forward_batch_latency_s
from repro.errors import ShardingError


def layer_tile_count(out_dim: int, in_dim: int, rows: int, cols: int) -> int:
    """PE tiles one dense layer occupies on a ``rows x cols`` bank grid."""
    return -(-out_dim // rows) * (-(-in_dim // cols))


def reduction_tile_count(in_dim: int, cols: int) -> int:
    """Column (reduction) tiles of one layer — the serialized latency term."""
    return -(-in_dim // cols)


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a contiguous layer range on >= 1 accelerators."""

    index: int
    #: First (inclusive) and last (exclusive) full-model layer index.
    layer_start: int
    layer_stop: int
    #: Layer widths of the stage sub-network: input width plus each
    #: member layer's output width (``len == layer_stop - layer_start + 1``).
    dims: tuple[int, ...]
    #: Output-row ranges, one per accelerator part.  A plain pipeline
    #: stage has one full-range part; a row-sharded wide layer has
    #: several, split at bank-row boundaries.
    row_splits: tuple[tuple[int, int], ...]
    #: Total PE tiles across all parts (capacity accounting).
    n_tiles: int
    #: Cost-model latency of one planning-batch dispatch through this stage.
    service_time_s: float

    @property
    def n_layers(self) -> int:
        """Member layer count."""
        return self.layer_stop - self.layer_start

    @property
    def n_parts(self) -> int:
        """Accelerators this stage spans (1 unless row-sharded)."""
        return len(self.row_splits)

    @property
    def row_sharded(self) -> bool:
        """True when a wide layer's rows are split across accelerators."""
        return len(self.row_splits) > 1

    def as_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "index": self.index,
            "layers": [self.layer_start, self.layer_stop],
            "dims": list(self.dims),
            "row_splits": [list(r) for r in self.row_splits],
            "n_tiles": self.n_tiles,
            "n_parts": self.n_parts,
            "service_time_s": self.service_time_s,
        }


@dataclass(frozen=True)
class ShardPlan:
    """A full pipeline partition of one model, with its cost profile."""

    #: Full-model layer widths the plan was computed for.
    dims: tuple[int, ...]
    stages: tuple[StageSpec, ...]
    #: Batch size the stage latencies were priced at.
    batch: int
    #: Per-shard PE budget the plan respects.
    capacity_tiles: int

    @property
    def n_stages(self) -> int:
        """Pipeline depth."""
        return len(self.stages)

    @property
    def n_accelerators(self) -> int:
        """Total accelerators across all stages (row shards included)."""
        return sum(s.n_parts for s in self.stages)

    @property
    def bottleneck_s(self) -> float:
        """Slowest stage latency — the steady-state pipeline interval."""
        return max(s.service_time_s for s in self.stages)

    @property
    def fill_s(self) -> float:
        """One batch's end-to-end traversal (pipeline fill) time."""
        return sum(s.service_time_s for s in self.stages)

    def pipeline_latency_s(self, n_batches: int) -> float:
        """Makespan of ``n_batches`` back-to-back with stage overlap.

        Identical batches through an infinite-buffer linear pipeline:
        fill once, then one batch per bottleneck interval.
        """
        if n_batches < 1:
            raise ShardingError(f"need >= 1 batch, got {n_batches}")
        return self.fill_s + (n_batches - 1) * self.bottleneck_s

    def serialized_latency_s(self, n_batches: int) -> float:
        """Makespan with stages serialized (one batch owns the pipeline)."""
        if n_batches < 1:
            raise ShardingError(f"need >= 1 batch, got {n_batches}")
        return n_batches * self.fill_s

    def overlap_speedup(self, n_batches: int) -> float:
        """Serialized / pipelined makespan ratio for a batch stream."""
        return self.serialized_latency_s(n_batches) / self.pipeline_latency_s(
            n_batches
        )

    def as_dict(self) -> dict:
        """JSON-friendly summary."""
        return {
            "dims": list(self.dims),
            "batch": self.batch,
            "capacity_tiles": self.capacity_tiles,
            "n_stages": self.n_stages,
            "n_accelerators": self.n_accelerators,
            "bottleneck_s": self.bottleneck_s,
            "fill_s": self.fill_s,
            "stages": [s.as_dict() for s in self.stages],
        }

    def render(self) -> str:
        """Human-readable stage table."""
        lines = [
            f"shard plan: dims {list(self.dims)}, "
            f"{self.n_stages} stage(s) on {self.n_accelerators} "
            f"accelerator(s), capacity {self.capacity_tiles} tiles/shard",
        ]
        for s in self.stages:
            parts = (
                f"{s.n_parts} row shards" if s.row_sharded else "1 accelerator"
            )
            lines.append(
                f"  stage {s.index}: layers [{s.layer_start}, {s.layer_stop})"
                f" dims {list(s.dims)}  {s.n_tiles} tiles on {parts}"
                f"  service {s.service_time_s * 1e6:.3f} us"
            )
        lines.append(
            f"  bottleneck {self.bottleneck_s * 1e6:.3f} us, "
            f"fill {self.fill_s * 1e6:.3f} us, "
            f"overlap speedup at 32 batches {self.overlap_speedup(32):.2f}x"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------
def _row_splits_for_wide_layer(
    out_dim: int, in_dim: int, config: TridentConfig
) -> tuple[tuple[int, int], ...]:
    """Split a too-wide layer's output rows at bank-row boundaries."""
    J, N = config.bank_rows, config.bank_cols
    red = reduction_tile_count(in_dim, N)
    strips_per_part = config.n_pes // red
    if strips_per_part < 1:
        raise ShardingError(
            f"layer ({out_dim} x {in_dim}) needs {red} reduction tiles per "
            f"row strip but a shard has only {config.n_pes} PEs; column "
            "sharding is not supported — enlarge the shard configuration"
        )
    total_strips = -(-out_dim // J)
    n_parts = -(-total_strips // strips_per_part)
    splits = []
    for p in range(n_parts):
        r0 = p * strips_per_part * J
        r1 = min((p + 1) * strips_per_part * J, out_dim)
        splits.append((r0, r1))
    return tuple(splits)


def _stage_spec(
    index: int,
    layer_start: int,
    layer_stop: int,
    dims: tuple[int, ...],
    arch: PhotonicArch,
    config: TridentConfig,
    batch: int,
    overhead_s: float,
) -> StageSpec:
    """Build one StageSpec (row-sharding the layer if it alone overflows)."""
    J, N = config.bank_rows, config.bank_cols
    stage_dims = dims[layer_start : layer_stop + 1]
    tiles = sum(
        layer_tile_count(o, i, J, N)
        for i, o in zip(stage_dims[:-1], stage_dims[1:])
    )
    if tiles <= config.n_pes:
        # A fitting stage is never row-sharded; record the full range of
        # its final layer for uniformity.
        row_splits = ((0, stage_dims[-1]),)
    else:
        if layer_stop - layer_start != 1:
            raise ShardingError(
                f"stage [{layer_start}, {layer_stop}) needs {tiles} tiles "
                f"but a shard has {config.n_pes} PEs, and only a single "
                "wide layer can be row-sharded — cut the stage further"
            )
        row_splits = _row_splits_for_wide_layer(
            stage_dims[1], stage_dims[0], config
        )
    reduction = [
        reduction_tile_count(i, N) for i in stage_dims[:-1]
    ]
    service = forward_batch_latency_s(
        arch, reduction, batch, overhead_s=overhead_s
    )
    return StageSpec(
        index=index,
        layer_start=layer_start,
        layer_stop=layer_stop,
        dims=tuple(stage_dims),
        row_splits=row_splits,
        n_tiles=tiles,
        service_time_s=service,
    )


def plan_pipeline(
    dims: "list[int] | tuple[int, ...]",
    config: TridentConfig | None = None,
    *,
    n_stages: int | None = None,
    batch: int = 16,
    overhead_s: float = 1e-6,
) -> ShardPlan:
    """Choose pipeline cut points for ``dims`` under a per-shard budget.

    Searches every contiguous partition of the layer list (dynamic
    program, O(L^2 K)) for the one that, at the minimal feasible stage
    count — or exactly ``n_stages`` when given — minimizes the
    bottleneck stage latency and, among ties, the pipeline fill time.
    A stage is feasible when its tiles fit one accelerator, or when it
    is a single wide layer that row-sharding can spread (each row strip's
    reduction tiles must fit).  ``batch`` and ``overhead_s`` parameterize
    the cost model exactly as serving dispatch does.
    """
    config = config or TridentConfig()
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2:
        raise ShardingError("a model needs at least input and output widths")
    if any(d < 1 for d in dims):
        raise ShardingError(f"layer widths must be positive, got {list(dims)}")
    if batch < 1:
        raise ShardingError(f"batch must be positive, got {batch}")
    arch = PhotonicArch.trident(config)
    L = len(dims) - 1
    J, N = config.bank_rows, config.bank_cols
    tiles = [
        layer_tile_count(o, i, J, N) for i, o in zip(dims[:-1], dims[1:])
    ]

    def feasible(i: int, j: int) -> bool:
        total = sum(tiles[i:j])
        if total <= config.n_pes:
            return True
        if j - i != 1:
            return False
        # Wide single layer: row-shardable iff one strip fits.
        return config.n_pes >= reduction_tile_count(dims[i], N)

    def cost(i: int, j: int) -> float:
        reduction = [reduction_tile_count(d, N) for d in dims[i:j]]
        return forward_batch_latency_s(
            arch, reduction, batch, overhead_s=overhead_s
        )

    INF = float("inf")
    # Minimal stage count to cover [i, L).
    min_stages = [INF] * (L + 1)
    min_stages[L] = 0
    for i in range(L - 1, -1, -1):
        for j in range(i + 1, L + 1):
            if feasible(i, j) and min_stages[j] + 1 < min_stages[i]:
                min_stages[i] = min_stages[j] + 1
    if min_stages[0] == INF:
        raise ShardingError(
            f"no feasible pipeline partition of dims {list(dims)} under "
            f"{config.n_pes} PEs/shard ({J} x {N} banks)"
        )
    k_min = int(min_stages[0])
    K = k_min if n_stages is None else int(n_stages)
    if K < k_min:
        raise ShardingError(
            f"{K} stage(s) requested but capacity needs at least {k_min}"
        )
    if K > L:
        raise ShardingError(
            f"{K} stage(s) requested but the model has only {L} layer(s)"
        )

    # best[k][i] = (bottleneck, fill) covering [i, L) in exactly k stages.
    best: list[list[tuple[float, float]]] = [
        [(INF, INF)] * (L + 1) for _ in range(K + 1)
    ]
    cut: list[list[int]] = [[-1] * (L + 1) for _ in range(K + 1)]
    best[0][L] = (0.0, 0.0)
    for k in range(1, K + 1):
        for i in range(L - 1, -1, -1):
            for j in range(i + 1, L + 1):
                if not feasible(i, j):
                    continue
                tail_bottleneck, tail_fill = best[k - 1][j]
                if tail_bottleneck == INF:
                    continue
                c = cost(i, j)
                candidate = (max(c, tail_bottleneck), c + tail_fill)
                if candidate < best[k][i]:
                    best[k][i] = candidate
                    cut[k][i] = j
    if best[K][0][0] == INF:
        raise ShardingError(
            f"no feasible partition of dims {list(dims)} into exactly "
            f"{K} stage(s) under {config.n_pes} PEs/shard"
        )

    stages: list[StageSpec] = []
    i, k = 0, K
    while k > 0:
        j = cut[k][i]
        stages.append(
            _stage_spec(
                len(stages), i, j, dims, arch, config, batch, overhead_s
            )
        )
        i, k = j, k - 1
    return ShardPlan(
        dims=dims,
        stages=tuple(stages),
        batch=batch,
        capacity_tiles=config.n_pes,
    )


def plan_from_cuts(
    dims: "list[int] | tuple[int, ...]",
    cuts: "list[int] | tuple[int, ...]",
    config: TridentConfig | None = None,
    *,
    batch: int = 16,
    overhead_s: float = 1e-6,
) -> ShardPlan:
    """Build a plan from explicit cut points (for tests and what-ifs).

    ``cuts`` are the interior layer indices where the pipeline is split:
    ``cuts=(2,)`` over a 4-layer model yields stages [0, 2) and [2, 4).
    Every stage must still respect the per-shard capacity (row-sharding
    a wide single layer as the planner would).
    """
    config = config or TridentConfig()
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2:
        raise ShardingError("a model needs at least input and output widths")
    L = len(dims) - 1
    boundaries = [0, *sorted(int(c) for c in cuts), L]
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        if not 0 <= a < b <= L:
            raise ShardingError(
                f"invalid cut points {list(cuts)} for {L} layer(s)"
            )
    if len(set(boundaries)) != len(boundaries):
        raise ShardingError(f"duplicate cut points in {list(cuts)}")
    arch = PhotonicArch.trident(config)
    stages = [
        _stage_spec(index, a, b, dims, arch, config, batch, overhead_s)
        for index, (a, b) in enumerate(zip(boundaries[:-1], boundaries[1:]))
    ]
    for stage in stages:
        if not stage.row_sharded and stage.n_tiles > config.n_pes:
            raise ShardingError(
                f"stage {stage.index} needs {stage.n_tiles} tiles but a "
                f"shard has {config.n_pes} PEs"
            )
    return ShardPlan(
        dims=dims,
        stages=tuple(stages),
        batch=batch,
        capacity_tiles=config.n_pes,
    )
