"""Execute one model across several accelerators, bit-identically.

:func:`build_pipeline` takes a :class:`~repro.sharding.planner.ShardPlan`
plus the model's true-valued weight matrices and instantiates one
:class:`~repro.arch.TridentAccelerator` per stage part, each mapping its
contiguous layer range (or its row slice of a wide layer).  The resulting
:class:`ShardedPipeline` exposes the single-accelerator inference surface
— ``forward`` / ``forward_batch``, merged :class:`~repro.arch.
accelerator.EventCounters`, energy/time estimates, ``state_dict`` /
``load_state_dict`` — so callers swap a pipeline in wherever an
accelerator fit before.

Why the outputs are bit-identical to one large reference accelerator:

* **Contiguous stages.**  Each layer's forward pass normalizes its own
  input per sample, streams tiles, rescales by ``enc.scale *
  weight_scale``, and applies the activation — a pure function of
  (input, programmed levels, weight_scale).  Handing layer k's output to
  layer k+1 on a different chip changes nothing in that chain, provided
  the programmed levels match; they do, because both sides quantize the
  same weight blocks on the same level grid (use deterministic
  program-verify, ``write_std_levels=0``, or no verify at all on both
  sides — stochastic writes on *either* side break bit-identity by
  construction).
* **Row-sharded stages.**  The planner splits output rows at bank-row
  boundaries, so every part's tiles coincide with a subset of the
  reference layer's tile grid (same row/col blocks, hence identical
  quantized levels), each part receives the identical full stage input
  (identical per-sample normalization), and
  :meth:`~repro.devices.activation_cell.GSTActivationCell.fire` is
  elementwise — concatenating the parts' row slices reproduces the
  reference layer output exactly.  The one requirement is that every
  part quantizes with the *full* matrix's analog scale, which is what
  the ``weight_scales`` override on ``set_weights`` is for.

Event/energy accounting is conserved, not just approximated: the union
of all parts' tiles is the reference tile set, so ``bank_writes``,
``cells_written``, ``symbols``, and ``activation_events`` sum to the
reference counts, and the energy/time estimates (pure functions of
those events) sum likewise.  Only ``mode_switches`` scales with the
accelerator count — every chip pays its own inference-mode entry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.accelerator import EventCounters, TridentAccelerator
from repro.arch.config import TridentConfig
from repro.devices.noise import NoiseModel
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import CheckpointError, ShapeError, ShardingError
from repro.sharding.planner import ShardPlan, StageSpec
from repro.telemetry.session import trace_span as _trace_span


def reference_weight_scale(weights: np.ndarray) -> float:
    """The analog scale one large accelerator would derive for a matrix."""
    peak = float(np.max(np.abs(weights))) if weights.size else 0.0
    return peak if peak > 1.0 else 1.0


@dataclass
class PipelineStage:
    """One executing stage: its spec and its accelerator part(s)."""

    spec: StageSpec
    #: One accelerator per row split (exactly one unless row-sharded).
    parts: list[TridentAccelerator]

    @property
    def in_dim(self) -> int:
        """Stage input width."""
        return self.spec.dims[0]

    @property
    def out_dim(self) -> int:
        """Stage output width."""
        return self.spec.dims[-1]

    def forward_batch(self, xs: np.ndarray, record: bool = False) -> np.ndarray:
        """Run a (B, in_dim) slab through this stage's accelerators."""
        if len(self.parts) == 1:
            return self.parts[0].forward_batch(xs, record=record)
        # Row-sharded: every part sees the identical full input and owns
        # a row slice of the output; concatenation restores the layer.
        return np.concatenate(
            [part.forward_batch(xs, record=record) for part in self.parts],
            axis=1,
        )

    def forward(self, x: np.ndarray, record: bool = False) -> np.ndarray:
        """Per-sample counterpart of :meth:`forward_batch`."""
        if len(self.parts) == 1:
            return self.parts[0].forward(x, record=record)
        return np.concatenate(
            [part.forward(x, record=record) for part in self.parts]
        )


class ShardedPipeline:
    """A model running as a layer pipeline over several accelerators."""

    def __init__(self, plan: ShardPlan, stages: list[PipelineStage]) -> None:
        if len(stages) != plan.n_stages:
            raise ShardingError(
                f"plan has {plan.n_stages} stages but {len(stages)} were built"
            )
        self.plan = plan
        self.stages = stages

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Model input width."""
        return self.plan.dims[0]

    @property
    def output_dim(self) -> int:
        """Model output width."""
        return self.plan.dims[-1]

    @property
    def accelerators(self) -> list[TridentAccelerator]:
        """Every accelerator in pipeline order (stage-major, then part)."""
        return [part for stage in self.stages for part in stage.parts]

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward_batch(self, xs: np.ndarray, record: bool = False) -> np.ndarray:
        """Forward a (B, input_dim) batch stage by stage.

        Functionally identical (bit for bit, under deterministic
        programming) to ``forward_batch`` on one large accelerator
        mapping the full model — see the module docstring for why.
        """
        value = np.asarray(xs, dtype=np.float64)
        if value.ndim != 2 or value.shape[1] != self.input_dim:
            raise ShapeError(
                f"expected a (B, {self.input_dim}) batch, got {value.shape}"
            )
        with _trace_span(
            "sharded_forward_batch",
            stages=len(self.stages),
            batch=value.shape[0],
        ):
            for stage in self.stages:
                with _trace_span(
                    "pipeline_stage",
                    stage=stage.spec.index,
                    parts=len(stage.parts),
                    batch=value.shape[0],
                ):
                    value = stage.forward_batch(value, record=record)
        return value

    def forward(self, x: np.ndarray, record: bool = False) -> np.ndarray:
        """Forward one sample stage by stage."""
        value = np.asarray(x, dtype=np.float64)
        if value.shape != (self.input_dim,):
            raise ShapeError(
                f"input shape {value.shape} != ({self.input_dim},)"
            )
        with _trace_span("sharded_forward", stages=len(self.stages)):
            for stage in self.stages:
                with _trace_span(
                    "pipeline_stage",
                    stage=stage.spec.index,
                    parts=len(stage.parts),
                ):
                    value = stage.forward(value, record=record)
        return value

    # ------------------------------------------------------------------
    # Merged accounting
    # ------------------------------------------------------------------
    def counters(self) -> EventCounters:
        """Event counters summed over every accelerator."""
        merged = EventCounters()
        for acc in self.accelerators:
            c = acc.counters
            merged.bank_writes += c.bank_writes
            merged.cells_written += c.cells_written
            merged.symbols += c.symbols
            merged.activation_events += c.activation_events
            merged.mode_switches += c.mode_switches
        return merged

    def energy_estimate_j(self) -> float:
        """Total energy across all accelerators."""
        return sum(acc.energy_estimate_j() for acc in self.accelerators)

    def time_estimate_s(self) -> float:
        """Total serialized hardware time across all accelerators."""
        return sum(acc.time_estimate_s() for acc in self.accelerators)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the plan shape plus every accelerator's full state."""
        return {
            "dims": list(self.plan.dims),
            "stage_parts": [len(stage.parts) for stage in self.stages],
            "accelerators": [acc.state_dict() for acc in self.accelerators],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this pipeline."""
        if list(state["dims"]) != list(self.plan.dims):
            raise CheckpointError(
                f"snapshot is for dims {state['dims']}, "
                f"this pipeline maps {list(self.plan.dims)}"
            )
        if state["stage_parts"] != [len(s.parts) for s in self.stages]:
            raise CheckpointError(
                f"snapshot stage shape {state['stage_parts']} != this "
                f"pipeline's {[len(s.parts) for s in self.stages]}"
            )
        for acc, snapshot in zip(self.accelerators, state["accelerators"]):
            acc.load_state_dict(snapshot)


def slice_stage_weights(
    plan: ShardPlan, weights: "list[np.ndarray]"
) -> "list[list[tuple[list[np.ndarray], list[float]]]]":
    """Per-stage, per-part (weight matrices, scale overrides) lists.

    Scales always come from the *full* matrices so row-sharded parts
    quantize exactly as the reference accelerator would.
    """
    if len(weights) != len(plan.dims) - 1:
        raise ShardingError(
            f"got {len(weights)} weight matrices for "
            f"{len(plan.dims) - 1} layers"
        )
    arrays = [np.asarray(w, dtype=np.float64) for w in weights]
    for k, (w, n_in, n_out) in enumerate(
        zip(arrays, plan.dims[:-1], plan.dims[1:])
    ):
        if w.shape != (n_out, n_in):
            raise ShapeError(
                f"layer {k} expects weights ({n_out}, {n_in}), got {w.shape}"
            )
    staged = []
    for spec in plan.stages:
        layer_ws = arrays[spec.layer_start : spec.layer_stop]
        scales = [reference_weight_scale(w) for w in layer_ws]
        if not spec.row_sharded:
            staged.append([(list(layer_ws), scales)])
            continue
        (wide,) = layer_ws
        staged.append(
            [([wide[r0:r1, :]], scales) for r0, r1 in spec.row_splits]
        )
    return staged


def build_pipeline(
    plan: ShardPlan,
    weights: "list[np.ndarray]",
    *,
    config: TridentConfig | None = None,
    activate_last: bool = False,
    noise: NoiseModel | None = None,
    program_verify: ProgramVerifyConfig | None = None,
    seed: int = 0,
) -> ShardedPipeline:
    """Instantiate and program accelerators for every stage of ``plan``.

    Each part gets its own accelerator (seeded ``seed + part ordinal``)
    built on the plan's shard ``config``.  Activation placement follows
    the full model: every non-final layer activates, the final layer
    follows ``activate_last`` — so a stage boundary never adds or drops
    a nonlinearity.  For bit-identical outputs vs a reference
    accelerator, pass a deterministic ``program_verify``
    (``write_std_levels=0, read_std_levels=0``) or none at all, and do
    the same on the reference.
    """
    config = config or TridentConfig()
    staged_weights = slice_stage_weights(plan, weights)
    stages: list[PipelineStage] = []
    ordinal = 0
    last_stage = plan.n_stages - 1
    for spec, part_specs in zip(plan.stages, staged_weights):
        # Does this stage's final layer activate in the full model?
        stage_activate_last = (
            activate_last if spec.index == last_stage else True
        )
        parts: list[TridentAccelerator] = []
        for (part_weights, scales), (r0, r1) in zip(
            part_specs, spec.row_splits
        ):
            acc = TridentAccelerator(
                config=config,
                noise=noise,
                seed=seed + ordinal,
                program_verify=program_verify,
            )
            ordinal += 1
            if spec.row_sharded:
                part_dims = [spec.dims[0], r1 - r0]
            else:
                part_dims = list(spec.dims)
            acc.map_mlp(part_dims, activate_last=stage_activate_last)
            acc.set_weights(part_weights, weight_scales=scales)
            parts.append(acc)
        stages.append(PipelineStage(spec=spec, parts=parts))
    return ShardedPipeline(plan, stages)
