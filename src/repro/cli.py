"""Command-line interface: regenerate any paper artifact from the shell.

Usage (also via ``python -m repro``):

    python -m repro table 3            # Table I-V
    python -m repro fig 6              # Fig 3-6
    python -m repro all                # every table and figure
    python -m repro models             # zoo with MAC/parameter stats
    python -m repro compare resnet50 --budget 30
    python -m repro train-plan vgg16 --samples 50000
    python -m repro link-budget --rows 16 --cols 16 --power-mw 1.0
    python -m repro profile --dims 64 48 10 --batch 256
    python -m repro endurance resnet50
    python -m repro faults --smoke
    python -m repro faults --checkpoint-dir ckpt   # crash-safe, resumable
    python -m repro resume --checkpoint-dir ckpt   # continue after a crash
    python -m repro resume --smoke                 # CI crash-resume gate
    python -m repro train --steps 20 --inject-nan-step 7
    python -m repro checkpoint ckpt/step_0000000010.ckpt
    python -m repro trace --out run.trace.json    # Perfetto-loadable trace
    python -m repro trace --smoke                 # CI observability gate
    python -m repro shard                         # pipeline-sharded serving
    python -m repro shard --smoke                 # CI sharding gate
    python -m repro integrity                     # ABFT-attested serving run
    python -m repro integrity --smoke             # CI SDC-defense gate
    python -m repro -v train --steps 20           # INFO-level run log
    python -m repro train --metrics-out run.prom  # Prometheus dump

Global flags: ``-v`` / ``-vv`` raise log verbosity (INFO / DEBUG) on the
``repro.*`` logging hierarchy; ``--debug`` forces DEBUG.  ``--metrics-out``
(on ``train``, ``faults``, and ``trace``) enables a telemetry session for
the run and writes a Prometheus text dump when it finishes.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Sequence

from repro.eval.formatting import format_table


@contextlib.contextmanager
def _metrics_session(path: str | None):
    """Telemetry session writing a Prometheus dump to ``path`` on success;
    a no-op (yields None) when no path was requested."""
    if path is None:
        yield None
        return
    from repro import telemetry

    with telemetry.session() as t:
        yield t
    out = t.metrics.write_prometheus(path)
    print(f"metrics written to {out}")


def _comparisons_text(comparisons) -> str:
    if not comparisons:
        return ""
    lines = ["", "paper vs measured:"]
    for c in comparisons:
        lines.append(
            f"  {c.metric:32s} paper={c.paper_value:12.3f}  "
            f"measured={c.measured_value:12.3f}  ({c.relative_error * 100:+.1f}%) {c.units}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Subcommand handlers (each returns an exit code)
# ---------------------------------------------------------------------------
def cmd_table(args: argparse.Namespace) -> int:
    """Regenerate one paper table (1-5)."""
    from repro.eval import tables

    generators = {
        1: tables.table1_tuning,
        2: tables.table2_mapping_check,
        3: tables.table3_power,
        4: tables.table4_tops,
        5: tables.table5_training,
    }
    report = generators[args.number]()
    print(report.text)
    print(_comparisons_text(report.comparisons))
    return 0


def cmd_fig(args: argparse.Namespace) -> int:
    """Regenerate one paper figure (3-6)."""
    from repro.eval import figures

    generators = {
        3: figures.fig3_activation_transfer,
        4: figures.fig4_photonic_energy,
        5: figures.fig5_area_breakdown,
        6: figures.fig6_inferences_per_second,
    }
    report = generators[args.number]()
    print(report.title)
    if args.number == 3:
        # Curve data: print a decimated sweep.
        xs = list(report.series["input_energy_pj"].values())
        ys = list(report.series["output_energy_pj"].values())
        rows = [[x, y] for x, y in zip(xs[::20], ys[::20])]
        print(format_table(["input (pJ)", "output (pJ)"], rows))
    else:
        names = list(report.series)
        keys = list(report.series[names[0]])
        rows = [[name] + [report.series[name][k] for k in keys] for name in names]
        print(format_table(["series"] + keys, rows))
    print(_comparisons_text(report.comparisons))
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    """Regenerate every table and figure."""
    for n in (1, 2, 3, 4, 5):
        cmd_table(argparse.Namespace(number=n))
        print()
    for n in (3, 4, 5, 6):
        cmd_fig(argparse.Namespace(number=n))
        print()
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List the CNN zoo with MAC/parameter statistics."""
    from repro.nn import MODEL_BUILDERS, build_model

    rows = []
    for name in sorted(MODEL_BUILDERS):
        stats = build_model(name).stats()
        rows.append(
            [
                name,
                stats.total_macs / 1e9,
                stats.total_params / 1e6,
                stats.n_weight_layers,
                len(stats.layers),
            ]
        )
    print(
        format_table(
            ["model", "GMACs", "Mparams", "weight layers", "total layers"],
            rows,
            title="Model zoo (224 x 224 x 3 inputs)",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare all seven accelerators on one model."""
    from repro.baselines import electronic_baselines, photonic_baselines
    from repro.dataflow.cost_model import PhotonicCostModel
    from repro.nn import build_model

    net = build_model(args.model)
    rows = []
    for arch in photonic_baselines(args.budget):
        cost = PhotonicCostModel(arch, batch=args.batch).model_cost(net)
        rows.append(
            [arch.name, "photonic", arch.n_pes, cost.inferences_per_second,
             cost.energy_j * 1e3, cost.effective_tops]
        )
    for acc in electronic_baselines():
        cost = acc.model_cost(net, batch=32)
        rows.append(
            [acc.name, "electronic", "-", cost.inferences_per_second,
             cost.energy_j * 1e3, cost.effective_tops]
        )
    print(
        format_table(
            ["accelerator", "kind", "PEs", "inf/s", "energy/inf (mJ)", "eff TOPS"],
            rows,
            title=f"{args.model} at {args.budget:.0f} W (batch {args.batch})",
        )
    )
    return 0


def cmd_train_plan(args: argparse.Namespace) -> int:
    """Table V-style training-time estimate for one model."""
    from repro.baselines.electronic import agx_xavier_training
    from repro.nn import build_model
    from repro.training.latency import TrainingCostModel

    net = build_model(args.model)
    tcm = TrainingCostModel(batch=args.batch)
    costs = tcm.step_costs(net)
    trident_s = tcm.training_time_s(net, args.samples)
    xavier_s = agx_xavier_training(args.model).training_time_s(
        net, args.samples, batch=args.batch
    )
    print(
        format_table(
            ["pass", "time/sample (ms)"],
            [
                ["forward", costs.forward_time_s * 1e3],
                ["gradient vector", costs.gradient_time_s * 1e3],
                ["outer product", costs.outer_time_s * 1e3],
                ["weight update", costs.update_time_s * 1e3],
            ],
            title=f"Trident training step: {args.model}, batch {args.batch}",
        )
    )
    print(
        format_table(
            ["accelerator", f"time for {args.samples} samples (s)"],
            [["agx-xavier", xavier_s], ["trident", trident_s]],
        )
    )
    return 0


def cmd_link_budget(args: argparse.Namespace) -> int:
    """Optical link budget for a bank configuration."""
    from repro.optics import LinkBudget

    budget = LinkBudget()
    rep = budget.report(args.rows, args.cols, args.power_mw * 1e-3)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["bank", f"{rep.rows} x {rep.cols}"],
                ["channel power (mW)", rep.channel_power_w * 1e3],
                ["power at bank (uW)", rep.power_at_bank_w * 1e6],
                ["full-scale current (uA)", rep.full_scale_current_a * 1e6],
                ["shot noise (nA)", rep.shot_noise_a * 1e9],
                ["thermal noise (nA)", rep.thermal_noise_a * 1e9],
                ["SNR (dB)", rep.snr_db],
                ["achievable bits", rep.achievable_bits],
            ],
            title="Optical link budget",
        )
    )
    return 0


def cmd_layers(args: argparse.Namespace) -> int:
    """Per-layer cost table for one model."""
    from repro.eval.layer_report import layer_cost_table

    _, text = layer_cost_table(
        args.model, arch_name=args.arch, batch=args.batch, top=args.top
    )
    print(text)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write every table/figure as CSV artifacts."""
    from repro.eval.export import export_all

    written = export_all(args.dir)
    for path in written:
        print(path)
    print(f"{len(written)} CSV artifacts written to {args.dir}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Consolidated paper-vs-measured summary."""
    from repro.eval.summary import ReproductionSummary

    summary = ReproductionSummary.collect()
    print(summary.render())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile batched vs per-sample functional inference on one MLP.

    Maps a random MLP, streams one batch through ``forward_batch`` and then
    sample-by-sample through ``forward``, each under a
    :class:`~repro.arch.profiler.Profiler`, and prints both reports plus
    the wall-clock speedup.  Exits non-zero if the two paths disagree —
    outputs (noise-free hardware) or event counters — so it doubles as an
    executable statement of the parity guarantee.
    """
    import numpy as np

    from repro.arch import Profiler, TridentAccelerator
    from repro.errors import ConfigError

    if args.batch < 1:
        raise ConfigError(f"batch must be positive, got {args.batch}")
    dims = args.dims
    rng = np.random.default_rng(args.seed)
    acc = TridentAccelerator()
    acc.map_mlp(dims)
    acc.set_weights(
        [rng.uniform(-1, 1, (o, i)) for i, o in zip(dims[:-1], dims[1:])]
    )
    xs = rng.uniform(-1, 1, (args.batch, dims[0]))

    with Profiler(acc) as prof_batch:
        out_batch = acc.forward_batch(xs)
    with Profiler(acc) as prof_sample:
        out_sample = np.stack([acc.forward(x) for x in xs])

    print(prof_batch.report.render(f"forward_batch (B={args.batch})"))
    print()
    print(prof_sample.report.render(f"per-sample forward x{args.batch}"))
    wall_b = prof_batch.report.wall_time_s
    wall_s = prof_sample.report.wall_time_s
    if wall_b > 0:
        print(f"\nbatched speedup: {wall_s / wall_b:.1f}x")

    outputs_match = bool(np.allclose(out_batch, out_sample))
    counters_match = (
        prof_batch.report.counters.as_dict() == prof_sample.report.counters.as_dict()
    )
    print(f"outputs match: {outputs_match}")
    print(f"event counters match: {counters_match}")
    if not (outputs_match and counters_match):
        print("PARITY VIOLATION between forward_batch and per-sample forward")
        return 1
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Fault-injection campaign: stuck-cell fraction x repair policy.

    Sweeps inference accuracy, in-situ-training survival, and repair
    overhead under PCM stuck-at faults for each repair tier (none /
    retry / spare-remap / tile-remap).  Exits non-zero if any run's
    batched and per-sample execution paths disagree — fault repair must
    never break the parity guarantee.
    """
    from repro.faults import CampaignConfig, run_campaign

    if args.smoke:
        config = CampaignConfig.smoke()
    else:
        config = CampaignConfig(
            fault_fractions=tuple(args.fractions),
            policies=tuple(args.policies),
            trials=args.trials,
            seed=args.seed,
        )
    with _metrics_session(args.metrics_out):
        report = run_campaign(
            config, checkpoint_dir=args.checkpoint_dir, max_cells=args.max_cells
        )
    print(report.render())
    if args.export:
        from repro.eval.export import export_fault_campaign

        for path in export_fault_campaign(report, args.export):
            print(path)
    if not report.parity_ok:
        print("PARITY VIOLATION between forward_batch and per-sample forward")
        return 1
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Resilient in-situ training on the functional simulator.

    Runs a small classifier through :class:`~repro.runtime.ResilientTrainer`:
    checkpoints on a cadence, rolls back on divergence with exponential
    learning-rate backoff, and can resume an interrupted run from its
    checkpoint directory.  ``--inject-nan-step`` forces one NaN loss to
    demonstrate the rollback ladder.
    """
    import tempfile

    from repro.arch import TridentAccelerator, TridentConfig
    from repro.devices.program_verify import ProgramVerifyConfig
    from repro.nn.datasets import Dataset, make_blobs, standardize
    from repro.runtime import ResilienceConfig, ResilientTrainer
    from repro.training.insitu import InSituTrainer

    import numpy as np

    dims = list(args.dims)
    rows = max(max(dims), 2)
    arch = TridentConfig(
        bank_rows=rows, bank_cols=rows, spare_rows=2, convergence_floor=0.0
    )
    acc = TridentAccelerator(
        config=arch, seed=args.seed, program_verify=ProgramVerifyConfig()
    )
    acc.map_mlp(dims)
    rng = np.random.default_rng(args.seed + 1)
    acc.set_weights(
        [
            rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
            for i in range(len(dims) - 1)
        ]
    )
    raw = make_blobs(
        n_samples=args.samples,
        n_features=dims[0],
        n_classes=dims[-1],
        seed=args.seed + 2,
    )
    data = Dataset(x=np.clip(standardize(raw.x) / 3, -1, 1), y=raw.y)

    hook = None
    if args.inject_nan_step is not None:
        fired = {"done": False}

        def hook(step: int) -> float | None:
            if step == args.inject_nan_step and not fired["done"]:
                fired["done"] = True
                return float("nan")
            return None

    directory = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-train-")
    trainer = ResilientTrainer(
        InSituTrainer(acc, lr=args.lr),
        directory,
        config=ResilienceConfig(checkpoint_every=args.checkpoint_every),
        step_hook=hook,
    )
    with _metrics_session(args.metrics_out):
        report = trainer.run(
            data,
            steps=args.steps,
            batch_size=args.batch,
            seed=args.seed + 3,
            resume=args.resume,
            max_steps_this_run=args.max_steps,
        )
    print(report.render())
    print(f"checkpoints in {directory}")
    return 0 if report.completed else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Run an instrumented end-to-end workload and export its telemetry.

    The workload exercises every observability surface on purpose: a
    fault-injected deployment walks the repair ladder (repair-tier
    counters), resilient training with one injected NaN loss rolls back
    (rollback counter + structured events), a batched inference pass and
    the analytical cost model / schedule simulator fill the span
    timeline.  Artifacts: a Chrome ``trace_event`` JSON (open in
    ``chrome://tracing`` or https://ui.perfetto.dev), a Prometheus text
    metrics dump, and a JSONL structured-event log.

    The run then *audits itself*: the trace must pass the Chrome-trace
    schema check, named spans must attribute >= 95% of root wall time,
    the metrics dump must parse and expose the repair-tier and rollback
    counters, and the rollback must actually have happened.  Any failed
    check exits non-zero — with ``--smoke`` this is the CI observability
    gate.
    """
    import json
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro import telemetry
    from repro.arch import TridentAccelerator, TridentConfig
    from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
    from repro.dataflow.schedule_sim import simulate_model
    from repro.devices.program_verify import ProgramVerifyConfig
    from repro.faults import FaultManager, RepairConfig
    from repro.nn import build_model
    from repro.nn.datasets import Dataset, make_blobs, standardize
    from repro.runtime import ResilienceConfig, ResilientTrainer
    from repro.training.insitu import InSituTrainer

    if args.out is None:
        base = Path(
            tempfile.mkdtemp(prefix="repro-trace-")
            if args.smoke
            else "."
        )
        args.out = str(base / "repro_run.trace.json")
    out_path = Path(args.out)
    metrics_path = Path(
        args.metrics_out or out_path.with_suffix("").with_suffix(".metrics.prom")
    )
    events_path = Path(
        args.events_out or out_path.with_suffix("").with_suffix(".events.jsonl")
    )

    dims = list(args.dims)
    steps = 6 if args.smoke else args.steps
    rows = max(max(dims), 2)
    seed = args.seed

    with telemetry.session() as t:
        with t.tracer.span("trace_workload"):
            with t.tracer.span("deploy_and_repair"):
                arch = TridentConfig(
                    bank_rows=rows,
                    bank_cols=rows,
                    spare_rows=4,
                    convergence_floor=0.0,
                )
                acc = TridentAccelerator(
                    config=arch, seed=seed,
                    program_verify=ProgramVerifyConfig(),
                )
                acc.map_mlp(dims)
                rng = np.random.default_rng(seed + 1)
                weights = [
                    rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
                    for i in range(len(dims) - 1)
                ]
                acc.inject_stuck_faults(0.08, stuck_level=254)
                manager = FaultManager(acc, config=RepairConfig(policy="remap"))
                manager.deploy([w.copy() for w in weights])

            with t.tracer.span("training"):
                raw = make_blobs(
                    n_samples=60,
                    n_features=dims[0],
                    n_classes=dims[-1],
                    seed=seed + 2,
                )
                data = Dataset(
                    x=np.clip(standardize(raw.x) / 3, -1, 1), y=raw.y
                )
                fired = {"done": False}

                def hook(step: int) -> float | None:
                    if step == 2 and not fired["done"]:
                        fired["done"] = True
                        return float("nan")
                    return None

                with tempfile.TemporaryDirectory() as ckpt_dir:
                    trainer = ResilientTrainer(
                        InSituTrainer(acc, lr=0.05),
                        ckpt_dir,
                        config=ResilienceConfig(checkpoint_every=3),
                        manager=manager,
                        step_hook=hook,
                    )
                    run_report = trainer.run(
                        data, steps=steps, batch_size=8, seed=seed + 3
                    )

            with t.tracer.span("inference"):
                acc.forward_batch(data.x)

            with t.tracer.span("modeling"):
                net = build_model(args.model)
                PhotonicCostModel(PhotonicArch.trident()).model_cost(net)
                simulate_model(net, keep_events=False)

        coverage = t.tracer.coverage()
        t.tracer.write_chrome_trace(out_path)
        t.metrics.write_prometheus(metrics_path)
        t.events.write_jsonl(events_path)
        samples = telemetry.parse_prometheus_text(
            metrics_path.read_text(encoding="utf-8")
        )
        trace_problems = telemetry.validate_chrome_trace(
            json.loads(out_path.read_text(encoding="utf-8"))
        )
        n_spans = len(t.tracer.records)
        n_events = len(t.events.records)

    rollbacks = samples.get("repro_rollbacks_total", 0.0)
    missing = [
        key
        for key in (
            "repro_rollbacks_total",
            'repro_repairs_total{tier="retry"}',
            'repro_repairs_total{tier="spare"}',
            'repro_repairs_total{tier="migrate"}',
            "repro_tiles_unrepaired_total",
        )
        if key not in samples
    ]
    checks = [
        ("chrome trace schema valid", not trace_problems),
        ("span coverage >= 95%", coverage >= 0.95),
        ("repair-tier + rollback counters exposed", not missing),
        ("rollback exercised", rollbacks >= 1),
        ("training completed", run_report.completed),
    ]

    print(f"trace written to {out_path} ({n_spans} spans)")
    print(f"metrics written to {metrics_path} ({len(samples)} samples)")
    print(f"events written to {events_path} ({n_events} events)")
    print(f"span coverage of root wall time: {coverage * 100:.1f}%")
    repairs = sum(
        value
        for key, value in samples.items()
        if key.startswith("repro_repairs_total")
    )
    print(
        f"workload: {run_report.steps_completed} steps, "
        f"{int(rollbacks)} rollback(s), {int(repairs)} repair(s), "
        f"{int(samples.get('repro_tiles_unrepaired_total', 0))} tile(s) degraded"
    )
    ok = True
    for label, passed in checks:
        print(f"  {'OK  ' if passed else 'FAIL'} {label}")
        ok = ok and passed
    for problem in trace_problems[:5]:
        print(f"    trace problem: {problem}")
    for key in missing:
        print(f"    missing metric: {key}")
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a synthetic open-loop Poisson workload on simulated workers.

    Three phases — warm (under capacity), burst (overload), drain — with
    one worker forced into PCM degradation mid-run, so the full
    robustness ladder runs under live traffic: priority-aware shedding,
    deadline enforcement, retries, breaker trip / repair / restore.
    With ``--smoke``, replays the run (telemetry disabled) and audits
    the robustness invariants as a CI gate.
    """
    import json
    import tempfile
    from pathlib import Path

    from repro import telemetry
    from repro.serving import (
        Phase,
        ServerConfig,
        WorkloadConfig,
        run_serve_workload,
        shed_rate_by_priority,
        smoke_checks,
    )

    requests = args.requests
    if requests is None:
        requests = 400 if args.smoke else 800
    config = WorkloadConfig(
        dims=tuple(args.dims),
        n_workers=args.workers,
        seed=args.seed,
        phases=(
            Phase("warm", requests, 0.6),
            Phase("burst", requests, args.burst),
            Phase("drain", requests, 0.35),
        ),
        server=ServerConfig(
            max_queue_depth=args.queue_depth,
            max_batch=args.batch,
            slo_latency_s=args.slo_us * 1e-6,
            max_retries=2,
            retry_backoff_s=5e-7,
            retry_jitter_s=1e-7,
            breaker_failure_threshold=3,
            breaker_cooldown_s=5e-6,
            seed=args.seed,
            executor_threads=args.threads,
        ),
    )

    out_path = metrics_path = events_path = None
    if args.smoke and args.out is None:
        args.out = str(
            Path(tempfile.mkdtemp(prefix="repro-serve-")) / "serve.trace.json"
        )
    if args.out:
        out_path = Path(args.out)
        metrics_path = Path(
            args.metrics_out
            or out_path.with_suffix("").with_suffix(".metrics.prom")
        )
        events_path = Path(
            args.events_out or out_path.with_suffix("").with_suffix(".events.jsonl")
        )

    with telemetry.session() as t:
        report, _server = run_serve_workload(config)
        if out_path:
            t.tracer.write_chrome_trace(out_path)
            t.metrics.write_prometheus(metrics_path)
            t.events.write_jsonl(events_path)
            samples = telemetry.parse_prometheus_text(
                metrics_path.read_text(encoding="utf-8")
            )
            trace_problems = telemetry.validate_chrome_trace(
                json.loads(out_path.read_text(encoding="utf-8"))
            )

    print(report.render())
    rates = shed_rate_by_priority(report)
    if rates:
        shed_line = ", ".join(
            f"p{priority}={rate * 100:.1f}%" for priority, rate in rates.items()
        )
        print(f"  shed rate by priority: {shed_line}")
    if out_path:
        print(f"trace written to {out_path}")
        print(f"metrics written to {metrics_path} ({len(samples)} samples)")
        print(f"events written to {events_path} ({len(t.events.records)} events)")

    if not args.smoke:
        return 0

    # Replay with telemetry disabled: same decisions proves both seeded
    # determinism and that observability never perturbs the simulation.
    replay, _ = run_serve_workload(config)
    checks = smoke_checks(report, replay)
    if out_path:
        expected_samples = (
            "repro_requests_admitted_total",
            "repro_requests_completed_total",
            'repro_requests_shed_total{reason="queue_full"}',
            'repro_breaker_transitions_total{to="open"}',
            "repro_serve_queue_depth",
            "repro_power_draw_w",
        )
        missing = [key for key in expected_samples if key not in samples]
        checks.append(("chrome trace schema valid", not trace_problems))
        checks.append(("serving + power metrics exposed", not missing))
    ok = True
    for label, passed in checks:
        print(f"  {'OK  ' if passed else 'FAIL'} {label}")
        ok = ok and passed
    return 0 if ok else 1


def cmd_shard(args: argparse.Namespace) -> int:
    """Serve one model sharded across a pipeline of accelerators.

    The model provably overflows a single shard-sized chip; the
    cost-model planner cuts it into pipeline stages (row-sharding any
    single layer too wide for one chip), and a :class:`~repro.serving.
    ShardedWorker` serves a seeded request burst with overlapped stage
    execution.  With ``--smoke``, runs the full self-audit instead —
    bit-identity vs a single large reference accelerator, overlap vs
    serialized makespans, stage-fault drain/repair, conservation, and
    bit-identical replay — as a CI gate.
    """
    import dataclasses

    from repro.serving import (
        ShardWorkloadConfig,
        makespan_s,
        run_shard_workload,
        shard_smoke_checks,
    )
    from repro.serving.shard_workload import (
        plan_workload,
        single_shard_mapping_error,
    )

    config = ShardWorkloadConfig()
    overrides = {}
    if args.requests is not None:
        overrides["n_requests"] = args.requests
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = dataclasses.replace(config, **overrides)

    if args.smoke:
        checks, details = shard_smoke_checks(config)
        plan = details["plan"]
        print(
            f"plan: {plan['n_stages']} stage(s), "
            f"{plan['n_accelerators']} accelerator(s), "
            f"bottleneck {plan['bottleneck_s'] * 1e6:.3f} us"
        )
        print(f"single-shard mapping: {details['single_shard_error']}")
        print(
            f"makespan: overlap {details['overlap_makespan_s'] * 1e6:.2f} us, "
            f"serialized {details['serialized_makespan_s'] * 1e6:.2f} us "
            f"(speedup {details['overlap_speedup']:.2f}x)"
        )
        ok = True
        for label, passed in checks:
            print(f"  {'OK  ' if passed else 'FAIL'} {label}")
            ok = ok and passed
        return 0 if ok else 1

    error = single_shard_mapping_error(config)
    if error is not None:
        print(f"single shard refuses the model: {error}")
    print(plan_workload(config).render())
    report, _, worker = run_shard_workload(
        config, overlap=not args.serialized
    )
    print(report.render())
    mode = "serialized" if args.serialized else "overlapped"
    print(
        f"  {mode} makespan: {makespan_s(report) * 1e6:.2f} us over "
        f"{len(worker.stages)} stage(s)"
    )
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Inspect a checkpoint file: schema, kind, hash, integrity verdict."""
    from repro.runtime import describe_checkpoint

    info = describe_checkpoint(args.path)
    width = max(len(k) for k in info)
    for key, value in info.items():
        print(f"{key:<{width}}  {value}")
    return 0 if info.get("valid") else 1


def cmd_resume(args: argparse.Namespace) -> int:
    """Resume an interrupted fault campaign from its checkpoint ledger.

    With ``--smoke``, runs a self-contained crash-resume verification
    instead: a small campaign is run once uninterrupted, once halted
    after a single cell and resumed, and the two final reports must be
    bit-identical (same rows, same clean accuracy).
    """
    from repro.faults import CampaignConfig, resume_campaign, run_campaign

    if args.smoke:
        import tempfile

        config = CampaignConfig.smoke()
        baseline = run_campaign(config)
        with tempfile.TemporaryDirectory() as directory:
            partial = run_campaign(config, checkpoint_dir=directory, max_cells=1)
            resumed = resume_campaign(directory)
        same = (
            resumed.complete
            and not partial.complete
            and baseline.clean_accuracy == resumed.clean_accuracy
            and [r.as_dict() for r in baseline.rows]
            == [r.as_dict() for r in resumed.rows]
        )
        print(
            f"crash-resume smoke: halted after {len(partial.rows)} cell(s), "
            f"resumed to {len(resumed.rows)}/{len(baseline.rows)}"
        )
        print(f"bit-identical to uninterrupted run: {'OK' if same else 'MISMATCH'}")
        return 0 if same else 1

    if not args.checkpoint_dir:
        print("repro resume: --checkpoint-dir is required (or use --smoke)")
        return 2
    report = resume_campaign(args.checkpoint_dir)
    print(report.render())
    if args.export:
        from repro.eval.export import export_fault_campaign

        for path in export_fault_campaign(report, args.export):
            print(path)
    if not report.parity_ok:
        print("PARITY VIOLATION between forward_batch and per-sample forward")
        return 1
    return 0


def cmd_soak(args: argparse.Namespace) -> int:
    """Soak the stack under deterministic chaos; emit a flake matrix.

    Sweeps the serve/shard/resume/train/fleet scenarios across a seed range,
    each cell repeated and audited (conservation, structured sheds,
    atomic batches, finite outputs, charged repairs, bit-identical
    replay).  ``--gate`` makes any failing or flaky cell — or a
    self-audit that cannot detect a deliberately unhandled fault — exit
    non-zero, which is how CI consumes it.
    """
    import json

    from repro.chaos import (
        SoakConfig,
        render_matrix,
        run_self_audit,
        run_soak,
        validate_matrix,
    )

    scenarios = tuple(args.scenarios) if args.scenarios else None
    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    overrides = {"seeds": seeds, "repeats": args.repeats,
                 "chaos": not args.no_chaos}
    if scenarios is not None:
        overrides["scenarios"] = scenarios
    config = SoakConfig(**overrides)

    def progress(cell):
        verdict = "pass" if cell["ok"] else "FAIL"
        print(
            f"  {verdict}  {cell['scenario']:<7} seed {cell['seed']:<3} "
            f"({cell['duration_s']:.2f}s)"
        )

    doc = run_soak(config, progress=progress)
    if args.gate or args.smoke:
        doc["self_audit"] = run_self_audit(config.seeds[0])
        print(
            f"  {'pass' if doc['self_audit']['ok'] else 'FAIL'}  self-audit "
            "(sabotaged cell must be flagged)"
        )
    problems = validate_matrix(doc)
    if problems:
        for problem in problems:
            print(f"  FAIL  matrix schema: {problem}")
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2), encoding="utf-8")
        print(f"flake matrix: {out}")
    print(render_matrix(doc))
    gate_ok = (
        not doc["flaky"]
        and not problems
        and doc.get("self_audit", {"ok": True})["ok"]
    )
    if args.gate:
        print(f"soak gate: {'OK' if gate_ok else 'FAIL'}")
        return 0 if gate_ok else 1
    return 0


def cmd_integrity(args: argparse.Namespace) -> int:
    """ABFT attestation: serve the SDC-defense workload, checks enabled.

    Every batch is verified against per-layer checksum rows with
    noise-calibrated thresholds.  With ``--smoke``, runs the full gate
    instead: zero false trips across a clean seed matrix, bit-identical
    parity with an unchecked run, bit-identical replay, injected
    ``silent_corrupt`` chaos detected and attested (none settles
    unverified), and the escalation → quarantine → scrub → restore arc.
    """
    import dataclasses

    from repro.integrity import (
        IntegrityWorkloadConfig,
        run_integrity_workload,
        smoke_checks,
    )

    config = IntegrityWorkloadConfig()
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.requests is not None:
        overrides["n_requests"] = args.requests
    if overrides:
        config = dataclasses.replace(config, **overrides)

    if args.smoke:
        ok = True
        for label, passed in smoke_checks(config):
            print(f"  {'OK  ' if passed else 'FAIL'} {label}")
            ok = ok and passed
        print(f"integrity gate: {'OK' if ok else 'FAIL'}")
        return 0 if ok else 1

    result = run_integrity_workload(config)
    print(result.report.render())
    counters = result.counters_total()
    line = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    print(f"  attestation counters: {line}")
    for worker in result.workers:
        thresholds = ", ".join(
            f"{t:.4f}" for t in worker.integrity.unit.thresholds
        )
        print(f"  worker {worker.worker_id} thresholds: [{thresholds}]")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run the closed-loop fleet control plane on a diurnal + burst trace.

    The controller autoscales (warm-up, graceful drain, checkpointed
    decommission), rebalances tenants, and rides the degraded-mode
    ladder through a mid-peak breaker-storm volley, all on the virtual
    clock.  ``--smoke`` additionally runs a bit-identical replay plus a
    static-knob baseline and gates the full contract: burst absorbed
    within SLO, baseline demonstrably missing it, scale-up *and*
    scale-down observed, exactly one degraded episode, conservation.
    """
    import json

    from repro.fleet import (
        SCENARIOS,
        fleet_smoke_checks,
        run_fleet_workload,
        smoke_chaos_plan,
    )

    scenario = SCENARIOS[args.scenario](args.seed)
    plan = None if args.no_chaos else smoke_chaos_plan(scenario)

    if args.smoke:
        result = run_fleet_workload(scenario, controlled=True, chaos_plan=plan)
        replay = run_fleet_workload(scenario, controlled=True, chaos_plan=plan)
        baseline = run_fleet_workload(
            scenario, controlled=False, chaos_plan=plan
        )
        checks = fleet_smoke_checks(result, replay, baseline)
        ok = True
        for label, passed in checks:
            print(f"  {'OK  ' if passed else 'FAIL'} {label}")
            ok = ok and passed
        if args.out:
            from pathlib import Path

            doc = {
                "scenario": result.as_dict(),
                "baseline": baseline.as_dict(),
                "checks": [
                    {"name": label, "ok": passed} for label, passed in checks
                ],
            }
            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(doc, indent=2), encoding="utf-8")
            print(f"fleet report: {out}")
        print(f"fleet smoke: {'OK' if ok else 'FAIL'}")
        return 0 if ok else 1

    result = run_fleet_workload(scenario, controlled=True, chaos_plan=plan)
    doc = result.as_dict()
    controller = doc["controller"]
    serve = doc["serve"]
    print(
        format_table(
            ["quantity", "value"],
            [
                ["requests", doc["requests"]],
                ["completed", serve["completed"]],
                ["completion rate", f"{serve['completion_rate'] * 100:.2f}%"],
                ["p99 latency", f"{serve['p99_latency_s'] * 1e6:.2f} us"],
                ["fleet (final)", doc["fleet"]],
                ["controller ticks", controller["ticks"]],
                ["scale-ups / scale-downs",
                 f"{controller['scale_up_events']} / "
                 f"{controller['scale_down_events']}"],
                ["degraded entries / exits",
                 f"{controller['degraded_entries']} / "
                 f"{controller['degraded_exits']}"],
                ["final rung", controller["rung"]],
                ["actuations", controller["actuations"]],
            ],
            title=f"fleet run: scenario={scenario.name} seed={args.seed}",
        )
    )
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2), encoding="utf-8")
        print(f"fleet report: {out}")
    return 0 if serve["conservation_ok"] else 1


def cmd_endurance(args: argparse.Namespace) -> int:
    """PCM wear-out analysis for one model."""
    from repro.analysis import endurance_report
    from repro.nn import build_model

    rep = endurance_report(build_model(args.model))
    print(
        format_table(
            ["quantity", "value"],
            [
                ["weight-cell writes / inference", rep.weight_writes_per_inference],
                ["activation firings / cell / inference", rep.activation_firings_per_inference],
                ["weight-cell lifetime (years)", rep.weight_lifetime_years],
                ["activation-cell lifetime (hours)", rep.activation_lifetime_hours],
                ["limiting population", rep.limiting_population],
            ],
            title=f"PCM endurance: {args.model} at full-rate inference",
        )
    )
    return 0


# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Trident reproduction CLI"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise repro.* log level (-v: INFO, -vv: DEBUG)",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="force DEBUG logging on the repro.* hierarchy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table", help="regenerate a paper table (1-5)")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("fig", help="regenerate a paper figure (3-6)")
    p.add_argument("number", type=int, choices=(3, 4, 5, 6))
    p.set_defaults(func=cmd_fig)

    p = sub.add_parser("all", help="every table and figure")
    p.set_defaults(func=cmd_all)

    p = sub.add_parser("models", help="list the CNN zoo")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("compare", help="compare all accelerators on a model")
    p.add_argument("model")
    p.add_argument("--budget", type=float, default=30.0)
    p.add_argument("--batch", type=int, default=128)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("train-plan", help="training-time estimate (Table V style)")
    p.add_argument("model")
    p.add_argument("--samples", type=int, default=50_000)
    p.add_argument("--batch", type=int, default=32)
    p.set_defaults(func=cmd_train_plan)

    p = sub.add_parser("link-budget", help="optical link budget for a bank")
    p.add_argument("--rows", type=int, default=16)
    p.add_argument("--cols", type=int, default=16)
    p.add_argument("--power-mw", type=float, default=1.0)
    p.set_defaults(func=cmd_link_budget)

    p = sub.add_parser("layers", help="per-layer cost table for a model")
    p.add_argument("model")
    p.add_argument("--arch", default="trident",
                   choices=("trident", "deap-cnn", "crosslight", "pixel"))
    p.add_argument("--batch", type=int, default=128)
    p.add_argument("--top", type=int, default=12)
    p.set_defaults(func=cmd_layers)

    p = sub.add_parser("report", help="paper-vs-measured summary for everything")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("export", help="write every table/figure as CSV")
    p.add_argument("--dir", default="artifacts")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "profile", help="profile batched vs per-sample functional inference"
    )
    p.add_argument("--dims", type=int, nargs="+", default=[64, 48, 10])
    p.add_argument("--batch", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "faults", help="fault campaign: stuck-cell rate x repair policy"
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep (two fractions, two policies, one trial)",
    )
    p.add_argument(
        "--fractions", type=float, nargs="+",
        default=[0.0, 0.05, 0.1, 0.2],
    )
    p.add_argument(
        "--policies", nargs="+",
        default=["none", "retry", "spare", "remap"],
        choices=("none", "retry", "spare", "remap"),
    )
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--export", metavar="DIR",
                   help="also write fault_campaign.{csv,json} to DIR")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="persist finished sweep cells for crash-safe resume")
    p.add_argument("--max-cells", type=int, default=None,
                   help="halt after executing this many new cells "
                        "(crash simulation; resume later)")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="collect telemetry and write a Prometheus dump here")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("endurance", help="PCM wear-out analysis for a model")
    p.add_argument("model")
    p.set_defaults(func=cmd_endurance)

    p = sub.add_parser(
        "train",
        help="resilient in-situ training with checkpoints and rollback",
    )
    p.add_argument("--dims", type=int, nargs="+", default=[6, 8, 3])
    p.add_argument("--steps", type=int, default=12)
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--lr", type=float, default=0.05)
    p.add_argument("--samples", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="checkpoint directory (default: a fresh temp dir)")
    p.add_argument("--checkpoint-every", type=int, default=5)
    p.add_argument("--resume", action="store_true",
                   help="restore the newest checkpoint before training")
    p.add_argument("--max-steps", type=int, default=None,
                   help="halt after this many executed steps "
                        "(crash simulation; resume later)")
    p.add_argument("--inject-nan-step", type=int, default=None,
                   help="force a NaN loss at this step to demo rollback")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="collect telemetry and write a Prometheus dump here")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser(
        "trace",
        help="run an instrumented workload; export Chrome trace + metrics",
    )
    p.add_argument("--out", metavar="PATH", default=None,
                   help="Chrome trace output (default repro_run.trace.json; "
                        "--smoke defaults to a temp dir)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="Prometheus dump (default: next to --out)")
    p.add_argument("--events-out", metavar="PATH", default=None,
                   help="structured-event JSONL (default: next to --out)")
    p.add_argument("--dims", type=int, nargs="+", default=[6, 8, 3])
    p.add_argument("--steps", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--model", default="alexnet",
                   help="model for the cost-model/schedule-sim phase")
    p.add_argument("--smoke", action="store_true",
                   help="small workload + self-audit (CI observability gate)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "serve",
        help="serve a synthetic request workload with fault-aware admission",
    )
    p.add_argument("--dims", type=int, nargs="+", default=[12, 16, 4])
    p.add_argument("--workers", type=int, default=2,
                   help="number of simulated accelerator workers")
    p.add_argument("--requests", type=int, default=None,
                   help="requests per phase (default 800; 400 with --smoke)")
    p.add_argument("--burst", type=float, default=2.0,
                   help="burst-phase arrival rate, x sustainable throughput")
    p.add_argument("--batch", type=int, default=16,
                   help="micro-batch size cap")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission queue depth bound")
    p.add_argument("--slo-us", type=float, default=10.0,
                   help="latency SLO in microseconds of virtual time")
    p.add_argument("--threads", type=int, default=0,
                   help="thread-pool size for batch execution (0 = inline)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", metavar="PATH", default=None,
                   help="Chrome trace output (--smoke defaults to a temp dir)")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="Prometheus dump (default: next to --out)")
    p.add_argument("--events-out", metavar="PATH", default=None,
                   help="structured-event JSONL (default: next to --out)")
    p.add_argument("--smoke", action="store_true",
                   help="replay + robustness self-audit (CI serving gate)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "shard",
        help="serve one model sharded across a pipeline of accelerators",
    )
    p.add_argument("--requests", type=int, default=None,
                   help="requests in the burst (default 240)")
    p.add_argument("--seed", type=int, default=None,
                   help="workload seed (default 11)")
    p.add_argument("--serialized", action="store_true",
                   help="hold the pipeline exclusive per batch (baseline)")
    p.add_argument("--smoke", action="store_true",
                   help="bit-identity + overlap + stage-fault self-audit "
                        "(CI sharding gate)")
    p.set_defaults(func=cmd_shard)

    p = sub.add_parser(
        "checkpoint", help="inspect a checkpoint file (schema/kind/hash)"
    )
    p.add_argument("path")
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser(
        "resume",
        help="resume an interrupted fault campaign from its ledger",
    )
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="directory holding campaign_cells.jsonl")
    p.add_argument("--smoke", action="store_true",
                   help="self-contained crash-resume verification (CI gate)")
    p.add_argument("--export", metavar="DIR",
                   help="also write fault_campaign.{csv,json} to DIR")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "soak",
        help="chaos soak: scenarios x seeds, audited, with a flake matrix",
    )
    p.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        choices=("serve", "shard", "resume", "train", "fleet", "sdc"),
        help="subset of scenarios (default: all six)",
    )
    p.add_argument("--seeds", type=int, default=4, metavar="N",
                   help="number of seeds to sweep (default 4)")
    p.add_argument("--seed-base", type=int, default=0, metavar="S",
                   help="first seed of the sweep (default 0)")
    p.add_argument("--repeats", type=int, default=2, metavar="R",
                   help="runs per cell; digests must agree (default 2)")
    p.add_argument("--no-chaos", action="store_true",
                   help="sweep without injections (baseline variability)")
    p.add_argument("--out", metavar="FILE",
                   help="write the flake matrix JSON here")
    p.add_argument("--gate", action="store_true",
                   help="exit non-zero on any flake/failure (CI gate)")
    p.add_argument("--smoke", action="store_true",
                   help="CI-bounded sweep: also run the sabotage self-audit "
                        "and matrix schema validation")
    p.set_defaults(func=cmd_soak)

    p = sub.add_parser(
        "integrity",
        help="ABFT checksum attestation of served outputs (SDC defense)",
    )
    p.add_argument("--requests", type=int, default=None,
                   help="requests in the run (default 160)")
    p.add_argument("--seed", type=int, default=None,
                   help="workload seed (default 7)")
    p.add_argument("--smoke", action="store_true",
                   help="clean-matrix / parity / replay / injected-SDC / "
                        "escalation self-audit (CI integrity gate)")
    p.set_defaults(func=cmd_integrity)

    p = sub.add_parser(
        "fleet",
        help="closed-loop fleet control plane on a diurnal + burst trace",
    )
    p.add_argument(
        "--scenario", choices=("smoke", "standard", "large"), default="smoke",
        help="fleet scenario preset (default smoke)",
    )
    p.add_argument("--seed", type=int, default=11, help="workload seed")
    p.add_argument("--no-chaos", action="store_true",
                   help="skip the mid-peak breaker-storm volley")
    p.add_argument("--out", metavar="FILE",
                   help="write the run report JSON here")
    p.add_argument("--smoke", action="store_true",
                   help="CI gate: controlled run + replay + static baseline, "
                        "pass/fail contract checks")
    p.set_defaults(func=cmd_fleet)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Domain failures (:class:`~repro.errors.ReproError` — fault
    escalations, repair exhaustion, checkpoint corruption, bad serving
    configs, …) exit with code 2 and a one-line structured message on
    stderr instead of a traceback; tracebacks are reserved for actual
    bugs.
    """
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError
    from repro.telemetry import configure_cli_logging

    configure_cli_logging(verbosity=args.verbose, debug=args.debug)
    try:
        return args.func(args)
    except ReproError as error:
        print(
            f"repro: error: {type(error).__name__}: {error}", file=sys.stderr
        )
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
