"""Electronic edge AI accelerators (paper Table IV).

Spec-sheet figures come straight from the paper:

=================  =====  =====  ==========  ========
Accelerator        TOPS   Watts  TOPS per W  Training
=================  =====  =====  ==========  ========
NVIDIA AGX Xavier  32     30     1.1         Yes
Bearkey TB96-AI    3      20     0.15        No
Google Coral       4      15     0.26        No
=================  =====  =====  ==========  ========

(The paper's Xavier row quotes 1.1 TOPS/W from AnandTech [11] rather than
the 32/30 quotient; we carry the spec values and surface both.)

``compute_utilization`` — the sustained fraction of peak each device
achieves on real CNNs — is the calibrated knob (edge NPUs sustain far below
peak; Seshadri et al. [29] measure 10-50 % on Edge TPU).  Values are chosen
so the per-model throughput ratios land near the paper's Fig 6 averages;
EXPERIMENTS.md records the deltas.  Bandwidths are the boards' memory specs
(Xavier: 137 GB/s LPDDR4x; TB96: RK3399Pro LPDDR3; Coral: LPDDR4).
"""

from __future__ import annotations

from repro.dataflow.roofline import ElectronicAccelerator


def agx_xavier() -> ElectronicAccelerator:
    """NVIDIA Jetson AGX Xavier (30 W mode, int8) — the only trainer."""
    return ElectronicAccelerator(
        name="agx-xavier",
        peak_tops=32.0,
        power_w=30.0,
        dram_bandwidth_bytes_per_s=137e9,
        compute_utilization=0.0919,
        can_train=True,
    )


def bearkey_tb96() -> ElectronicAccelerator:
    """Bearkey TB-96AI (Rockchip RK3399Pro NPU), inference only."""
    return ElectronicAccelerator(
        name="tb96-ai",
        peak_tops=3.0,
        power_w=20.0,
        dram_bandwidth_bytes_per_s=12.8e9,
        compute_utilization=0.3067,
        can_train=False,
    )


def google_coral() -> ElectronicAccelerator:
    """Google Coral Dev Board (Edge TPU), inference only.

    The paper uses the dev board's 15 W envelope (0.26 TOPS/W), not the
    2 W module.
    """
    return ElectronicAccelerator(
        name="google-coral",
        peak_tops=4.0,
        power_w=15.0,
        dram_bandwidth_bytes_per_s=6.4e9,
        compute_utilization=0.1047,
        can_train=False,
    )


def electronic_baselines() -> list[ElectronicAccelerator]:
    """All three, in the paper's Table IV order."""
    return [agx_xavier(), bearkey_tb96(), google_coral()]


#: Per-model sustained utilization of Xavier during *training*, calibrated
#: to the paper's Table V Xavier column (which reflects published Jetson
#: benchmark behaviour).  The pattern is physical: GoogleNet's dense
#: small-map convolutions keep the tensor cores busy (~26 %), while
#: MobileNetV2 / ResNet-50 / VGG-16 sustain ~10 % through the training
#: loop's memory traffic.
XAVIER_TRAINING_UTILIZATION: dict[str, float] = {
    "mobilenet_v2": 0.1017,
    "googlenet": 0.2610,
    "resnet50": 0.1048,
    "vgg16": 0.1121,
}


def agx_xavier_training(model_name: str) -> ElectronicAccelerator:
    """Xavier with the training-calibrated utilization for a zoo model.

    Falls back to the inference utilization for models outside Table V.
    """
    from dataclasses import replace

    base = agx_xavier()
    util = XAVIER_TRAINING_UTILIZATION.get(model_name)
    if util is None:
        return base
    return replace(base, compute_utilization=util)
