"""PIXEL baseline (Shiflett et al., ref [30]) — the 8-bit OO MAC variant.

Mixed-signal photonic accelerator built from MRR bitwise logic plus
Mach-Zehnder-modulator (MZM) analog accumulation:

- **MZM accumulation** — MZMs are large and power-hungry (the paper:
  "PIXEL uses power-hungry MZMs", Sec. V-A); they add standing power to the
  PE (fewer PEs at 30 W) and per-symbol switching energy.
- **Thermally tuned** weight rings (Table I thermal parameters).
- **Digital activation** through ADCs.
- The optical-optical (OO) MAC's bit-level operation caps the effective
  vector symbol rate.
"""

from __future__ import annotations

from repro.baselines.base import (
    SHARED_STREAMING_POWER_W,
    baseline_sizing_power,
    pes_for_budget,
    POWER_BUDGET_W,
)
from repro.baselines.deap_cnn import ADC_ENERGY_J, CONVERSION_BLOCK_W, DAC_ENERGY_J
from repro.constants import MHZ, MW
from repro.dataflow.cost_model import PhotonicArch
from repro.devices.tuning import ThermalTuning

#: MZM accumulation bank standing power (16 rows) [W].
MZM_BLOCK_W = 320.0 * MW

#: Average per-symbol switching energy of the MZM stage [J].  Calibrated to
#: the paper's average 43.4 % Trident energy advantage (Fig 4).
MZM_SYMBOL_ENERGY_J = 100.837e-12

#: Effective vector symbol rate of the 8-bit OO MAC [Hz].  Calibrated to the
#: paper's average +143.6 % Trident throughput advantage (Fig 6).
SYMBOL_RATE_HZ = 206.07 * MHZ


def pixel_arch(budget_w: float = POWER_BUDGET_W) -> PhotonicArch:
    """PIXEL (OO MAC) scaled to the power budget."""
    tuning = ThermalTuning()
    sizing = baseline_sizing_power(CONVERSION_BLOCK_W + MZM_BLOCK_W)
    return PhotonicArch(
        name="pixel",
        n_pes=pes_for_budget(sizing, budget_w),
        symbol_rate_hz=SYMBOL_RATE_HZ,
        write_energy_per_cell_j=tuning.write_energy_j,
        write_time_s=tuning.write_time_s,
        streaming_power_pe_w=SHARED_STREAMING_POWER_W,
        sizing_power_pe_w=sizing,
        hold_power_per_cell_w=tuning.hold_power_w,
        digital_activation=True,
        adc_energy_per_sample_j=ADC_ENERGY_J,
        dac_energy_per_sample_j=DAC_ENERGY_J,
        extra_symbol_energy_j=MZM_SYMBOL_ENERGY_J,
        weight_bits=8,
    )
