"""CrossLight baseline (Sunny et al., ref [31]).

Cross-layer optimized photonic accelerator:

- **Hybrid thermo/electro-optic tuning** — faster and slightly cheaper per
  event than pure thermal, but still volatile and crosstalk-limited.
- **VCSEL + MRR summation stage** — CrossLight performs partial-sum
  aggregation with an extra VCSEL and summation ring per row, which costs
  both standing power (PE sizing) and per-symbol energy, and drags the
  symbol rate down (the paper: "CrossLight uses an additional VCSEL and MRR
  for summation", Sec. V-A).
- **Digital activation** through ADCs, like DEAP-CNN.
"""

from __future__ import annotations

from repro.baselines.base import (
    baseline_sizing_power,
    pes_for_budget,
    POWER_BUDGET_W,
)
from repro.baselines.deap_cnn import ADC_ENERGY_J, CONVERSION_BLOCK_W, DAC_ENERGY_J
from repro.constants import MHZ, MW, NJ, US
from repro.dataflow.cost_model import PhotonicArch

#: VCSEL + summation-MRR bank standing power (16 rows) [W].
VCSEL_BLOCK_W = 160.0 * MW

#: Symbol rate limited by the VCSEL modulation + summation chain [Hz].
#: Calibrated to the paper's average +150.2 % throughput advantage (Fig 6).
SYMBOL_RATE_HZ = 169.30 * MHZ

#: CrossLight's cross-layer optimization trims the receiver chain; its
#: per-PE streaming power is slightly below the shared Table III stack.
#: Calibrated to the paper's average 43.5 % energy advantage (Fig 4).
STREAMING_POWER_W = 66.877 * MW

#: Hybrid tuning: between electro-optic (fast, weak) and thermal.
WRITE_ENERGY_J = 0.8 * NJ
WRITE_TIME_S = 0.5 * US
HOLD_POWER_PER_CELL_W = 1.2 * MW
WEIGHT_BITS = 7


def crosslight_arch(budget_w: float = POWER_BUDGET_W) -> PhotonicArch:
    """CrossLight scaled to the power budget."""
    sizing = baseline_sizing_power(CONVERSION_BLOCK_W + VCSEL_BLOCK_W)
    return PhotonicArch(
        name="crosslight",
        n_pes=pes_for_budget(sizing, budget_w),
        symbol_rate_hz=SYMBOL_RATE_HZ,
        write_energy_per_cell_j=WRITE_ENERGY_J,
        write_time_s=WRITE_TIME_S,
        streaming_power_pe_w=STREAMING_POWER_W,
        sizing_power_pe_w=sizing,
        hold_power_per_cell_w=HOLD_POWER_PER_CELL_W,
        digital_activation=True,
        adc_energy_per_sample_j=ADC_ENERGY_J,
        dac_energy_per_sample_j=DAC_ENERGY_J,
        weight_bits=WEIGHT_BITS,
    )
