"""Shared methodology for the photonic baselines.

The paper's comparison rule (Sec. IV): "We apply the same device parameters
in Table III to DEAP-CNN, CrossLight, PIXEL, and Trident and scale all four
architectures to meet a 30 W power consumption threshold."

Concretely, every photonic PE shares the Table III common components
(GST/input read 17.1 mW, BPD+TIA 12.1 mW, cache 30 mW, E/O lasers 0.512 mW)
and the worst-case tuning slot (563.2 mW); architectures then differ by

- what replaces Trident's LDSU + photonic-activation-reset (53.39 mW):
  the baselines spend power on ADC/DAC conversion and digital activation,
- extra analog machinery (CrossLight's VCSEL summation, PIXEL's MZMs),
- tuning technology (write energy/time, volatility, bit resolution),
- and the achievable symbol rate (ADC sampling and modulator limits).

Because each baseline's PE draws more than Trident's 0.676 W, fewer PEs fit
the 30 W budget — the scaling advantage the paper credits to GST
(Sec. V-A: "the more energy efficient tuning method allows Trident to scale
to more PEs").

Calibration note: symbol rates and per-symbol extras below are calibrated
so that the *relative* energy/latency results land near the paper's
averages (the paper does not publish its baseline re-implementation
parameters); EXPERIMENTS.md records measured vs paper for every figure.
"""

from __future__ import annotations

from repro.arch.config import TridentConfig
from repro.dataflow.cost_model import PhotonicArch

#: The paper's edge power threshold [W].
POWER_BUDGET_W = 30.0

_cfg = TridentConfig()

#: Table III components every photonic PE shares while streaming [W]:
#: input/read stage + BPD/TIA + cache + E/O lasers.
SHARED_STREAMING_POWER_W = (
    _cfg.gst_read_power_w + _cfg.bpd_tia_power_w + _cfg.cache_power_w + _cfg.eo_laser_power_w
)

#: Worst-case weight-bank tuning power slot shared by all architectures [W]
#: (Table III: 563.2 mW for 256 cells).
TUNING_SLOT_POWER_W = _cfg.gst_tuning_power_w

#: Trident's LDSU + activation-reset block [W] — what the baselines replace
#: with conversion hardware.
TRIDENT_ACTIVATION_BLOCK_W = (
    _cfg.ldsu_power_w + _cfg.activation_reset_power_w
)


def baseline_sizing_power(extra_blocks_w: float) -> float:
    """Per-PE worst-case power of a baseline with the given extras [W]."""
    if extra_blocks_w < 0:
        raise ValueError(f"extras must be non-negative, got {extra_blocks_w}")
    return SHARED_STREAMING_POWER_W + TUNING_SLOT_POWER_W + extra_blocks_w


def pes_for_budget(sizing_power_w: float, budget_w: float = POWER_BUDGET_W) -> int:
    """How many PEs of this power fit the budget."""
    n = int(budget_w // sizing_power_w)
    if n < 1:
        raise ValueError(
            f"budget {budget_w} W cannot power a {sizing_power_w:.3f} W PE"
        )
    return n


def photonic_baselines(budget_w: float = POWER_BUDGET_W) -> list[PhotonicArch]:
    """All four photonic architectures, scaled to the budget, in the
    paper's presentation order (Trident, DEAP-CNN, CrossLight, PIXEL)."""
    from repro.baselines.crosslight import crosslight_arch
    from repro.baselines.deap_cnn import deap_cnn_arch
    from repro.baselines.pixel import pixel_arch

    trident = PhotonicArch.trident(TridentConfig().scaled_to_budget(budget_w))
    return [
        trident,
        deap_cnn_arch(budget_w),
        crosslight_arch(budget_w),
        pixel_arch(budget_w),
    ]
