"""DEAP-CNN baseline (Bangari et al., ref [2]).

Broadcast-and-weight CNN accelerator:

- **Thermally tuned MRRs** — Table I: 1.02 nJ per tuning event, 0.6 us
  settling (2x slower than GST), 1.7 mW per-ring hold power (volatile),
  6-bit usable resolution due to thermal crosstalk.
- **Digital activation** — layer outputs are ADC-converted, written to
  memory, activated digitally, and re-encoded by DACs for the next layer.
  The ADC sampling rate caps the analog symbol rate below Trident's.
"""

from __future__ import annotations

from repro.baselines.base import (
    SHARED_STREAMING_POWER_W,
    baseline_sizing_power,
    pes_for_budget,
    POWER_BUDGET_W,
)
from repro.constants import MHZ, MW, PJ
from repro.dataflow.cost_model import PhotonicArch
from repro.devices.tuning import ThermalTuning

#: ADC + digital activation + DAC power block replacing Trident's
#: LDSU + photonic activation [W] (16 rows of 8-bit converters).
CONVERSION_BLOCK_W = 60.0 * MW

#: ADC-limited symbol rate [Hz] — the conversion bottleneck the paper cites
#: via HolyLight [23].  Calibrated so the model reproduces the paper's
#: average +27.9 % Trident throughput advantage (Fig 6).
SYMBOL_RATE_HZ = 277.23 * MHZ

#: Per-sample conversion energies [J].  The ADC figure is calibrated (jointly
#: with the activation-logic standing power below) so the model reproduces
#: the paper's average 16.4 % Trident energy advantage (Fig 4) while Trident
#: stays ahead on every individual CNN; it sits in the realistic range for
#: 8-bit ~300 MS/s converters.
ADC_ENERGY_J = 7.093 * PJ
DAC_ENERGY_J = 5.0 * PJ

#: Standing power of the per-row digital activation logic + output buffers
#: that replaces Trident's photonic activation path [W] (calibrated, see
#: ADC_ENERGY_J).
ACTIVATION_LOGIC_POWER_W = 17.85 * MW


def deap_cnn_arch(budget_w: float = POWER_BUDGET_W) -> PhotonicArch:
    """DEAP-CNN scaled to the power budget."""
    tuning = ThermalTuning()
    sizing = baseline_sizing_power(CONVERSION_BLOCK_W)
    return PhotonicArch(
        name="deap-cnn",
        n_pes=pes_for_budget(sizing, budget_w),
        symbol_rate_hz=SYMBOL_RATE_HZ,
        write_energy_per_cell_j=tuning.write_energy_j,
        write_time_s=tuning.write_time_s,
        streaming_power_pe_w=SHARED_STREAMING_POWER_W + ACTIVATION_LOGIC_POWER_W,
        sizing_power_pe_w=sizing,
        hold_power_per_cell_w=tuning.hold_power_w,
        digital_activation=True,
        adc_energy_per_sample_j=ADC_ENERGY_J,
        dac_energy_per_sample_j=DAC_ENERGY_J,
        weight_bits=tuning.bit_resolution,
    )
