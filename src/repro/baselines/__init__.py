"""Baseline accelerators the paper compares Trident against (Sec. IV).

Photonic (parameter points of :class:`repro.dataflow.PhotonicArch`):

- :mod:`repro.baselines.deap_cnn` — DEAP-CNN [2]: broadcast-and-weight,
  thermally tuned MRRs, digital activation through ADCs.
- :mod:`repro.baselines.crosslight` — CrossLight [31]: hybrid
  thermo/electro-optic tuning, VCSEL + MRR summation stage.
- :mod:`repro.baselines.pixel` — PIXEL [30]: MRR bitwise logic + MZM
  analog accumulation (the 8-bit OO MAC variant).

Electronic (spec-sheet rooflines):

- :mod:`repro.baselines.electronic` — NVIDIA AGX Xavier, Bearkey TB96-AI,
  Google Coral Dev Board.
"""

from repro.baselines.base import (
    POWER_BUDGET_W,
    SHARED_STREAMING_POWER_W,
    TUNING_SLOT_POWER_W,
    photonic_baselines,
)
from repro.baselines.crosslight import crosslight_arch
from repro.baselines.deap_cnn import deap_cnn_arch
from repro.baselines.electronic import (
    agx_xavier,
    bearkey_tb96,
    electronic_baselines,
    google_coral,
)
from repro.baselines.pixel import pixel_arch

__all__ = [
    "agx_xavier",
    "bearkey_tb96",
    "crosslight_arch",
    "deap_cnn_arch",
    "electronic_baselines",
    "google_coral",
    "photonic_baselines",
    "pixel_arch",
    "POWER_BUDGET_W",
    "SHARED_STREAMING_POWER_W",
    "TUNING_SLOT_POWER_W",
]
