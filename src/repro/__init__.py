"""Trident: a PCM-enabled low-power photonic accelerator simulator.

Reproduction of Curry, Louri, Karanth & Bunescu, "PCM Enabled Low-Power
Photonic Accelerator for Inference and Training on Edge Devices"
(IPDPS 2024).

Quick tour
----------
>>> from repro import TridentConfig, TridentAccelerator
>>> acc = TridentAccelerator()
>>> acc.map_mlp([16, 16, 4])

Sub-packages:

- :mod:`repro.devices` — photonic/electronic device physics (GST, MRRs,
  WDM, photodetectors, TIAs, the GST activation cell, the LDSU).
- :mod:`repro.arch` — the Trident architecture (weight banks, PEs, the
  44-PE accelerator, power/area/cache models).
- :mod:`repro.nn` — NN substrate (layer graphs, the five-CNN model zoo,
  digital reference math, quantization, synthetic datasets).
- :mod:`repro.dataflow` — Maestro-style weight-stationary cost model and
  the electronic roofline.
- :mod:`repro.baselines` — DEAP-CNN, CrossLight, PIXEL, and the electronic
  edge accelerators.
- :mod:`repro.training` — in-situ photonic backpropagation and the
  training-latency model.
- :mod:`repro.faults` — runtime fault management: online detection from
  program-verify readback, spare-ring repair, tile remapping, and the
  fault-injection campaign engine.
- :mod:`repro.runtime` — crash-safe checkpoint/restore (hash-verified,
  atomically written snapshots of the full physical state) and the
  resilient training harness with divergence rollback and LR backoff.
- :mod:`repro.eval` — regeneration of every table and figure.
"""

from repro.arch.accelerator import TridentAccelerator
from repro.arch.config import TridentConfig
from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.devices.noise import NoiseModel
from repro.faults import FaultDetector, FaultManager, RepairConfig, RepairPolicy
from repro.runtime import CheckpointStore, ResilienceConfig, ResilientTrainer
from repro.training.insitu import InSituTrainer

__version__ = "1.0.0"

__all__ = [
    "CheckpointStore",
    "FaultDetector",
    "FaultManager",
    "InSituTrainer",
    "NoiseModel",
    "PhotonicArch",
    "PhotonicCostModel",
    "RepairConfig",
    "RepairPolicy",
    "ResilienceConfig",
    "ResilientTrainer",
    "TridentAccelerator",
    "TridentConfig",
    "__version__",
]
