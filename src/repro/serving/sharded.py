"""Serving one sharded model: a pipeline of accelerators as one worker.

A :class:`ShardedWorker` wraps a :class:`~repro.sharding.ShardedPipeline`
behind the same duck-typed surface :class:`~repro.serving.worker.
AcceleratorWorker` gives the server — ``service_time_s`` /
``dispatch_times_s``, health, ``execute``, ``repair`` — so
:class:`~repro.serving.server.TridentServer` schedules it without knowing
there are N chips behind the id.  Three things distinguish it:

**Overlapped stage execution.**  ``dispatch_times_s`` runs the classic
flow-shop recurrence over the worker's internal per-stage free times
(``start_k = max(prev_stage_done, stage_free_k)``): the ingest-free
instant it returns is when stage 0 frees — *before* the batch leaves the
last stage — so the server can push batch i+1 into the pipe while batch
i is still in flight (stage k of batch i runs concurrently with stage
k-1 of batch i+1).  With ``overlap=False`` the whole pipe is held
exclusive per batch, which is the serialized baseline the benchmark and
smoke gate compare against.  Scheduling is pure virtual-time arithmetic;
the numpy execution still happens at completion time, so determinism and
the decision log are untouched.

**Per-stage fault domains.**  Every stage carries its own health signal
(worst program-verify ``unconverged_fraction`` across its part
accelerators), its own :class:`~repro.serving.breaker.CircuitBreaker`,
and its parts' :class:`~repro.faults.FaultManager`\\ s.  ``execute`` gates
each stage in pipeline order: a quarantined or degraded stage fails the
*whole* batch atomically before any output is returned — upstream stages
may have burned symbols (that work is honestly lost), but no partial or
corrupt outputs ever reach a requester, and the server's normal
retry/shed machinery takes over.  The server-level breaker still sees
every failure, so a sick stage quarantines the whole pipeline worker;
``repair`` (invoked on the server's half-open probe) sweeps every
stage's fault managers and re-closes stage breakers whose cooldown has
elapsed and whose health has recovered.

**Per-stage telemetry.**  Each stage execution runs inside a
``shard_stage`` trace span (worker, stage, parts, batch), and stage
breaker transitions emit structured events — a pipeline run is
observable stage by stage, not as one opaque worker.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.chaos.session import (
    corrupt_output as _chaos_corrupt,
    crash_check as _chaos_crash,
)
from repro.dataflow.cost_model import PhotonicArch, forward_batch_latency_s
from repro.errors import ServingError, WorkerFault
from repro.integrity.checker import attest_batch as _attest_batch
from repro.serving.breaker import BreakerState, CircuitBreaker
from repro.sharding.pipeline import PipelineStage, ShardedPipeline
from repro.sharding.planner import ShardPlan, reduction_tile_count
from repro.telemetry.log import get_logger
from repro.telemetry.session import (
    counter as _metric_counter,
    emit_event as _emit_event,
    trace_span as _trace_span,
)

_log = get_logger("repro.serving.sharded")


def _accelerator_unconverged(acc) -> float:
    """Worst verify non-convergence over one accelerator's active banks."""
    active = {tile[4] for layer in acc.layers for tile in layer.tiles}
    fractions = [acc.pes[index].bank.unconverged_fraction for index in active]
    return max(fractions, default=0.0)


class StageRuntime:
    """One pipeline stage as the worker schedules and polices it."""

    def __init__(
        self,
        stage: PipelineStage,
        managers: list,
        breaker: CircuitBreaker,
        arch: PhotonicArch,
        dispatch_overhead_s: float,
        bank_cols: int,
    ) -> None:
        if len(managers) != len(stage.parts):
            raise ServingError(
                f"stage {stage.spec.index}: {len(managers)} fault managers "
                f"for {len(stage.parts)} parts"
            )
        self.stage = stage
        self.managers = managers
        self.breaker = breaker
        self.arch = arch
        self.dispatch_overhead_s = dispatch_overhead_s
        #: Column (reduction) tiles of the stage's member layers — row
        #: shards stream the same input concurrently, so the stage's
        #: latency is the plain layer-chain latency regardless of parts.
        self.reduction_tiles = tuple(
            reduction_tile_count(d, bank_cols) for d in stage.spec.dims[:-1]
        )
        #: When this stage's hardware frees (flow-shop bookkeeping).
        self.free_s = 0.0

    @property
    def index(self) -> int:
        """Stage position in the pipeline."""
        return self.stage.spec.index

    def service_time_s(self, batch_size: int) -> float:
        """Cost-model latency of one batch through this stage."""
        return forward_batch_latency_s(
            self.arch,
            self.reduction_tiles,
            batch_size,
            overhead_s=self.dispatch_overhead_s,
        )

    @property
    def unconverged_fraction(self) -> float:
        """Worst verify non-convergence across the stage's parts."""
        return max(
            _accelerator_unconverged(acc) for acc in self.stage.parts
        )

    def health(self) -> dict:
        """Structured stage-health snapshot."""
        return {
            "stage": self.index,
            "parts": len(self.stage.parts),
            "unconverged_fraction": self.unconverged_fraction,
            "breaker": self.breaker.state.value,
        }


class ShardedWorker:
    """N stage accelerators serving one model behind one worker id."""

    def __init__(
        self,
        worker_id: int,
        pipeline: ShardedPipeline,
        stage_managers: "list[list] | None" = None,
        unhealthy_threshold: float = 0.02,
        dispatch_overhead_s: float = 1e-6,
        overlap: bool = True,
        stage_failure_threshold: int = 3,
        stage_cooldown_s: float = 1e-5,
        integrity=None,
    ) -> None:
        if not 0.0 < unhealthy_threshold <= 1.0:
            raise ServingError(
                f"unhealthy threshold must be in (0, 1], got {unhealthy_threshold}"
            )
        if dispatch_overhead_s < 0:
            raise ServingError("dispatch overhead must be non-negative")
        for stage in pipeline.stages:
            for acc in stage.parts:
                if any(layer.weights is None for layer in acc.layers):
                    raise ServingError(
                        f"worker {worker_id} stage {stage.spec.index}: all "
                        "layers need programmed weights"
                    )
        self.worker_id = int(worker_id)
        self.pipeline = pipeline
        #: Optional :class:`~repro.integrity.PipelineChecker` attesting
        #: every drained batch (per-part ABFT checksums + ladder).
        self.integrity = integrity
        self.unhealthy_threshold = float(unhealthy_threshold)
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        self.overlap = bool(overlap)
        self.batches_executed = 0
        self.batches_failed = 0
        #: Escalation count already covered by a scrub (see :meth:`repair`).
        self._scrubbed_escalations = 0
        self.stage_breaker_transitions: list[dict] = []
        self._clock = None
        config = pipeline.stages[0].parts[0].config
        arch = PhotonicArch.trident(config)
        if stage_managers is None:
            stage_managers = [
                [None] * len(stage.parts) for stage in pipeline.stages
            ]
        if len(stage_managers) != len(pipeline.stages):
            raise ServingError(
                f"{len(stage_managers)} manager groups for "
                f"{len(pipeline.stages)} stages"
            )
        self.stages = [
            StageRuntime(
                stage,
                managers,
                CircuitBreaker(
                    stage.spec.index,
                    failure_threshold=stage_failure_threshold,
                    cooldown_s=stage_cooldown_s,
                    on_transition=self._on_stage_breaker_transition,
                ),
                arch,
                self.dispatch_overhead_s,
                config.bank_cols,
            )
            for stage, managers in zip(pipeline.stages, stage_managers)
        ]

    # ------------------------------------------------------------------
    # Structure / clock
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Model input width this worker serves."""
        return self.pipeline.input_dim

    def bind_clock(self, clock) -> None:
        """Adopt the server's virtual clock for stage-breaker timestamps."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def _on_stage_breaker_transition(self, now_s, stage_index, before, to, reason):
        record = {
            "t": now_s,
            "worker": self.worker_id,
            "stage": stage_index,
            "from": before.value,
            "to": to.value,
            "reason": reason,
        }
        self.stage_breaker_transitions.append(record)
        _emit_event("shard_stage_breaker", **record)
        _metric_counter(
            "repro_shard_stage_breaker_transitions_total", to=to.value
        ).inc()
        _log.info(
            "worker %d stage %d breaker: %s -> %s (%s)",
            self.worker_id, stage_index, before.value, to.value, reason,
        )

    # ------------------------------------------------------------------
    # Cost model / overlap schedule
    # ------------------------------------------------------------------
    def service_time_s(self, batch_size: int) -> float:
        """End-to-end (pipeline-fill) latency of one batch."""
        return sum(s.service_time_s(batch_size) for s in self.stages)

    def dispatch_times_s(
        self, now_s: float, batch_size: int
    ) -> tuple[float, float]:
        """Flow-shop (ingest-free, finish) instants for a dispatch now.

        Walks the batch through the stages against their current free
        times: ``start_k = max(done_{k-1}, free_k)``.  With overlap the
        worker re-opens for ingest when stage 0 frees; serialized, it
        stays exclusive until the batch exits the last stage.
        """
        done = now_s
        for runtime in self.stages:
            start = max(done, runtime.free_s)
            done = start + runtime.service_time_s(batch_size)
            runtime.free_s = done
        finish = done
        if not self.overlap:
            for runtime in self.stages:
                runtime.free_s = finish
            return finish, finish
        return self.stages[0].free_s, finish

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    @property
    def unconverged_fraction(self) -> float:
        """Worst stage health signal (the pipeline is its sickest stage)."""
        return max(s.unconverged_fraction for s in self.stages)

    @property
    def healthy(self) -> bool:
        """True while every stage is within threshold and unquarantined."""
        return all(
            s.unconverged_fraction <= self.unhealthy_threshold
            and s.breaker.state is not BreakerState.OPEN
            for s in self.stages
        )

    def health(self) -> dict:
        """Structured health snapshot, stage by stage."""
        return {
            "worker": self.worker_id,
            "unconverged_fraction": self.unconverged_fraction,
            "healthy": self.healthy,
            "stages": [s.health() for s in self.stages],
            "batches_executed": self.batches_executed,
            "batches_failed": self.batches_failed,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, xs: np.ndarray) -> np.ndarray:
        """Run one micro-batch stage by stage; fail atomically on a bad stage.

        Each stage is gated twice — its breaker must allow traffic and
        its health signal must be within threshold — *before* its physics
        runs.  A gate failure raises :class:`~repro.errors.WorkerFault`
        naming the stage: the batch is abandoned whole (stages already
        traversed spent real symbols, but nothing is returned), so
        requesters never see output that a degraded stage touched.

        Chaos hook points bracket the pipeline: an armed ``worker_crash``
        fires at dispatch (before stage 0) or drain (after the last
        stage), and an armed ``corrupt_output`` poisons the drained
        outputs — which the finite-output integrity gate then converts
        into a :class:`WorkerFault`, proving corruption can never reach
        a requester.  With no chaos session active each hook is one
        global read.
        """
        now = self._now()
        inputs = xs
        reason = _chaos_crash(self.worker_id, "dispatch", now)
        if reason is not None:
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} crashed at dispatch: {reason}"
            )
        for runtime in self.stages:
            if not runtime.breaker.allow(now):
                self.batches_failed += 1
                raise WorkerFault(
                    f"worker {self.worker_id} stage {runtime.index} "
                    "quarantined (stage breaker open)"
                )
            fraction = runtime.unconverged_fraction
            if fraction > self.unhealthy_threshold:
                runtime.breaker.record_failure(now)
                self.batches_failed += 1
                raise WorkerFault(
                    f"worker {self.worker_id} stage {runtime.index} degraded: "
                    f"unconverged fraction {fraction:.3f} > "
                    f"{self.unhealthy_threshold:.3f}"
                )
            with _trace_span(
                "shard_stage",
                worker=self.worker_id,
                stage=runtime.index,
                parts=len(runtime.stage.parts),
                batch=int(xs.shape[0]),
            ):
                xs = runtime.stage.forward_batch(
                    xs, record=self.integrity is not None
                )
            runtime.breaker.record_success(now)
        xs = _chaos_corrupt(self.worker_id, now, xs)
        reason = _chaos_crash(self.worker_id, "drain", now)
        if reason is not None:
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} crashed at drain: {reason}"
            )
        if self.integrity is not None:
            try:
                xs = _attest_batch(
                    self.integrity,
                    inputs,
                    xs,
                    worker_id=self.worker_id,
                    now_s=now,
                    manager=[
                        m
                        for runtime in self.stages
                        for m in runtime.managers
                        if m is not None
                    ],
                )
            except WorkerFault:
                self.batches_failed += 1
                raise
        if not np.all(np.isfinite(xs)):
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} output integrity check failed: "
                "non-finite values in drained batch"
            )
        self.batches_executed += 1
        return xs

    # ------------------------------------------------------------------
    # Degradation / repair
    # ------------------------------------------------------------------
    def degrade_stage(
        self,
        stage_index: int,
        fraction: float,
        stuck_level: int | None = None,
        rng=None,
    ) -> int:
        """Inject stuck faults into one stage and refresh its readback.

        Mirrors :meth:`AcceleratorWorker.degrade` for a single fault
        domain; returns newly stuck cells across the stage's parts.  An
        external ``rng`` (a chaos injection's derived stream) leaves the
        parts' own generators untouched.
        """
        runtime = self.stages[stage_index]
        stuck = 0
        for acc in runtime.stage.parts:
            stuck += acc.inject_stuck_faults(
                fraction, stuck_level=stuck_level, rng=rng
            )
            if acc.verify_writer is not None:
                for layer in acc.layers:
                    for tile_index in range(len(layer.tiles)):
                        acc.reprogram_tile(layer.index, tile_index)
        _log.warning(
            "worker %d stage %d degraded: %d stuck cells (health %.3f)",
            self.worker_id, stage_index, stuck, runtime.unconverged_fraction,
        )
        return stuck

    def repair(self) -> bool:
        """Sweep every stage's fault managers; True when all stages recover.

        Runs during the server's half-open quarantine window.  A stage
        whose health recovers and whose own cooldown has elapsed gets its
        breaker walked OPEN -> HALF_OPEN -> CLOSED here (the repair sweep
        is the successful probe); a stage still inside its cooldown stays
        quarantined until a later window.
        """
        now = self._now()
        swept = False
        for runtime in self.stages:
            for manager in runtime.managers:
                if manager is not None:
                    manager.repair()
                    swept = True
            recovered = (
                runtime.unconverged_fraction <= self.unhealthy_threshold
            )
            if recovered and runtime.breaker.state is not BreakerState.CLOSED:
                if runtime.breaker.allow(now):
                    runtime.breaker.record_success(now)
            _log.info(
                "worker %d stage %d repair: health %.3f, breaker %s",
                self.worker_id,
                runtime.index,
                runtime.unconverged_fraction,
                runtime.breaker.state.value,
            )
        if self.integrity is not None:
            escalated = self.integrity.counters.escalated
            scrub = escalated > self._scrubbed_escalations
            if scrub:
                # Escalated SDC means some part's data path was provably
                # wrong with no stuck-cell signature the managers could
                # see: scrub every part's data tiles from the digital
                # weight shadow *before* recalibrating, or the checker
                # would re-baseline against the corruption.
                for runtime in self.stages:
                    for acc in runtime.stage.parts:
                        for layer in acc.layers:
                            for tile_index in range(len(layer.tiles)):
                                acc.reprogram_tile(layer.index, tile_index)
                self._scrubbed_escalations = escalated
            if swept or scrub:
                # The sweep rewrote data tiles (possibly migrating them);
                # checksum rows must re-track the deployment and
                # thresholds must re-baseline or post-repair batches
                # would false-trip.
                self.integrity.rewrite_and_recalibrate()
        return self.healthy


def build_sharded_worker(
    worker_id: int,
    plan: ShardPlan,
    weights: "list[np.ndarray]",
    *,
    config=None,
    overlap: bool = True,
    seed: int = 0,
    program_verify=None,
    with_managers: bool = False,
    spare_pes: int = 0,
    unhealthy_threshold: float = 0.02,
    dispatch_overhead_s: float = 1e-6,
    stage_cooldown_s: float = 1e-5,
    with_integrity: bool = False,
    integrity_config=None,
) -> ShardedWorker:
    """Build, program, and (optionally) make repairable a pipeline worker.

    ``with_managers`` attaches a remap-policy :class:`~repro.faults.
    FaultManager` per part (requires ``program_verify``; use the
    deterministic zero-sigma config to keep bit-identity) and reprograms
    every tile once so the managers' detectors hold a readback baseline.
    ``spare_pes`` over-provisions each part's chip beyond the plan
    capacity so migrate-tier repairs have somewhere to go — it never
    changes outputs, only repair headroom.  ``with_integrity`` attaches
    a :class:`~repro.integrity.PipelineChecker` (ABFT checksum rows per
    part, calibrated thresholds, escalation ladder) — size ``spare_pes``
    to leave one PE per column tile of each part's layers free.
    """
    from repro.arch.config import TridentConfig
    from repro.sharding.pipeline import build_pipeline

    config = config or TridentConfig()
    if spare_pes < 0:
        raise ServingError(f"spare_pes must be >= 0, got {spare_pes}")
    build_config = (
        dataclasses.replace(config, n_pes=config.n_pes + spare_pes)
        if spare_pes
        else config
    )
    pipeline = build_pipeline(
        plan,
        weights,
        config=build_config,
        program_verify=program_verify,
        seed=seed,
    )
    stage_managers: list[list] = []
    if with_managers:
        if program_verify is None:
            raise ServingError(
                "fault managers need program-verify readback; pass a "
                "ProgramVerifyConfig (zero-sigma for bit-identity)"
            )
        from repro.faults import FaultManager, RepairConfig

        for stage in pipeline.stages:
            managers = []
            for acc in stage.parts:
                n_tiles = sum(len(layer.tiles) for layer in acc.layers)
                manager = FaultManager(
                    acc,
                    config=RepairConfig(
                        policy="remap", max_migrations=n_tiles
                    ),
                )
                # The manager attached after programming: replay every
                # tile write (same weights, same stored scale) so its
                # detector sees a baseline readback per tile.
                for layer in acc.layers:
                    for tile_index in range(len(layer.tiles)):
                        acc.reprogram_tile(layer.index, tile_index)
                managers.append(manager)
            stage_managers.append(managers)
    else:
        stage_managers = [
            [None] * len(stage.parts) for stage in pipeline.stages
        ]
    integrity = None
    if with_integrity:
        from repro.integrity.checker import PipelineChecker

        integrity = PipelineChecker(
            pipeline, config=integrity_config, seed=seed
        )
    return ShardedWorker(
        worker_id,
        pipeline,
        stage_managers=stage_managers,
        unhealthy_threshold=unhealthy_threshold,
        dispatch_overhead_s=dispatch_overhead_s,
        overlap=overlap,
        stage_cooldown_s=stage_cooldown_s,
        integrity=integrity,
    )
