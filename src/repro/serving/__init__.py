"""Fault-aware request serving over the batched execution engine.

``repro.serving`` turns the functional accelerator into a *server*:
requests with deadlines and priorities enter a bounded admission queue,
are coalesced into SLO-sized micro-batches priced by the dataflow cost
model, and dispatch to accelerator workers whose health (program-verify
readback + the fault-repair log) drives per-worker circuit breakers.
Overload sheds by priority with structured reasons, failures retry with
jittered exponential backoff, and the whole loop runs on a seeded
virtual clock so any run replays bit-identically.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.breaker import BreakerState, CircuitBreaker
from repro.serving.queue import AdmissionQueue
from repro.serving.request import (
    CompletedRequest,
    InferenceRequest,
    RejectedRequest,
    ShedReason,
)
from repro.serving.server import ServeReport, ServerConfig, TridentServer
from repro.serving.shard_workload import (
    ShardWorkloadConfig,
    makespan_s,
    run_shard_workload,
    shard_smoke_checks,
)
from repro.serving.sharded import ShardedWorker, build_sharded_worker
from repro.serving.worker import AcceleratorWorker
from repro.serving.workload import (
    Phase,
    WorkloadConfig,
    build_worker,
    run_serve_workload,
    shed_rate_by_priority,
    smoke_checks,
    sustainable_rate_hz,
    synthesize_arrivals,
)

__all__ = [
    "AcceleratorWorker",
    "AdmissionQueue",
    "BreakerState",
    "CircuitBreaker",
    "CompletedRequest",
    "InferenceRequest",
    "MicroBatcher",
    "Phase",
    "RejectedRequest",
    "ServeReport",
    "ServerConfig",
    "ShardWorkloadConfig",
    "ShardedWorker",
    "ShedReason",
    "TridentServer",
    "WorkloadConfig",
    "build_sharded_worker",
    "build_worker",
    "makespan_s",
    "run_serve_workload",
    "run_shard_workload",
    "shard_smoke_checks",
    "shed_rate_by_priority",
    "smoke_checks",
    "sustainable_rate_hz",
    "synthesize_arrivals",
]
