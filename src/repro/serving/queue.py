"""Bounded, priority-ordered admission queue with deterministic eviction.

The queue is the server's backpressure mechanism: depth is capped, and
when full a newly arriving request is admitted only by *displacing* a
strictly lower-priority resident.  Ordering is a total deterministic key
— ``(-priority, arrival_s, request_id)`` — so two runs with the same
arrival schedule pop identical batches.

Eviction order is deterministic **by construction**, not by accident of
id assignment: every insertion is stamped with a monotonically
increasing admission sequence number, and the victim of a displacement
is the *last-admitted* resident of the lowest-priority tier.  Among
equal-priority, equal-age residents this is a total order that depends
only on the order the server admitted them (which replay reproduces
exactly), never on how external id generators happened to number the
requests — important once arrivals are merged from many per-tenant
streams.  Earlier peers of equal rank therefore always keep their
place: the newest arrival at the bottom tier has had the least time
invested and displacing it reorders the least.
"""

from __future__ import annotations

import bisect

from repro.errors import ServingError
from repro.serving.request import InferenceRequest


def _order_key(req: InferenceRequest) -> tuple:
    return (-req.priority, req.arrival_s, req.request_id)


class AdmissionQueue:
    """Depth-bounded priority queue of pending requests."""

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ServingError(f"queue depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self._keys: list[tuple] = []
        self._items: list[InferenceRequest] = []
        #: Admission sequence per resident, aligned with ``_items``.
        self._seqs: list[int] = []
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """True when the queue is at its depth bound."""
        return len(self._items) >= self.max_depth

    def peek(self) -> InferenceRequest | None:
        """Highest-ranked pending request, or None when empty."""
        return self._items[0] if self._items else None

    def push(self, request: InferenceRequest) -> None:
        """Insert below the depth bound (use :meth:`offer` at the edge)."""
        if self.full:
            raise ServingError("queue full; admission must go through offer()")
        key = _order_key(request)
        index = bisect.bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._items.insert(index, request)
        self._seqs.insert(index, self._next_seq)
        self._next_seq += 1

    def _victim_index(self) -> int:
        """Index of the displacement victim: last-admitted of the lowest tier."""
        return min(
            range(len(self._items)),
            key=lambda i: (self._items[i].priority, -self._seqs[i]),
        )

    def offer(
        self, request: InferenceRequest
    ) -> tuple[bool, InferenceRequest | None]:
        """Try to admit ``request``; returns ``(admitted, evicted)``.

        Below the bound: admitted, nothing evicted.  At the bound: the
        lowest-priority resident is evicted iff the newcomer strictly
        outranks it; otherwise the newcomer is refused.  Ties within the
        lowest tier break on admission order (last admitted goes) — see
        the module docstring for why that, and not request id, is the
        replay-stable choice.
        """
        if not self.full:
            self.push(request)
            return True, None
        index = self._victim_index()
        victim = self._items[index]
        if request.priority <= victim.priority:
            return False, None
        self._delete(index)
        self.push(request)
        return True, victim

    def _delete(self, index: int) -> None:
        del self._keys[index]
        del self._items[index]
        del self._seqs[index]

    def remove(self, request: InferenceRequest) -> None:
        """Remove a specific resident (must be present)."""
        self._delete(self._keys.index(_order_key(request)))

    def pop_batch(self, limit: int) -> list[InferenceRequest]:
        """Pop up to ``limit`` requests in priority order."""
        if limit < 1:
            raise ServingError(f"batch limit must be >= 1, got {limit}")
        taken = self._items[:limit]
        del self._items[:limit]
        del self._keys[:limit]
        del self._seqs[:limit]
        return taken

    def drop_hopeless(
        self, now_s: float, min_service_s: float
    ) -> list[InferenceRequest]:
        """Remove queued requests that can no longer meet their deadline.

        A request is hopeless once even an immediate solo dispatch would
        finish past its deadline — the "early shedding" half of deadline
        enforcement: capacity is never spent on work that is already lost.
        """
        kept_keys: list[tuple] = []
        kept_items: list[InferenceRequest] = []
        kept_seqs: list[int] = []
        dropped: list[InferenceRequest] = []
        for key, req, seq in zip(self._keys, self._items, self._seqs):
            if req.slack_s(now_s) < min_service_s:
                dropped.append(req)
            else:
                kept_keys.append(key)
                kept_items.append(req)
                kept_seqs.append(seq)
        self._keys, self._items, self._seqs = kept_keys, kept_items, kept_seqs
        return dropped

    def snapshot(self) -> tuple[InferenceRequest, ...]:
        """Pending requests in pop order (for reports/tests)."""
        return tuple(self._items)
