"""Request and outcome types for the serving layer.

Every request submitted to the server terminates in exactly one of two
structured outcomes: a :class:`CompletedRequest` carrying the output and
its latency, or a :class:`RejectedRequest` carrying a :class:`ShedReason`.
Nothing is ever silently dropped and no serving decision surfaces as an
unhandled exception — the conservation invariant the property tests
enforce (`submitted == completed + shed`, per request id).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np


class ShedReason(enum.Enum):
    """Why a request was rejected instead of served."""

    #: Admission queue at capacity and the request did not outrank anyone.
    QUEUE_FULL = "queue_full"
    #: Evicted from a full queue by a newly arrived higher-priority request.
    PRIORITY_EVICTED = "priority_evicted"
    #: Admission-time estimate says the deadline cannot possibly be met.
    DEADLINE_UNREACHABLE = "deadline_unreachable"
    #: Queued, but the deadline expired (or became hopeless) before dispatch.
    DEADLINE_EXPIRED = "deadline_expired"
    #: Failed on degraded workers more times than the retry budget allows.
    RETRIES_EXHAUSTED = "retries_exhausted"
    #: No worker can ever take traffic again (all breakers dead at drain).
    NO_WORKER = "no_worker"
    #: Refused by a degraded-mode policy (admission priority floor or a
    #: frozen traffic class) installed by the fleet controller.
    DEGRADED_SHED = "degraded_shed"


@dataclass(frozen=True)
class InferenceRequest:
    """One inference sample plus its service constraints."""

    request_id: int
    #: (n_in,) input vector for the mapped network.
    x: np.ndarray
    #: Virtual arrival time [s].
    arrival_s: float
    #: Absolute completion deadline [s]; None means best-effort.
    deadline_s: float | None = None
    #: Larger values outrank smaller ones for admission and dispatch.
    priority: int = 0
    #: Originating tenant ("" for single-tenant workloads).  The fleet
    #: controller's rebalancing boost keys on this.
    tenant: str = ""
    #: Traffic class: ``"infer"`` or ``"train"``.  Degraded mode can
    #: freeze whole classes (training first).
    kind: str = "infer"

    def slack_s(self, now_s: float) -> float:
        """Time remaining until the deadline (inf for best-effort)."""
        if self.deadline_s is None:
            return math.inf
        return self.deadline_s - now_s


@dataclass(frozen=True)
class CompletedRequest:
    """A served request: output plus where/when it ran."""

    request: InferenceRequest
    #: (n_out,) output vector from the worker's ``forward_batch``.
    output: np.ndarray
    worker_id: int
    dispatch_s: float
    finish_s: float
    #: Total execution attempts (1 = served first try).
    attempts: int

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency [s]."""
        return self.finish_s - self.request.arrival_s

    @property
    def deadline_met(self) -> bool:
        """True when the request finished before its deadline (or had none)."""
        deadline = self.request.deadline_s
        return deadline is None or self.finish_s <= deadline


@dataclass(frozen=True)
class RejectedRequest:
    """A shed request: always carries the reason and the decision time."""

    request: InferenceRequest
    reason: ShedReason
    shed_s: float
    #: Execution attempts made before shedding (0 = shed pre-dispatch).
    attempts: int = 0
    #: Human-readable amplification of the reason.
    detail: str = field(default="", compare=False)
