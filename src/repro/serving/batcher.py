"""SLO-driven micro-batch coalescing.

The batcher answers one question for the dispatch loop: *given what is
queued now and when the next refill could arrive, should this idle worker
take a batch immediately or wait to coalesce a fuller one?*  Waiting
amortizes the fixed per-dispatch overhead across more samples; the limit
on waiting is the head request's latency budget, priced with the
dataflow cost model's per-batch latency estimate
(:func:`repro.dataflow.cost_model.forward_batch_latency_s` via the
worker's ``service_time_s``).
"""

from __future__ import annotations

import math

from repro.errors import ServingError
from repro.serving.queue import AdmissionQueue


class MicroBatcher:
    """Decides when a micro-batch is ready to close."""

    def __init__(self, max_batch: int, slo_latency_s: float) -> None:
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if slo_latency_s <= 0:
            raise ServingError(
                f"SLO latency must be positive, got {slo_latency_s}"
            )
        self.max_batch = int(max_batch)
        self.slo_latency_s = float(slo_latency_s)

    def budget_end_s(self, request) -> float:
        """Absolute instant the request should be finished by.

        The explicit deadline when one is attached; otherwise arrival +
        the configured SLO target (best-effort requests still shape
        batching — they just cannot be deadline-shed).
        """
        if request.deadline_s is not None:
            return request.deadline_s
        return request.arrival_s + self.slo_latency_s

    def should_dispatch(
        self,
        queue: AdmissionQueue,
        now_s: float,
        next_refill_s: float | None,
        service_time_fn,
    ) -> bool:
        """True when an idle worker should take a batch *now*.

        ``service_time_fn(batch_size)`` is the worker's cost-model
        latency estimate; ``next_refill_s`` is the next instant the queue
        could grow (next arrival or retry release), or None when no more
        are coming.

        Dispatch immediately when the batch is already full or nothing
        further is coming.  Dispatch too when serving the current batch
        *right now* already lands at (or past) the head's budget — waiting
        can only finish later, so coalescing further cannot help the head.
        Otherwise wait only if serving the head request in a (one larger)
        batch that closes at the refill instant would still land inside
        the head's budget — the cost model prices that hypothetical
        finish.  A refill instant already in the past (a same-instant
        arrival/retry not yet drained into the queue) coalesces from
        ``now_s``, not from the stale instant — pricing the wait with a
        bygone start time would understate the hypothetical finish and
        hold dispatches that can no longer gain anything.
        """
        depth = len(queue)
        if depth == 0:
            return False
        if depth >= self.max_batch:
            return True
        if next_refill_s is None or math.isinf(next_refill_s):
            return True
        head = queue.peek()
        budget = self.budget_end_s(head)
        if now_s + service_time_fn(depth) >= budget:
            return True
        grown = min(depth + 1, self.max_batch)
        finish_if_waiting = max(next_refill_s, now_s) + service_time_fn(grown)
        return finish_if_waiting > budget

    def size_batch(self, queue: AdmissionQueue) -> int:
        """How many requests the next dispatch should take."""
        return min(len(queue), self.max_batch)
