"""Per-worker circuit breaker driven by fault-manager health.

Standard three-state breaker, virtual-time native:

- **CLOSED** — traffic flows.  Consecutive batch failures count up;
  crossing ``failure_threshold`` (or an explicit health-signal trip —
  ``unconverged_fraction`` over threshold) opens the circuit.
- **OPEN** — the worker is quarantined.  After ``cooldown_s`` of virtual
  time the next ``allow`` poll moves to half-open.
- **HALF_OPEN** — exactly one probe batch is allowed through (the server
  attempts a :class:`~repro.faults.FaultManager` repair first).  Success
  closes the circuit; failure re-opens it and restarts the cooldown.

Every transition flows through the ``on_transition`` callback, which the
server uses to emit telemetry events/counters and append to the decision
log — trips and restores are observable, never silent.
"""

from __future__ import annotations

import enum

from repro.errors import ServingError


class BreakerState(enum.Enum):
    """Circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting breaker over one worker, on virtual time."""

    def __init__(
        self,
        worker_id: int,
        failure_threshold: int = 3,
        cooldown_s: float = 1e-3,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ServingError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ServingError(f"cooldown must be positive, got {cooldown_s}")
        self.worker_id = worker_id
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s: float | None = None
        self._probe_floor_s = float("-inf")
        self._on_transition = on_transition

    # ------------------------------------------------------------------
    def _transition(self, now_s: float, to: BreakerState, reason: str) -> None:
        if to is self.state:
            return
        before, self.state = self.state, to
        if to is BreakerState.OPEN:
            # Probe scheduling is monotone: a forced trip carrying a
            # stale timestamp (e.g. a chaos storm firing against a
            # breaker that already probed at a later instant) must never
            # move next_probe_s() backward, or the event loop would
            # schedule a probe in its own past.
            self.opened_at_s = max(now_s, self._probe_floor_s - self.cooldown_s)
            self._probe_floor_s = self.opened_at_s + self.cooldown_s
        if self._on_transition is not None:
            self._on_transition(now_s, self.worker_id, before, to, reason)

    # ------------------------------------------------------------------
    def allow(self, now_s: float) -> bool:
        """May this worker take a batch at ``now_s``?

        Polling an OPEN breaker whose cooldown has elapsed performs the
        OPEN -> HALF_OPEN transition (the probe opportunity).
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            # Same arithmetic as next_probe_s(): an event loop that
            # advances exactly to the probe instant must be allowed
            # through (now - opened >= cooldown can differ in floats).
            if now_s >= self.opened_at_s + self.cooldown_s:
                self._transition(now_s, BreakerState.HALF_OPEN, "cooldown_elapsed")
                return True
            return False
        return True  # HALF_OPEN: the single probe (worker busy gates reentry)

    def next_probe_s(self) -> float | None:
        """When an OPEN breaker becomes probeable (None unless OPEN)."""
        if self.state is not BreakerState.OPEN:
            return None
        return self.opened_at_s + self.cooldown_s

    # ------------------------------------------------------------------
    def record_success(self, now_s: float) -> None:
        """A batch (or probe) completed cleanly."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(now_s, BreakerState.CLOSED, "probe_succeeded")

    def record_failure(self, now_s: float) -> None:
        """A batch (or probe) failed on this worker."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(now_s, BreakerState.OPEN, "probe_failed")
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(now_s, BreakerState.OPEN, "failure_threshold")

    def trip(self, now_s: float, reason: str) -> None:
        """Open immediately on an out-of-band health signal."""
        if self.state is not BreakerState.OPEN:
            self._transition(now_s, BreakerState.OPEN, reason)
