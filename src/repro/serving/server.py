"""The request-level serving engine: admit, coalesce, dispatch, survive.

:class:`TridentServer` is a discrete-event loop over a
:class:`~repro.runtime.clock.VirtualClock`.  Four event sources drive it
— arrivals, batch completions, retry releases, and scheduled actions
(e.g. a forced mid-run degradation) — and every decision it takes
(admit / shed / dispatch / complete / fail / retry / breaker transition /
repair) is appended to a structured decision log.  Nothing reads the
wall clock and the only randomness is retry jitter from one seeded
generator drawn in loop order, so the same seed and arrival schedule
replay to a bit-identical decision log and identical per-request
outputs.

Robustness ladder, outermost first:

1. **Admission control** — a request whose deadline the current backlog
   estimate already rules out is shed immediately
   (``deadline_unreachable``); a full queue admits only by displacing a
   strictly lower-priority resident (``priority_evicted`` /
   ``queue_full``).
2. **Deadline enforcement** — queued requests whose deadline can no
   longer be met even by an immediate solo dispatch are shed before
   capacity is wasted on them (``deadline_expired``).
3. **Retry with backoff** — a batch that fails on a degraded worker
   hands its requests back for exponential-backoff + jittered retry,
   bounded by the retry budget (``retries_exhausted``).
4. **Circuit breaking** — repeated failures or an over-threshold health
   signal quarantine the worker; half-open probes (preceded by a
   fault-manager repair attempt) restore it.
5. **Graceful drain** — if every worker is dead and nothing is in
   flight, the residual queue sheds as ``no_worker`` instead of hanging.

Every outcome is a structured object; the loop never lets a
:class:`~repro.errors.WorkerFault` escape.
"""

from __future__ import annotations

import bisect
import dataclasses
import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.errors import IntegrityFault, ServingError, WorkerFault
from repro.runtime.clock import VirtualClock
from repro.serving.batcher import MicroBatcher
from repro.serving.breaker import BreakerState, CircuitBreaker
from repro.serving.queue import AdmissionQueue
from repro.serving.request import (
    CompletedRequest,
    InferenceRequest,
    RejectedRequest,
    ShedReason,
)
from repro.serving.worker import AcceleratorWorker
from repro.telemetry.log import get_logger
from repro.telemetry.session import (
    counter as _metric_counter,
    emit_event as _emit_event,
    gauge as _metric_gauge,
    histogram as _metric_histogram,
    trace_span as _trace_span,
)

_log = get_logger("repro.serving.server")

#: Latency-histogram buckets matched to microsecond-scale virtual SLOs.
LATENCY_BUCKETS = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 1e-3, 1e-2, 0.1, 1.0,
)


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for the serving loop."""

    #: Admission-queue depth bound (backpressure point).
    max_queue_depth: int = 64
    #: Micro-batch size cap.
    max_batch: int = 16
    #: Latency target; also the implicit budget for deadline-less requests.
    slo_latency_s: float = 1e-5
    #: Execution attempts per request beyond the first.
    max_retries: int = 2
    #: First retry delay; attempt k waits ``backoff * factor**(k-1)``.
    retry_backoff_s: float = 5e-7
    retry_backoff_factor: float = 2.0
    #: Uniform jitter added to each retry delay (decorrelates thundering
    #: herds; drawn from the server's seeded generator).
    retry_jitter_s: float = 1e-7
    #: Consecutive batch failures before a worker's breaker opens.
    breaker_failure_threshold: int = 3
    #: Quarantine length before a half-open probe.
    breaker_cooldown_s: float = 2e-5
    #: Seed for the retry-jitter generator.
    seed: int = 0
    #: When > 0, batch executions run on a thread pool of this size
    #: (scheduling stays single-threaded and decisions are unchanged —
    #: only the numpy work fans out).
    executor_threads: int = 0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServingError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.slo_latency_s <= 0:
            raise ServingError(
                f"slo_latency_s must be positive, got {self.slo_latency_s}"
            )
        if self.max_retries < 0:
            raise ServingError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0 or self.retry_jitter_s < 0:
            raise ServingError("retry backoff and jitter must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ServingError(
                f"retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        if self.executor_threads < 0:
            raise ServingError(
                f"executor_threads must be >= 0, got {self.executor_threads}"
            )


@dataclass
class ServeReport:
    """Everything one serving run produced, conservation-checked."""

    submitted: int
    completed: list[CompletedRequest]
    shed: list[RejectedRequest]
    decisions: list[dict]
    breaker_transitions: list[dict]
    retries_scheduled: int
    slo_latency_s: float
    #: Request ids that were admitted at least once.
    admitted_ids: set[int] = field(default_factory=set)

    # -- tallies -------------------------------------------------------
    @property
    def admitted(self) -> int:
        """Requests that entered the queue at least once."""
        return len(self.admitted_ids)

    def shed_by_reason(self) -> dict[str, int]:
        """Shed counts keyed by reason value."""
        out: dict[str, int] = {}
        for rejection in self.shed:
            out[rejection.reason.value] = out.get(rejection.reason.value, 0) + 1
        return out

    def latencies_s(self) -> list[float]:
        """Sorted completion latencies."""
        return sorted(c.latency_s for c in self.completed)

    def latency_quantile_s(self, q: float) -> float:
        """Exact empirical latency quantile (0 when nothing completed)."""
        lat = self.latencies_s()
        if not lat:
            return 0.0
        index = min(len(lat) - 1, max(0, int(round(q * (len(lat) - 1)))))
        return lat[index]

    @property
    def slo_attainment(self) -> float:
        """Fraction of *admitted* requests that completed within budget."""
        if not self.admitted_ids:
            return 1.0
        met = sum(
            1
            for c in self.completed
            if c.deadline_met and c.latency_s <= self.slo_latency_s
        )
        return met / len(self.admitted_ids)

    @property
    def completion_rate(self) -> float:
        """Fraction of admitted requests that completed at all."""
        if not self.admitted_ids:
            return 1.0
        return len(self.completed) / len(self.admitted_ids)

    def conservation_ok(self) -> bool:
        """Every submitted request terminated exactly once."""
        completed_ids = {c.request.request_id for c in self.completed}
        shed_ids = {r.request.request_id for r in self.shed}
        return (
            not (completed_ids & shed_ids)
            and len(completed_ids) + len(shed_ids) == self.submitted
            and len(self.completed) + len(self.shed) == self.submitted
        )

    def as_dict(self) -> dict:
        """Summary (no per-request payloads) for JSON export."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": len(self.completed),
            "shed": self.shed_by_reason(),
            "retries_scheduled": self.retries_scheduled,
            "breaker_transitions": list(self.breaker_transitions),
            "p50_latency_s": self.latency_quantile_s(0.50),
            "p99_latency_s": self.latency_quantile_s(0.99),
            "slo_latency_s": self.slo_latency_s,
            "slo_attainment": self.slo_attainment,
            "completion_rate": self.completion_rate,
            "conservation_ok": self.conservation_ok(),
        }

    def render(self) -> str:
        """Human-readable run summary."""
        shed = self.shed_by_reason()
        lines = [
            "serving summary",
            f"  submitted            {self.submitted}",
            f"  admitted             {self.admitted}",
            f"  completed            {len(self.completed)}"
            f"  ({self.completion_rate * 100:.1f}% of admitted)",
            f"  shed                 {len(self.shed)}"
            + (
                "  ("
                + ", ".join(f"{k}={v}" for k, v in sorted(shed.items()))
                + ")"
                if shed
                else ""
            ),
            f"  retries scheduled    {self.retries_scheduled}",
            f"  breaker transitions  {len(self.breaker_transitions)}",
            f"  p50 latency          {self.latency_quantile_s(0.5) * 1e6:.2f} us",
            f"  p99 latency          {self.latency_quantile_s(0.99) * 1e6:.2f} us",
            f"  SLO target           {self.slo_latency_s * 1e6:.2f} us",
            f"  SLO attainment       {self.slo_attainment * 100:.2f}% of admitted",
        ]
        return "\n".join(lines)


# Event-category precedence at equal timestamps: free workers first
# (batch completions, then pipeline ingest releases), then apply world
# changes, then release retries, then admit fresh arrivals.
_COMPLETION, _INGEST, _ACTION, _RETRY, _ARRIVAL = 0, 1, 2, 3, 4


class TridentServer:
    """Deterministic request-level serving over accelerator workers."""

    def __init__(
        self,
        workers: list[AcceleratorWorker],
        config: ServerConfig | None = None,
        clock: VirtualClock | None = None,
        rollup=None,
    ) -> None:
        if not workers:
            raise ServingError("need at least one worker")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ServingError(f"worker ids must be unique, got {ids}")
        in_dims = {w.input_dim for w in workers}
        if len(in_dims) != 1:
            raise ServingError(
                f"workers disagree on input width: {sorted(in_dims)}"
            )
        self.workers = sorted(workers, key=lambda w: w.worker_id)
        self.config = config or ServerConfig()
        self.clock = clock or VirtualClock()
        for worker in self.workers:
            worker.bind_clock(self.clock)
        self.queue = AdmissionQueue(self.config.max_queue_depth)
        self.batcher = MicroBatcher(
            self.config.max_batch, self.config.slo_latency_s
        )
        self.breakers = {
            w.worker_id: CircuitBreaker(
                w.worker_id,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                on_transition=self._on_breaker_transition,
            )
            for w in self.workers
        }
        self.rng = np.random.default_rng(self.config.seed)
        #: Always-on serving rollup (``repro.telemetry.rollup``) the fleet
        #: controller reads.  Deliberately *not* the opt-in telemetry
        #: session: control decisions must be identical whether or not a
        #: user enabled tracing, so the controller's inputs cannot route
        #: through an opt-in sink.
        self.rollup = rollup
        # -- fleet policy knobs (mutated by the controller) -------------
        #: Admission floor: requests below this priority are shed as
        #: ``degraded_shed``.  None = accept all priorities.
        self.min_priority: int | None = None
        #: Traffic classes (``InferenceRequest.kind``) currently frozen.
        self.frozen_kinds: set[str] = set()
        #: Additive per-tenant priority boost applied at admission.
        self.tenant_boost: dict[str, int] = {}
        #: Workers draining toward decommission: they finish in-flight
        #: batches but receive no new dispatches.
        self.draining: set[int] = set()
        #: Warm-up gate: worker id -> instant it may first take traffic.
        self._warm_at: dict[int, float] = {}
        # -- run state --------------------------------------------------
        self._busy_until: dict[int, float | None] = {
            w.worker_id: None for w in self.workers
        }
        self._half_open_probed: set[int] = set()
        self._attempts: dict[int, int] = {}
        self._arrivals: list[InferenceRequest] = []
        self._arrival_index = 0
        self._retries: list[tuple[float, int, InferenceRequest]] = []
        self._actions: list[tuple[float, int, str, object]] = []
        self._action_index = 0
        self._completions: list[tuple[float, int, int, tuple, float]] = []
        #: Pipeline ingest releases: instants an overlapped worker frees
        #: its first stage before the in-flight batch finishes.  Pure
        #: wake-ups — popping one just gives ``_dispatch_all`` a chance.
        self._ingest_events: list[tuple[float, int]] = []
        self._event_seq = 0
        self._decision_seq = 0
        self._pool: ThreadPoolExecutor | None = None
        # -- results ----------------------------------------------------
        self.decisions: list[dict] = []
        self.breaker_transitions: list[dict] = []
        self.completed: list[CompletedRequest] = []
        self.shed: list[RejectedRequest] = []
        self.retries_scheduled = 0

    # ------------------------------------------------------------------
    # Decision log + telemetry plumbing
    # ------------------------------------------------------------------
    def _decide(self, kind: str, **fields) -> None:
        record = {"seq": self._decision_seq, "t": self.clock.now(), "kind": kind}
        record.update(fields)
        self._decision_seq += 1
        self.decisions.append(record)
        payload = {k: v for k, v in record.items() if k != "kind"}
        _emit_event(f"serve_{kind}", **payload)

    def _on_breaker_transition(self, now_s, worker_id, before, to, reason):
        record = {
            "t": now_s,
            "worker": worker_id,
            "from": before.value,
            "to": to.value,
            "reason": reason,
        }
        self.breaker_transitions.append(record)
        self._decide(
            "breaker", worker=worker_id, frm=before.value, to=to.value,
            reason=reason,
        )
        _metric_counter("repro_breaker_transitions_total", to=to.value).inc()
        _log.info(
            "breaker worker %d: %s -> %s (%s)",
            worker_id, before.value, to.value, reason,
        )

    def _record_shed(
        self, request: InferenceRequest, reason: ShedReason, detail: str = ""
    ) -> None:
        rejection = RejectedRequest(
            request=request,
            reason=reason,
            shed_s=self.clock.now(),
            attempts=self._attempts.get(request.request_id, 0),
            detail=detail,
        )
        self.shed.append(rejection)
        self._decide(
            "shed", request=request.request_id, reason=reason.value,
            priority=request.priority,
        )
        if self.rollup is not None:
            self.rollup.record_shed(
                self.clock.now(), reason.value, request.priority,
                request.tenant,
            )
        _metric_counter("repro_requests_shed_total", reason=reason.value).inc()

    # ------------------------------------------------------------------
    # Fleet lifecycle (the control plane's actuation surface)
    # ------------------------------------------------------------------
    def record_decision(self, kind: str, **fields) -> None:
        """Public decision-log entry point for external control loops.

        Controller actuations land in the same ordered stream as admits,
        dispatches, and sheds, so a replayed run reproduces the control
        trajectory verbatim.
        """
        self._decide(kind, **fields)

    def add_worker(self, worker: AcceleratorWorker, warm_at_s: float | None = None):
        """Commission a worker mid-run; returns it.

        ``warm_at_s`` gates the first dispatch: until that instant the
        worker is *warming* — visible in the roster but taking no
        traffic and excluded from capacity estimates (scaling up never
        instantly flatters the admission estimator).  An event-loop
        wake-up is scheduled at the warm instant so an idle loop does
        not sleep through it.
        """
        wid = worker.worker_id
        if any(w.worker_id == wid for w in self.workers):
            raise ServingError(f"worker id {wid} already commissioned")
        if self.workers and worker.input_dim != self.workers[0].input_dim:
            raise ServingError(
                f"worker {wid} input width {worker.input_dim} != fleet "
                f"width {self.workers[0].input_dim}"
            )
        worker.bind_clock(self.clock)
        self.workers = sorted(
            self.workers + [worker], key=lambda w: w.worker_id
        )
        self.breakers[wid] = CircuitBreaker(
            wid,
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            on_transition=self._on_breaker_transition,
        )
        self._busy_until[wid] = None
        now = self.clock.now()
        if warm_at_s is not None and warm_at_s > now:
            self._warm_at[wid] = float(warm_at_s)
            self.schedule_action(
                float(warm_at_s), f"warmup_worker_{wid}", lambda server: None
            )
        self._decide(
            "commission", worker=wid,
            warm_at=self._warm_at.get(wid, now), fleet=len(self.workers),
        )
        return worker

    def begin_drain(self, worker_id: int) -> None:
        """Stop dispatching to a worker; in-flight batches still finish."""
        if all(w.worker_id != worker_id for w in self.workers):
            raise ServingError(f"cannot drain unknown worker {worker_id}")
        if worker_id in self.draining:
            return
        self.draining.add(worker_id)
        self._decide("drain_begin", worker=worker_id, fleet=len(self.workers))

    def worker_idle(self, worker_id: int) -> bool:
        """True when the worker has nothing in flight (safe to remove)."""
        return self._busy_until.get(worker_id) is None and not any(
            wid == worker_id for _, _, wid, _, _ in self._completions
        )

    def remove_worker(self, worker_id: int) -> AcceleratorWorker:
        """Decommission an idle worker; returns it for checkpointing.

        Refuses while a batch is in flight — graceful drain means every
        dispatched request settles (completes or retries) before its
        worker leaves the roster, which is what keeps the conservation
        audit whole across scale-down.
        """
        if len(self.workers) <= 1:
            raise ServingError("cannot remove the last worker")
        if not self.worker_idle(worker_id):
            raise ServingError(
                f"worker {worker_id} still has in-flight work; drain first"
            )
        for index, worker in enumerate(self.workers):
            if worker.worker_id == worker_id:
                break
        else:
            raise ServingError(f"cannot remove unknown worker {worker_id}")
        self.workers = self.workers[:index] + self.workers[index + 1:]
        del self.breakers[worker_id]
        del self._busy_until[worker_id]
        self.draining.discard(worker_id)
        self._warm_at.pop(worker_id, None)
        self._half_open_probed.discard(worker_id)
        self._decide(
            "decommission", worker=worker_id, fleet=len(self.workers)
        )
        return worker

    def active_worker_ids(self) -> list[int]:
        """Workers eligible for new dispatches (warm, not draining)."""
        now = self.clock.now()
        return [
            w.worker_id
            for w in self.workers
            if w.worker_id not in self.draining
            and self._warm_at.get(w.worker_id, now) <= now
        ]

    def serving_worker_count(self) -> int:
        """Workers the dispatch loop could use right now (breaker-gated)."""
        return len(self._serving_workers())

    def pending_work(self) -> bool:
        """True while any request could still arrive, retry, or complete.

        The controller's stop condition: once this is False the run is
        drained and a recurring control tick must not reschedule itself
        (the event loop would otherwise never terminate).
        """
        return bool(
            self._arrival_index < len(self._arrivals)
            or self._retries
            or self._completions
            or self._ingest_events
            or len(self.queue)
        )

    # ------------------------------------------------------------------
    # Capacity estimation (admission control)
    # ------------------------------------------------------------------
    def _serving_workers(self) -> list[AcceleratorWorker]:
        """Workers that could take a batch right now.

        Excludes hard-open breakers, draining workers, and workers still
        inside their warm-up window — capacity estimates must price only
        what dispatch would actually use.
        """
        now = self.clock.now()
        return [
            w
            for w in self.workers
            if self.breakers[w.worker_id].state is not BreakerState.OPEN
            and w.worker_id not in self.draining
            and self._warm_at.get(w.worker_id, now) <= now
        ]

    def _min_service_s(self) -> float:
        """Fastest possible single-request service time right now."""
        serving = self._serving_workers() or self.workers
        return min(w.service_time_s(1) for w in serving)

    def _worker_free_s(self, worker_id: int, now_s: float) -> float:
        """Instant the worker can ingest a new batch (``now_s`` if idle).

        An explicit ``None`` check: ``busy_until or now_s`` would also
        coerce a legitimate ``busy_until == 0.0`` — a dispatch issued at
        clock start — into ``now_s``, silently misreading "busy until
        t=0" as "idle".
        """
        busy_until = self._busy_until[worker_id]
        return now_s if busy_until is None else busy_until

    def _estimate_completion_s(self, now_s: float) -> float:
        """Conservative finish estimate for a request admitted at ``now_s``.

        Prices the backlog with the cost model: everything queued ahead
        plus this request, in full batches, spread across workers the
        breakers currently allow, starting when the earliest of those
        workers frees up.
        """
        serving = self._serving_workers()
        if not serving:
            return float("inf")
        # Priced with the batcher's *live* size cap, not the static
        # config: the fleet controller retunes the micro-batch knobs
        # mid-run and admission must follow.
        max_batch = self.batcher.max_batch
        full_batch_s = max(w.service_time_s(max_batch) for w in serving)
        earliest_free = min(
            self._worker_free_s(w.worker_id, now_s) for w in serving
        )
        batches = -(-(len(self.queue) + 1) // max_batch)
        drain_s = batches * full_batch_s / len(serving)
        return max(now_s, earliest_free) + drain_s

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, request: InferenceRequest, is_retry: bool) -> None:
        now = self.clock.now()
        if not is_retry:
            boost = self.tenant_boost.get(request.tenant, 0)
            if boost:
                request = dataclasses.replace(
                    request, priority=request.priority + boost
                )
        if request.kind in self.frozen_kinds:
            self._record_shed(
                request,
                ShedReason.DEGRADED_SHED,
                f"traffic class {request.kind!r} frozen by degraded mode",
            )
            return
        if self.min_priority is not None and request.priority < self.min_priority:
            self._record_shed(
                request,
                ShedReason.DEGRADED_SHED,
                f"below admission floor (priority {request.priority} < "
                f"{self.min_priority})",
            )
            return
        if request.deadline_s is not None:
            if self._estimate_completion_s(now) > request.deadline_s:
                self._record_shed(
                    request,
                    ShedReason.DEADLINE_UNREACHABLE,
                    "admission estimate past deadline",
                )
                return
        admitted, evicted = self.queue.offer(request)
        if not admitted:
            self._record_shed(
                request, ShedReason.QUEUE_FULL, "queue full, not outranked"
            )
            return
        if evicted is not None:
            self._record_shed(
                evicted,
                ShedReason.PRIORITY_EVICTED,
                f"displaced by request {request.request_id} "
                f"(priority {request.priority})",
            )
        self._decide(
            "admit",
            request=request.request_id,
            priority=request.priority,
            retry=is_retry,
            depth=len(self.queue),
        )
        if not is_retry:
            _metric_counter("repro_requests_admitted_total").inc()
        if self.rollup is not None:
            self.rollup.record_queue_depth(now, len(self.queue))
        _metric_gauge(
            "repro_serve_queue_depth", "Admission-queue depth"
        ).set_at(len(self.queue), now)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _next_refill_s(self) -> float | None:
        """Next instant the queue could gain a request, if any."""
        candidates = []
        if self._arrival_index < len(self._arrivals):
            candidates.append(self._arrivals[self._arrival_index].arrival_s)
        if self._retries:
            candidates.append(self._retries[0][0])
        return min(candidates) if candidates else None

    def _dispatch_all(self) -> None:
        now = self.clock.now()
        min_service = self._min_service_s()
        for hopeless in self.queue.drop_hopeless(now, min_service):
            self._record_shed(
                hopeless,
                ShedReason.DEADLINE_EXPIRED,
                "deadline unreachable even dispatching now",
            )
        for worker in self.workers:
            if not len(self.queue):
                break
            wid = worker.worker_id
            if wid in self.draining:
                continue
            warm_at = self._warm_at.get(wid)
            if warm_at is not None:
                if warm_at > now:
                    continue
                del self._warm_at[wid]
            busy_until = self._busy_until[wid]
            if busy_until is not None and busy_until > now:
                continue
            breaker = self.breakers[wid]
            was_open = breaker.state is BreakerState.OPEN
            if not breaker.allow(now):
                continue
            if breaker.state is BreakerState.HALF_OPEN:
                if was_open:
                    # Entering half-open: the quarantine window is when
                    # maintenance runs — one repair sweep per window.
                    self._probe_repair(worker)
                if wid in self._half_open_probed:
                    continue  # one probe at a time
                size = 1  # risk one request on an unproven worker
                self._half_open_probed.add(wid)
            else:
                if not self.batcher.should_dispatch(
                    self.queue, now, self._next_refill_s(),
                    worker.service_time_s,
                ):
                    continue
                size = self.batcher.size_batch(self.queue)
            batch = tuple(self.queue.pop_batch(size))
            ingest_free, finish = worker.dispatch_times_s(now, len(batch))
            self._busy_until[wid] = ingest_free
            self._event_seq += 1
            heapq.heappush(
                self._completions,
                (finish, self._event_seq, wid, batch, now),
            )
            if ingest_free < finish:
                # Overlapped worker: wake the loop when its first stage
                # frees so the next batch can enter before this one exits.
                self._event_seq += 1
                heapq.heappush(
                    self._ingest_events, (ingest_free, self._event_seq)
                )
            self._decide(
                "dispatch",
                worker=wid,
                requests=[r.request_id for r in batch],
                batch=len(batch),
                probe=breaker.state is BreakerState.HALF_OPEN,
            )
            _metric_histogram(
                "repro_serve_batch_occupancy",
                "Dispatched micro-batch size / max_batch",
                buckets=(0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0),
            ).observe(len(batch) / self.batcher.max_batch)
            if self.rollup is not None:
                self.rollup.record_queue_depth(now, len(self.queue))
            _metric_gauge(
                "repro_serve_queue_depth", "Admission-queue depth"
            ).set_at(len(self.queue), now)

    def _probe_repair(self, worker: AcceleratorWorker) -> None:
        """Half-open maintenance: try to repair before risking a probe."""
        restored = worker.repair()
        self._decide(
            "repair",
            worker=worker.worker_id,
            restored=restored,
            health=worker.unconverged_fraction,
        )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _execute(self, worker: AcceleratorWorker, batch: tuple):
        xs = np.stack([r.x for r in batch])
        with _trace_span(
            "serve_batch",
            accelerator=getattr(worker, "acc", None),
            worker=worker.worker_id,
            batch=len(batch),
        ):
            return worker.execute(xs)

    def _process_completion(
        self, worker: AcceleratorWorker, batch: tuple, dispatch_s: float,
        outcome,
    ) -> None:
        now = self.clock.now()
        wid = worker.worker_id
        busy_until = self._busy_until[wid]
        if busy_until is not None and busy_until <= now:
            # Do not clear an ingest block a *later* dispatch put in the
            # future — an overlapped worker can complete batch i while
            # batch i+1 still occupies its first stage.
            self._busy_until[wid] = None
        breaker = self.breakers[wid]
        was_probe = breaker.state is BreakerState.HALF_OPEN
        if was_probe:
            self._half_open_probed.discard(wid)
        if isinstance(outcome, WorkerFault):
            breaker.record_failure(now)
            if self.rollup is not None and isinstance(outcome, IntegrityFault):
                # The SDC-rate signal the fleet controller quarantines
                # on: only attestation escalations count, not crashes or
                # health trips.
                self.rollup.record_sdc(now, wid)
            self._decide(
                "batch_failed",
                worker=wid,
                requests=[r.request_id for r in batch],
                error=str(outcome),
            )
            for request in batch:
                self._maybe_retry(request)
            return
        # Health-signal trip: even a nominally successful batch does not
        # keep a worker whose readback says it is degrading in rotation.
        if not worker.healthy:
            breaker.trip(now, "health_signal")
        else:
            breaker.record_success(now)
        latency_histogram = _metric_histogram(
            "repro_serve_latency_seconds",
            "Arrival-to-completion latency of served requests",
            buckets=LATENCY_BUCKETS,
        )
        for request, output in zip(batch, outcome):
            attempts = self._attempts.get(request.request_id, 0) + 1
            completion = CompletedRequest(
                request=request,
                output=np.asarray(output),
                worker_id=wid,
                dispatch_s=dispatch_s,
                finish_s=now,
                attempts=attempts,
            )
            self.completed.append(completion)
            if self.rollup is not None:
                self.rollup.record_completion(
                    now,
                    completion.latency_s,
                    completion.deadline_met,
                    request.priority,
                    request.tenant,
                )
            latency_histogram.observe(completion.latency_s)
        _metric_counter("repro_requests_completed_total").inc(len(batch))
        self._decide(
            "complete",
            worker=wid,
            requests=[r.request_id for r in batch],
            batch=len(batch),
        )

    def _maybe_retry(self, request: InferenceRequest) -> None:
        now = self.clock.now()
        attempts = self._attempts.get(request.request_id, 0) + 1
        self._attempts[request.request_id] = attempts
        if attempts > self.config.max_retries:
            self._record_shed(
                request,
                ShedReason.RETRIES_EXHAUSTED,
                f"failed {attempts} attempt(s)",
            )
            return
        delay = (
            self.config.retry_backoff_s
            * self.config.retry_backoff_factor ** (attempts - 1)
            + self.config.retry_jitter_s * float(self.rng.random())
        )
        release = now + delay
        if request.deadline_s is not None and release > request.deadline_s:
            self._record_shed(
                request,
                ShedReason.DEADLINE_EXPIRED,
                "retry backoff lands past deadline",
            )
            return
        self._event_seq += 1
        heapq.heappush(self._retries, (release, self._event_seq, request))
        self.retries_scheduled += 1
        self._decide(
            "retry",
            request=request.request_id,
            attempt=attempts,
            release=release,
        )
        _metric_counter("repro_requests_retried_total").inc()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def schedule_action(self, t_s: float, name: str, fn) -> None:
        """Register a world-changing callback (e.g. forced degradation).

        ``fn(server)`` runs at virtual time ``t_s``, after completions at
        that instant are processed and before new dispatches.
        """
        entry = (float(t_s), len(self._actions), name, fn)
        # Insert into the pending suffix only: entries before
        # ``_action_index`` already executed (their times are in the
        # past), so re-sorting them would cost O(total actions) per call
        # and could shift an executed entry across the index boundary.
        # Tuple order is (t, seq) — seq is unique, callbacks never
        # compare.
        bisect.insort(self._actions, entry, lo=self._action_index)

    def install_chaos(self, session) -> None:
        """Wire an armed :class:`~repro.chaos.session.ChaosSession` in.

        The explicit hook point between a compiled chaos plan and this
        server (no monkey-patching anywhere): scheduled injections
        (stuck bursts, drift bursts, breaker storms, sabotage) become
        ordinary :meth:`schedule_action` callbacks — logged in the
        decision stream like any other world change — and the plan's
        clock jitter is installed on the virtual clock.  Inline
        injections (crashes, output corruption) need no wiring here;
        the workers' execute hooks consume them directly.
        """
        from repro.chaos.injectors import make_server_action

        if session.plan.clock_jitter_s > 0.0:
            self.clock.set_jitter(session.jitter)
        for index, injection in session.scheduled_injections():
            self.schedule_action(
                injection.t_s,
                f"chaos_{injection.kind}#{index}",
                make_server_action(session, index, injection),
            )

    def _next_event(self) -> tuple[float, int] | None:
        """(time, category) of the earliest pending event, if any."""
        best: tuple[float, int] | None = None
        if self._completions:
            best = (self._completions[0][0], _COMPLETION)
        if self._ingest_events:
            t = self._ingest_events[0][0]
            if best is None or (t, _INGEST) < best:
                best = (t, _INGEST)
        if self._action_index < len(self._actions):
            t = self._actions[self._action_index][0]
            if best is None or (t, _ACTION) < best:
                best = (t, _ACTION)
        if self._retries:
            t = self._retries[0][0]
            if best is None or (t, _RETRY) < best:
                best = (t, _RETRY)
        if self._arrival_index < len(self._arrivals):
            t = self._arrivals[self._arrival_index].arrival_s
            if best is None or (t, _ARRIVAL) < best:
                best = (t, _ARRIVAL)
        return best

    def _pop_due_completions(self, t: float) -> list[tuple]:
        due = []
        while self._completions and self._completions[0][0] == t:
            due.append(heapq.heappop(self._completions))
        return due

    def _run_completions(self, due: list[tuple]) -> None:
        """Execute and settle a set of same-instant batch completions.

        Execution (the numpy work) happens first — serially or on the
        thread pool — then outcomes settle in event order, so threading
        changes neither the decision log nor any output.
        """
        worker_by_id = {w.worker_id: w for w in self.workers}
        jobs = []
        for _, seq, wid, batch, dispatch_s in due:
            jobs.append((seq, worker_by_id[wid], batch, dispatch_s))

        def run(job):
            _, worker, batch, _ = job
            try:
                return self._execute(worker, batch)
            except WorkerFault as fault:
                return fault

        if self._pool is not None and len(jobs) > 1:
            outcomes = list(self._pool.map(run, jobs))
        else:
            outcomes = [run(job) for job in jobs]
        for job, outcome in zip(jobs, outcomes):
            _, worker, batch, dispatch_s = job
            self._process_completion(worker, batch, dispatch_s, outcome)

    def run(self, arrivals) -> ServeReport:
        """Serve a pre-declared arrival schedule until fully drained."""
        self._arrivals = sorted(
            arrivals, key=lambda r: (r.arrival_s, r.request_id)
        )
        ids = [r.request_id for r in self._arrivals]
        if len(set(ids)) != len(ids):
            raise ServingError("request ids must be unique")
        self._arrival_index = 0
        submitted = len(self._arrivals)
        admitted_ids: set[int] = set()

        pool = (
            ThreadPoolExecutor(
                max_workers=self.config.executor_threads,
                thread_name_prefix="repro-serve",
            )
            if self.config.executor_threads > 0
            else None
        )
        self._pool = pool
        try:
            with _trace_span("serve", requests=submitted):
                while True:
                    event = self._next_event()
                    if event is None:
                        if len(self.queue) == 0:
                            break
                        # Queue is non-empty but no events remain: the only
                        # way forward is an OPEN breaker becoming probeable.
                        probes = [
                            b.next_probe_s()
                            for b in self.breakers.values()
                            if b.next_probe_s() is not None
                        ]
                        if not probes:
                            for request in self.queue.pop_batch(len(self.queue)):
                                self._record_shed(
                                    request,
                                    ShedReason.NO_WORKER,
                                    "all workers quarantined at drain",
                                )
                            break
                        self.clock.advance_to(
                            max(self.clock.now(), min(probes))
                        )
                        self._dispatch_all()
                        continue
                    t, category = event
                    self.clock.advance_to(max(self.clock.now(), t))
                    if category == _COMPLETION:
                        self._run_completions(self._pop_due_completions(t))
                    elif category == _INGEST:
                        # Pure wake-up: an overlapped worker's first stage
                        # freed; the dispatch pass below does the work.
                        while (
                            self._ingest_events
                            and self._ingest_events[0][0] <= t
                        ):
                            heapq.heappop(self._ingest_events)
                    elif category == _ACTION:
                        _, _, name, fn = self._actions[self._action_index]
                        self._action_index += 1
                        self._decide("action", name=name)
                        fn(self)
                    elif category == _RETRY:
                        _, _, request = heapq.heappop(self._retries)
                        self._admit(request, is_retry=True)
                        if request.request_id not in {
                            r.request.request_id for r in self.shed
                        }:
                            admitted_ids.add(request.request_id)
                    else:  # _ARRIVAL
                        request = self._arrivals[self._arrival_index]
                        self._arrival_index += 1
                        before = len(self.shed)
                        self._admit(request, is_retry=False)
                        if len(self.shed) == before or (
                            self.shed[-1].request.request_id
                            != request.request_id
                        ):
                            admitted_ids.add(request.request_id)
                    self._dispatch_all()
        finally:
            self._pool = None
            if pool is not None:
                pool.shutdown(wait=True)

        report = ServeReport(
            submitted=submitted,
            completed=list(self.completed),
            shed=list(self.shed),
            decisions=list(self.decisions),
            breaker_transitions=list(self.breaker_transitions),
            retries_scheduled=self.retries_scheduled,
            slo_latency_s=self.config.slo_latency_s,
            admitted_ids=admitted_ids,
        )
        if not report.conservation_ok():
            raise ServingError(
                "request conservation violated: "
                f"{submitted} submitted, {len(report.completed)} completed, "
                f"{len(report.shed)} shed"
            )
        return report
