"""The serving-side wrapper around one functional accelerator.

An :class:`AcceleratorWorker` owns a mapped, programmed
:class:`~repro.arch.TridentAccelerator` plus (optionally) the
:class:`~repro.faults.FaultManager` that repairs it.  It contributes
three things to the server:

- **Service time** — the dataflow cost model's per-batch latency
  estimate (:func:`repro.dataflow.cost_model.forward_batch_latency_s`),
  which both the micro-batcher and admission control price against.
- **Health** — the worst ``unconverged_fraction`` across its banks (the
  program-verify readback signal PR 2 introduced) plus the repair log's
  degradation count.  Health gates execution: a degraded worker *fails*
  batches rather than silently serving garbage.
- **Execution** — ``forward_batch`` on the real functional engine, so
  served outputs carry the full quantization/noise/fault physics and
  event accounting of any other forward pass.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.session import (
    corrupt_output as _chaos_corrupt,
    crash_check as _chaos_crash,
)
from repro.dataflow.cost_model import PhotonicArch, forward_batch_latency_s
from repro.errors import ServingError, WorkerFault
from repro.integrity.checker import attest_batch as _attest_batch
from repro.telemetry.log import get_logger

_log = get_logger("repro.serving.worker")


class AcceleratorWorker:
    """One dispatchable accelerator behind the serving layer."""

    def __init__(
        self,
        worker_id: int,
        accelerator,
        manager=None,
        unhealthy_threshold: float = 0.02,
        dispatch_overhead_s: float = 1e-6,
        integrity=None,
    ) -> None:
        if not accelerator.layers:
            raise ServingError(
                f"worker {worker_id}: map and program a network before serving"
            )
        if any(layer.weights is None for layer in accelerator.layers):
            raise ServingError(
                f"worker {worker_id}: all layers need programmed weights"
            )
        if not 0.0 < unhealthy_threshold <= 1.0:
            raise ServingError(
                f"unhealthy threshold must be in (0, 1], got {unhealthy_threshold}"
            )
        if dispatch_overhead_s < 0:
            raise ServingError("dispatch overhead must be non-negative")
        self.worker_id = int(worker_id)
        self.acc = accelerator
        self.manager = manager
        #: Optional :class:`~repro.integrity.IntegrityChecker` attesting
        #: every executed batch (ABFT checksum verification + ladder).
        self.integrity = integrity
        self.unhealthy_threshold = float(unhealthy_threshold)
        self.dispatch_overhead_s = float(dispatch_overhead_s)
        self.arch = PhotonicArch.trident(accelerator.config)
        cols = accelerator.config.bank_cols
        #: Per-layer column (reduction) tile counts for the latency model.
        self.layer_reduction_tiles = tuple(
            -(-layer.in_dim // cols) for layer in accelerator.layers
        )
        self.batches_executed = 0
        self.batches_failed = 0
        #: Escalation count already covered by a scrub (see :meth:`repair`).
        self._scrubbed_escalations = 0
        self._clock = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Model input width this worker serves."""
        return self.acc.layers[0].in_dim

    def bind_clock(self, clock) -> None:
        """Accept the server's virtual clock.

        A single-chip worker has no internal schedule of its own; the
        clock is kept solely so execute-time chaos hook points can
        timestamp their checks against the plan (pipelined workers also
        timestamp their per-stage breakers with it)."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def service_time_s(self, batch_size: int) -> float:
        """Cost-model latency for one batch of ``batch_size`` samples."""
        return forward_batch_latency_s(
            self.arch,
            self.layer_reduction_tiles,
            batch_size,
            overhead_s=self.dispatch_overhead_s,
        )

    def dispatch_times_s(
        self, now_s: float, batch_size: int
    ) -> tuple[float, float]:
        """(ingest-free instant, finish instant) for a dispatch at ``now_s``.

        The server frees a worker for its *next* dispatch at the first
        element and completes the batch at the second.  A single-chip
        worker is exclusive for the whole service time, so both coincide;
        a pipelined worker returns an earlier ingest-free instant (its
        first stage frees before the batch leaves the last stage), which
        is what lets stage k of batch i overlap stage k-1 of batch i+1.
        """
        finish = now_s + self.service_time_s(batch_size)
        return finish, finish

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    @property
    def unconverged_fraction(self) -> float:
        """Worst program-verify non-convergence across *active* banks.

        Only PEs currently backing a mapped tile count: a migrate-tier
        repair abandons a worn PE in place, and its stale readback must
        not keep condemning a worker that no longer uses it.
        """
        active = {
            tile[4] for layer in self.acc.layers for tile in layer.tiles
        }
        fractions = [
            self.acc.pes[index].bank.unconverged_fraction for index in active
        ]
        return max(fractions, default=0.0)

    @property
    def healthy(self) -> bool:
        """True while the health signal is within the serving threshold."""
        return self.unconverged_fraction <= self.unhealthy_threshold

    def health(self) -> dict:
        """Structured health snapshot (for reports and breaker decisions)."""
        return {
            "worker": self.worker_id,
            "unconverged_fraction": self.unconverged_fraction,
            "healthy": self.healthy,
            "tiles_unrepaired": (
                self.manager.log.tiles_unrepaired if self.manager else 0
            ),
            "batches_executed": self.batches_executed,
            "batches_failed": self.batches_failed,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, xs: np.ndarray) -> np.ndarray:
        """Run one micro-batch; raises :class:`WorkerFault` when degraded.

        The health gate comes first: a worker whose banks report
        above-threshold non-convergence fails the batch outright (its
        outputs could not be trusted), handing the requests back to the
        server for retry elsewhere or shedding.

        Chaos hook points bracket the forward pass: an armed
        ``worker_crash`` fires at dispatch (before the physics) or drain
        (after it), and an armed ``corrupt_output`` poisons the outputs
        with NaNs — which the finite-output integrity gate then converts
        into a :class:`WorkerFault`, so corrupted values can never reach
        a requester.  With no chaos session active each hook costs one
        global read; the hooks live here, not in ``forward_batch``,
        precisely to keep the accelerator's hot loop untouched.

        When an :class:`~repro.integrity.IntegrityChecker` is attached,
        the batch is additionally ABFT-attested *after* the chaos hooks
        (so the check sees exactly what a requester would): finite but
        wrong outputs — ``silent_corrupt`` chaos, analog faults — trip
        the checksum ladder and either recover or escalate as a
        retryable :class:`~repro.errors.IntegrityFault`.
        """
        now = self._now()
        if not self.healthy:
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} degraded: unconverged fraction "
                f"{self.unconverged_fraction:.3f} > "
                f"{self.unhealthy_threshold:.3f}"
            )
        reason = _chaos_crash(self.worker_id, "dispatch", now)
        if reason is not None:
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} crashed at dispatch: {reason}"
            )
        outputs = self.acc.forward_batch(
            xs, record=self.integrity is not None
        )
        outputs = _chaos_corrupt(self.worker_id, now, outputs)
        reason = _chaos_crash(self.worker_id, "drain", now)
        if reason is not None:
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} crashed at drain: {reason}"
            )
        if self.integrity is not None:
            try:
                outputs = _attest_batch(
                    self.integrity,
                    xs,
                    outputs,
                    worker_id=self.worker_id,
                    now_s=now,
                    manager=self.manager,
                )
            except WorkerFault:
                self.batches_failed += 1
                raise
        if not np.all(np.isfinite(outputs)):
            self.batches_failed += 1
            raise WorkerFault(
                f"worker {self.worker_id} output integrity check failed: "
                "non-finite values in batch output"
            )
        self.batches_executed += 1
        return outputs

    # ------------------------------------------------------------------
    # Degradation / repair (the breaker's collaborators)
    # ------------------------------------------------------------------
    def degrade(
        self, fraction: float, stuck_level: int | None = None, rng=None
    ) -> int:
        """Inject stuck faults and refresh readback so health reflects them.

        Models a mid-run wear event.  The post-injection reprogram is
        what updates each bank's verify readback (and therefore
        ``unconverged_fraction``) — without program-verify enabled the
        damage stays invisible and the worker keeps serving degraded.
        An external ``rng`` (a chaos injection's derived stream) leaves
        the accelerator's own generator untouched.  Returns the number
        of newly stuck cells.
        """
        stuck = self.acc.inject_stuck_faults(
            fraction, stuck_level=stuck_level, rng=rng
        )
        if self.acc.verify_writer is not None:
            for layer in self.acc.layers:
                for tile_index in range(len(layer.tiles)):
                    self.acc.reprogram_tile(layer.index, tile_index)
        _log.warning(
            "worker %d degraded: %d stuck cells injected (health %.3f)",
            self.worker_id, stuck, self.unconverged_fraction,
        )
        return stuck

    def repair(self) -> bool:
        """Walk the fault-repair ladder; True when health is restored.

        Called by the server when a breaker goes half-open — the
        quarantine window is when maintenance runs.  Without a
        :class:`~repro.faults.FaultManager` the worker cannot self-heal.
        """
        if self.manager is None and self.integrity is None:
            return self.healthy
        if self.manager is not None:
            self.manager.repair()
        if self.integrity is not None:
            escalated = self.integrity.counters.escalated
            if escalated > self._scrubbed_escalations:
                # Escalated SDC means the data path was provably wrong
                # with no stuck-cell signature the manager could see
                # (drifted realized levels, not a readback fault), so
                # the manager's sweep left the damage in place.  Scrub:
                # reprogram every data tile from the digital weight
                # shadow.  This must happen *before* recalibration —
                # re-baselining thresholds against a corrupted bank
                # would teach the checker to accept the corruption.
                for layer in self.acc.layers:
                    for tile_index in range(len(layer.tiles)):
                        self.acc.reprogram_tile(layer.index, tile_index)
                self._scrubbed_escalations = escalated
            # Repair rewrote (and possibly migrated) the data tiles; the
            # checksum rows must re-track the new deployment and the
            # thresholds must re-baseline against any residual
            # degradation left within budget, or every post-repair
            # batch would trip.
            self.integrity.rewrite_and_recalibrate()
        _log.info(
            "worker %d repair sweep done: health %.3f (%s)",
            self.worker_id,
            self.unconverged_fraction,
            "restored" if self.healthy else "still degraded",
        )
        return self.healthy
