"""Synthetic open-loop serving workloads and the smoke-gate checks.

The canonical workload is a three-phase Poisson arrival process —
**warm** (comfortably under capacity), **burst** (2x the sustainable
rate, forcing priority-aware shedding), **drain** (back under capacity)
— with one accelerator forced into PCM degradation mid-run so the
breaker's trip / repair / restore arc is exercised under live traffic.

Everything is generated from one seeded :class:`numpy.random.Generator`
and served on the virtual clock, so a given seed replays to a
bit-identical decision log; :func:`smoke_checks` turns that plus the
robustness invariants into the pass/fail list the ``repro serve
--smoke`` CI gate prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.serving.request import InferenceRequest, ShedReason
from repro.serving.server import ServeReport, ServerConfig, TridentServer
from repro.serving.worker import AcceleratorWorker


@dataclass(frozen=True)
class Phase:
    """One arrival-process phase."""

    name: str
    n_requests: int
    #: Arrival rate as a multiple of the cluster's sustainable rate.
    rate_multiplier: float

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ServingError(f"{self.name}: n_requests must be >= 0")
        if self.rate_multiplier <= 0:
            raise ServingError(f"{self.name}: rate multiplier must be positive")


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the synthetic serving run."""

    dims: tuple[int, ...] = (12, 16, 4)
    n_workers: int = 2
    seed: int = 7
    phases: tuple[Phase, ...] = (
        Phase("warm", 400, 0.6),
        Phase("burst", 400, 2.0),
        Phase("drain", 400, 0.35),
    )
    #: P(priority = 0 / 1 / 2) for each arrival.
    priority_probs: tuple[float, ...] = (0.97, 0.025, 0.005)
    #: Fraction of requests carrying a hard deadline (rest best-effort).
    deadline_fraction: float = 0.9
    #: Stuck-cell fraction injected into the degraded worker mid-run.
    degrade_fraction: float = 0.08
    #: Which phase the forced degradation lands in (by name).
    degrade_phase: str = "drain"
    server: ServerConfig = ServerConfig(
        max_queue_depth=64,
        max_batch=16,
        slo_latency_s=1e-5,
        max_retries=2,
        retry_backoff_s=5e-7,
        retry_jitter_s=1e-7,
        breaker_failure_threshold=3,
        breaker_cooldown_s=5e-6,
        seed=7,
    )

    def __post_init__(self) -> None:
        if len(self.dims) < 2 or any(d < 1 for d in self.dims):
            raise ServingError(f"dims must be >= 2 positive widths, got {self.dims}")
        if self.n_workers < 1:
            raise ServingError(f"n_workers must be >= 1, got {self.n_workers}")
        if abs(sum(self.priority_probs) - 1.0) > 1e-9:
            raise ServingError("priority probabilities must sum to 1")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ServingError("deadline fraction must be in [0, 1]")
        if not any(p.name == self.degrade_phase for p in self.phases):
            raise ServingError(
                f"degrade phase {self.degrade_phase!r} is not a phase name"
            )


# ----------------------------------------------------------------------
# Fleet construction
# ----------------------------------------------------------------------
def build_worker(
    worker_id: int, dims: tuple[int, ...], seed: int
) -> AcceleratorWorker:
    """One mapped, programmed, repairable accelerator worker."""
    from repro.arch import TridentAccelerator, TridentConfig
    from repro.devices.program_verify import ProgramVerifyConfig
    from repro.faults import FaultManager, RepairConfig

    rows = max(max(dims), 2)
    config = TridentConfig(
        bank_rows=rows, bank_cols=rows, spare_rows=4, convergence_floor=0.0
    )
    acc = TridentAccelerator(
        config=config, seed=seed, program_verify=ProgramVerifyConfig()
    )
    acc.map_mlp(list(dims))
    rng = np.random.default_rng(seed + 1)
    weights = [
        rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
        for i in range(len(dims) - 1)
    ]
    # The migration budget must cover every mapped tile: serving declares a
    # worker healthy only when *all* its active banks converge, so a
    # single-migration budget would strand any second degraded tile.
    n_tiles = sum(len(layer.tiles) for layer in acc.layers)
    manager = FaultManager(
        acc, config=RepairConfig(policy="remap", max_migrations=n_tiles)
    )
    manager.deploy([w.copy() for w in weights])
    return AcceleratorWorker(worker_id, acc, manager=manager)


def sustainable_rate_hz(workers: list[AcceleratorWorker], max_batch: int) -> float:
    """Aggregate full-batch throughput of the fleet [requests/s]."""
    return sum(
        max_batch / worker.service_time_s(max_batch) for worker in workers
    )


# ----------------------------------------------------------------------
# Arrival synthesis
# ----------------------------------------------------------------------
def synthesize_arrivals(
    config: WorkloadConfig,
    rate_hz: float,
    rng: np.random.Generator,
) -> tuple[list[InferenceRequest], dict[str, tuple[float, float]]]:
    """Poisson arrivals for every phase; returns (requests, phase windows)."""
    requests: list[InferenceRequest] = []
    windows: dict[str, tuple[float, float]] = {}
    t = 0.0
    request_id = 0
    n_in = config.dims[0]
    slo = config.server.slo_latency_s
    for phase in config.phases:
        start = t
        lam = rate_hz * phase.rate_multiplier
        for _ in range(phase.n_requests):
            t += float(rng.exponential(1.0 / lam))
            priority = int(
                rng.choice(len(config.priority_probs), p=config.priority_probs)
            )
            deadline = (
                t + slo if rng.random() < config.deadline_fraction else None
            )
            requests.append(
                InferenceRequest(
                    request_id=request_id,
                    x=rng.uniform(-1.0, 1.0, n_in),
                    arrival_s=t,
                    deadline_s=deadline,
                    priority=priority,
                )
            )
            request_id += 1
        windows[phase.name] = (start, t)
    return requests, windows


# ----------------------------------------------------------------------
# The run itself
# ----------------------------------------------------------------------
def run_serve_workload(
    config: WorkloadConfig | None = None,
) -> tuple[ServeReport, TridentServer]:
    """Build the fleet, synthesize arrivals, serve to completion.

    The first worker is forced into PCM degradation a quarter of the way
    into ``degrade_phase`` (stuck-cell injection + readback refresh), so
    its batches start failing, its breaker trips, and the half-open
    repair path has to win the worker back under live traffic.
    """
    config = config or WorkloadConfig()
    workers = [
        build_worker(i, config.dims, config.seed + 101 * i)
        for i in range(config.n_workers)
    ]
    server = TridentServer(workers, config=config.server)
    rate = sustainable_rate_hz(workers, config.server.max_batch)
    rng = np.random.default_rng(config.seed)
    arrivals, windows = synthesize_arrivals(config, rate, rng)

    start, end = windows[config.degrade_phase]
    degrade_at = start + 0.25 * (end - start)
    fraction = config.degrade_fraction

    def force_degradation(srv: TridentServer) -> None:
        srv.workers[0].degrade(fraction, stuck_level=254)

    server.schedule_action(degrade_at, "force_degradation", force_degradation)
    report = server.run(arrivals)
    return report, server


# ----------------------------------------------------------------------
# Smoke gate
# ----------------------------------------------------------------------
def shed_rate_by_priority(report: ServeReport) -> dict[int, float]:
    """Per-priority shed fraction over all submitted requests."""
    submitted: dict[int, int] = {}
    for completion in report.completed:
        p = completion.request.priority
        submitted[p] = submitted.get(p, 0) + 1
    shed: dict[int, int] = {}
    for rejection in report.shed:
        p = rejection.request.priority
        submitted[p] = submitted.get(p, 0) + 1
        shed[p] = shed.get(p, 0) + 1
    return {
        p: shed.get(p, 0) / total for p, total in sorted(submitted.items())
    }


def smoke_checks(
    report: ServeReport, replay: ServeReport
) -> list[tuple[str, bool]]:
    """The ``repro serve --smoke`` pass/fail list."""
    transitions = [(t["to"], t["reason"]) for t in report.breaker_transitions]
    tripped = any(to == "open" for to, _ in transitions)
    restored = any(
        to == "closed" and reason == "probe_succeeded"
        for to, reason in transitions
    )
    rates = shed_rate_by_priority(report)
    high = [rate for p, rate in rates.items() if p > 0]
    priority_skewed = not report.shed or (
        0 in rates and (not high or rates[0] >= max(high))
    )
    reasons_ok = all(
        isinstance(r.reason, ShedReason) and r.detail for r in report.shed
    )
    return [
        ("request conservation (no silent drops)", report.conservation_ok()),
        (">= 99% of admitted requests completed", report.completion_rate >= 0.99),
        ("p99 admitted latency within SLO",
         report.latency_quantile_s(0.99) <= report.slo_latency_s),
        ("overload shed requests (backpressure engaged)", len(report.shed) > 0),
        ("shedding skewed away from high priority", priority_skewed),
        ("every shed carries a structured reason", reasons_ok),
        ("breaker tripped on degradation", tripped),
        ("breaker restored via half-open probe", restored),
        ("retries exercised", report.retries_scheduled > 0),
        ("replay is bit-identical", replay.decisions == report.decisions),
    ]
