"""The ``repro shard --smoke`` workload: serve a too-big model, audited.

The scenario is the sharding tentpole end to end: a model whose tile
count exceeds one shard-sized accelerator (provably — the smoke gate
first tries the single-chip mapping and requires the
:class:`~repro.errors.MappingError`), planned into a >= 2 stage pipeline
by the cost model, served by one :class:`~repro.serving.sharded.
ShardedWorker` on the virtual clock, and checked for the properties that
make sharding trustworthy rather than merely plausible:

- every completed output is **bit-identical** to a single large
  reference accelerator running the same model (deterministic
  program-verify on both sides) — including requests completed *after*
  a mid-run stage degradation was repaired;
- pipeline **overlap beats serialized** stage execution on the same
  arrival schedule (makespan strictly smaller with batches in flight
  concurrently);
- a degraded stage **drains cleanly**: its breaker (and the server's)
  trips, in-flight batches fail atomically into retries — never partial
  outputs — repair wins the pipeline back through the half-open window,
  and request conservation holds throughout;
- per-stage **event accounting is conserved** vs the reference (forward
  deltas of symbols/activations match exactly);
- the whole run **replays bit-identically** from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError, ServingError
from repro.serving.request import InferenceRequest, ShedReason
from repro.serving.server import ServeReport, ServerConfig, TridentServer
from repro.serving.sharded import ShardedWorker, build_sharded_worker
from repro.sharding import ShardPlan, plan_pipeline


@dataclass(frozen=True)
class ShardWorkloadConfig:
    """Shape of the sharded smoke run."""

    #: Model widths — must overflow one shard (the gate checks it does).
    dims: tuple[int, ...] = (8, 24, 16, 4)
    #: Shard geometry: per-chip PE budget and bank size.
    shard_n_pes: int = 6
    bank_rows: int = 8
    bank_cols: int = 8
    #: Spare rows per bank plus spare PEs per chip — repair headroom.
    spare_rows: int = 4
    spare_pes: int = 4
    seed: int = 11
    #: Burst of best-effort requests (no deadlines, so the overlap vs
    #: serialized makespans compare the same completed set).
    n_requests: int = 240
    arrival_window_s: float = 4e-6
    #: Mid-run fault: stuck-cell fraction, target stage, injection time.
    degrade_fraction: float = 0.04
    degrade_stage: int = 1
    degrade_at_s: float = 8e-6
    #: Stage-breaker cooldown (shorter than the server's, so a repaired
    #: stage is probeable by the time the server's half-open window runs).
    stage_cooldown_s: float = 2.5e-6
    server: ServerConfig = ServerConfig(
        max_queue_depth=512,
        max_batch=16,
        slo_latency_s=1e-5,
        max_retries=5,
        retry_backoff_s=5e-7,
        retry_jitter_s=1e-7,
        breaker_failure_threshold=3,
        breaker_cooldown_s=5e-6,
        seed=11,
    )

    def __post_init__(self) -> None:
        if len(self.dims) < 2 or any(d < 1 for d in self.dims):
            raise ServingError(
                f"dims must be >= 2 positive widths, got {self.dims}"
            )
        if self.n_requests < 1:
            raise ServingError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if not 0.0 < self.degrade_fraction < 1.0:
            raise ServingError("degrade fraction must be in (0, 1)")

    def shard_config(self):
        """The per-chip configuration the planner budgets against."""
        from repro.arch.config import TridentConfig

        return TridentConfig(
            n_pes=self.shard_n_pes,
            bank_rows=self.bank_rows,
            bank_cols=self.bank_cols,
            spare_rows=self.spare_rows,
            convergence_floor=0.0,
        )

    def deterministic_verify(self):
        """Zero-sigma program-verify: fault detection, exact levels."""
        from repro.devices.program_verify import ProgramVerifyConfig

        return ProgramVerifyConfig(write_std_levels=0.0, read_std_levels=0.0)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def model_weights(config: ShardWorkloadConfig) -> list[np.ndarray]:
    """The seeded model the run serves."""
    rng = np.random.default_rng(config.seed + 1)
    return [
        rng.normal(0.0, 0.4, (config.dims[i + 1], config.dims[i]))
        for i in range(len(config.dims) - 1)
    ]


def single_shard_mapping_error(config: ShardWorkloadConfig) -> str | None:
    """The MappingError message a one-shard mapping raises (None = fits)."""
    from repro.arch import TridentAccelerator

    acc = TridentAccelerator(config=config.shard_config())
    try:
        acc.map_mlp(list(config.dims))
    except MappingError as error:
        return str(error)
    return None


def plan_workload(config: ShardWorkloadConfig) -> ShardPlan:
    """Cost-model plan for the workload model on the shard geometry."""
    return plan_pipeline(
        config.dims, config.shard_config(), batch=config.server.max_batch
    )


def build_reference_accelerator(config: ShardWorkloadConfig):
    """One large single-chip accelerator serving the same model exactly.

    Same bank geometry and deterministic program-verify as the shards,
    just enough PEs to hold the whole model — the bit-identity oracle.
    """
    import dataclasses

    from repro.arch import TridentAccelerator
    from repro.sharding.planner import layer_tile_count

    shard_cfg = config.shard_config()
    total_tiles = sum(
        layer_tile_count(o, i, config.bank_rows, config.bank_cols)
        for i, o in zip(config.dims[:-1], config.dims[1:])
    )
    big = dataclasses.replace(shard_cfg, n_pes=total_tiles)
    acc = TridentAccelerator(
        config=big,
        seed=config.seed,
        program_verify=config.deterministic_verify(),
    )
    acc.map_mlp(list(config.dims))
    acc.set_weights(model_weights(config))
    return acc


def build_pipeline_worker(
    config: ShardWorkloadConfig, overlap: bool
) -> ShardedWorker:
    """The sharded worker under test (fault managers attached)."""
    return build_sharded_worker(
        0,
        plan_workload(config),
        model_weights(config),
        config=config.shard_config(),
        overlap=overlap,
        seed=config.seed,
        program_verify=config.deterministic_verify(),
        with_managers=True,
        spare_pes=config.spare_pes,
        stage_cooldown_s=config.stage_cooldown_s,
    )


def synthesize_shard_arrivals(
    config: ShardWorkloadConfig,
) -> list[InferenceRequest]:
    """A seeded burst of best-effort requests inside the arrival window."""
    rng = np.random.default_rng(config.seed + 2)
    times = np.sort(rng.uniform(0.0, config.arrival_window_s, config.n_requests))
    return [
        InferenceRequest(
            request_id=i,
            x=rng.uniform(-1.0, 1.0, config.dims[0]),
            arrival_s=float(t),
            deadline_s=None,
            priority=0,
        )
        for i, t in enumerate(times)
    ]


# ----------------------------------------------------------------------
# Runs
# ----------------------------------------------------------------------
def run_shard_workload(
    config: ShardWorkloadConfig | None = None,
    *,
    overlap: bool = True,
    degrade: bool = False,
) -> tuple[ServeReport, TridentServer, ShardedWorker]:
    """Serve the burst on one sharded worker; optional mid-run stage fault."""
    config = config or ShardWorkloadConfig()
    worker = build_pipeline_worker(config, overlap)
    server = TridentServer([worker], config=config.server)
    arrivals = synthesize_shard_arrivals(config)
    if degrade:
        fraction = config.degrade_fraction
        stage = config.degrade_stage

        def force_stage_degradation(srv: TridentServer) -> None:
            srv.workers[0].degrade_stage(stage, fraction, stuck_level=254)

        server.schedule_action(
            config.degrade_at_s, "degrade_stage", force_stage_degradation
        )
    report = server.run(arrivals)
    return report, server, worker


def makespan_s(report: ServeReport) -> float:
    """First arrival to last completion (0 when nothing completed)."""
    if not report.completed:
        return 0.0
    start = min(c.request.arrival_s for c in report.completed)
    return max(c.finish_s for c in report.completed) - start


# ----------------------------------------------------------------------
# Smoke gate
# ----------------------------------------------------------------------
def outputs_bit_identical(
    config: ShardWorkloadConfig, report: ServeReport
) -> bool:
    """Every completed output equals the reference accelerator's, exactly.

    Compared batch for batch: completions are regrouped into the
    micro-batches they were dispatched in and each group is forwarded
    through the reference at the same width.  (BLAS accumulation order
    is only pinned per matrix width — a width-1 probe batch and a
    width-240 slab can legitimately differ in the last ULP — so
    "bit-identical to the single-accelerator path" means *the same
    batch* through one big chip, which is also what a request actually
    experiences.)
    """
    if not report.completed:
        return False
    reference = build_reference_accelerator(config)
    groups: dict[tuple, list] = {}
    for completion in report.completed:
        key = (completion.worker_id, completion.dispatch_s, completion.finish_s)
        groups.setdefault(key, []).append(completion)
    for batch in groups.values():
        xs = np.stack([c.request.x for c in batch])
        expected = reference.forward_batch(xs)
        if not all(
            np.array_equal(np.asarray(c.output), expected[i])
            for i, c in enumerate(batch)
        ):
            return False
    return True


def forward_accounting_conserved(config: ShardWorkloadConfig) -> bool:
    """One forward's event delta matches between pipeline and reference."""
    reference = build_reference_accelerator(config)
    worker = build_pipeline_worker(config, overlap=True)
    rng = np.random.default_rng(config.seed + 3)
    xs = rng.uniform(-1.0, 1.0, (config.server.max_batch, config.dims[0]))
    ref_before = reference.counters.snapshot()
    pipe_before = worker.pipeline.counters()
    out_ref = reference.forward_batch(xs)
    out_pipe = worker.execute(xs)
    ref_delta = reference.counters.diff(ref_before).as_dict()
    pipe_after = worker.pipeline.counters()
    pipe_delta = {
        key: pipe_after.as_dict()[key] - pipe_before.as_dict()[key]
        for key in pipe_before.as_dict()
    }
    # Every chip pays its own inference-mode entry; all *work* events
    # (writes, symbols, activations) must match the reference exactly.
    ref_delta.pop("mode_switches")
    pipe_delta.pop("mode_switches")
    return np.array_equal(out_ref, out_pipe) and ref_delta == pipe_delta


def shard_smoke_checks(
    config: ShardWorkloadConfig | None = None,
) -> tuple[list[tuple[str, bool]], dict]:
    """Run the full audit; returns (pass/fail list, detail numbers)."""
    config = config or ShardWorkloadConfig()
    plan = plan_workload(config)
    infeasible_msg = single_shard_mapping_error(config)

    overlap_report, _, _ = run_shard_workload(config, overlap=True)
    serial_report, _, _ = run_shard_workload(config, overlap=False)
    fault_report, _, fault_worker = run_shard_workload(
        config, overlap=True, degrade=True
    )
    replay_report, _, _ = run_shard_workload(config, overlap=True, degrade=True)

    overlap_makespan = makespan_s(overlap_report)
    serial_makespan = makespan_s(serial_report)

    transitions = [
        (t["to"], t["reason"]) for t in fault_report.breaker_transitions
    ]
    tripped = any(to == "open" for to, _ in transitions)
    restored = any(
        to == "closed" and reason == "probe_succeeded"
        for to, reason in transitions
    )
    stage_tripped = any(
        t["to"] == "open" and t["stage"] == config.degrade_stage
        for t in fault_worker.stage_breaker_transitions
    )
    stage_restored = any(
        t["to"] == "closed" and t["stage"] == config.degrade_stage
        for t in fault_worker.stage_breaker_transitions
    )
    reasons_ok = all(
        isinstance(r.reason, ShedReason) and r.detail
        for r in fault_report.shed
    )

    checks = [
        ("model provably overflows one shard", infeasible_msg is not None),
        (">= 2 pipeline stages, each within shard capacity",
         plan.n_stages >= 2
         and all(
             s.n_tiles <= plan.capacity_tiles or s.row_sharded
             for s in plan.stages
         )),
        ("all requests completed (overlap run)",
         overlap_report.completion_rate == 1.0
         and overlap_report.conservation_ok()),
        ("outputs bit-identical to single-accelerator reference",
         outputs_bit_identical(config, overlap_report)),
        ("forward event accounting conserved vs reference",
         forward_accounting_conserved(config)),
        ("pipeline overlap beats serialized stages",
         0.0 < overlap_makespan < serial_makespan),
        ("stage fault: server breaker tripped", tripped),
        ("stage fault: degraded stage's breaker tripped", stage_tripped),
        ("stage fault: drained cleanly (conservation + structured sheds)",
         fault_report.conservation_ok() and reasons_ok),
        ("stage fault: no corrupted outputs (all bit-identical)",
         outputs_bit_identical(config, fault_report)),
        ("stage fault: repair restored the pipeline",
         restored and stage_restored),
        ("retries exercised by the stage fault",
         fault_report.retries_scheduled > 0),
        ("replay is bit-identical",
         replay_report.decisions == fault_report.decisions),
    ]
    details = {
        "plan": plan.as_dict(),
        "single_shard_error": infeasible_msg,
        "overlap_makespan_s": overlap_makespan,
        "serialized_makespan_s": serial_makespan,
        "overlap_speedup": (
            serial_makespan / overlap_makespan if overlap_makespan else 0.0
        ),
        "fault_completion_rate": fault_report.completion_rate,
        "fault_shed": fault_report.shed_by_reason(),
        "stage_breaker_transitions": fault_worker.stage_breaker_transitions,
    }
    return checks, details
