"""Cascaded spectral analysis of a weight-bank row bus.

In broadcast-and-weight, the WDM comb travels along one waveguide past a
chain of add-drop rings, one per channel.  Two physical effects the simple
per-ring picture misses:

1. **En-route depletion** — channel i is partially absorbed/dropped by every
   ring j < i it passes before reaching its own ring, so later channels see
   a slightly weaker, spectrally distorted comb.
2. **Composite crosstalk** — a ring's Lorentzian drop response, evaluated at
   its neighbours' wavelengths, leaks their (already depleted) power into
   its photodetector.

Both are computed here by cascading the exact ring transfer functions, all
vectorized over wavelength.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.mrr import AddDropMRR, RingGeometry
from repro.devices.waveguide import WDMChannelPlan
from repro.errors import DeviceError


def tuned_ring(reference: AddDropMRR, wavelength_m: float) -> AddDropMRR:
    """Copy of ``reference`` retargeted to resonate at ``wavelength_m``.

    Physically: trimming n_eff (post-fabrication or by design) so the
    nearest resonance lands exactly on the channel.
    """
    if wavelength_m <= 0:
        raise DeviceError("wavelength must be positive")
    resonance = reference.geometry.nearest_resonance(wavelength_m)
    scale = wavelength_m / resonance
    geometry = RingGeometry(
        radius_m=reference.geometry.radius_m,
        effective_index=reference.geometry.effective_index * scale,
        group_index=reference.geometry.group_index,
    )
    return AddDropMRR(
        geometry=geometry,
        input_coupling=reference.input_coupling,
        drop_coupling=reference.drop_coupling,
        ring_loss=reference.ring_loss,
        extra_loss=reference.extra_loss,
    )


def cascade_through(
    rings: list[AddDropMRR], wavelengths: np.ndarray
) -> np.ndarray:
    """Power transmission (n_rings + 1, n_wavelengths) along the bus.

    Row r is the comb's power spectrum *arriving at* ring r (row 0 is the
    input; the final row is what exits the bus).  Vectorized per ring.
    """
    lam = np.asarray(wavelengths, dtype=np.float64)
    out = np.empty((len(rings) + 1, lam.shape[0]), dtype=np.float64)
    out[0] = 1.0
    running = np.ones_like(lam)
    for r, ring in enumerate(rings, start=1):
        running = running * ring.through(lam)
        out[r] = running
    return out


@dataclass(frozen=True)
class BusSpectrum:
    """Cascaded spectral view of one weight-bank row."""

    plan: WDMChannelPlan
    rings: tuple[AddDropMRR, ...]
    #: arrival[r, i]: power of channel i arriving at ring r (depleted).
    arrival: np.ndarray
    #: drop[r, i]: fraction of channel i's *arriving* power ring r drops.
    drop: np.ndarray

    @classmethod
    def build(
        cls,
        plan: WDMChannelPlan,
        reference: AddDropMRR | None = None,
        extra_losses: np.ndarray | None = None,
    ) -> "BusSpectrum":
        """Cascade one tuned ring per channel along the bus.

        ``extra_losses`` optionally sets each ring's GST attenuation
        (amplitude, in (0, 1]); default is the clean ring.
        """
        reference = reference or AddDropMRR()
        lams = plan.wavelengths
        rings = []
        for i, lam in enumerate(lams):
            ring = tuned_ring(reference, float(lam))
            if extra_losses is not None:
                ring = ring.with_extra_loss(float(extra_losses[i]))
            rings.append(ring)
        arrival = cascade_through(rings, lams)[:-1]  # what each ring sees
        drop = np.stack([ring.drop(lams) for ring in rings])
        return cls(plan=plan, rings=tuple(rings), arrival=arrival, drop=drop)

    # ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        """Number of WDM channels on the bus."""
        return self.plan.n_channels

    def depletion(self) -> np.ndarray:
        """Per-channel power fraction remaining when it reaches its own
        ring — 1.0 for channel 0, decreasing down the chain."""
        idx = np.arange(self.n_channels)
        return self.arrival[idx, idx]

    def served_power_matrix(self) -> np.ndarray:
        """S[i, j]: fraction of channel j's input power dropped by ring i,
        including en-route depletion.  Diagonal = wanted signal; off-
        diagonal = physical crosstalk."""
        return self.drop * self.arrival

    def crosstalk_db(self) -> float:
        """Worst-case off-diagonal leakage relative to the wanted signal."""
        s = self.served_power_matrix()
        signal = np.diag(s).copy()
        leak = s - np.diag(signal)
        worst = float((leak / signal[:, None]).max())
        if worst <= 0:
            return -np.inf
        return 10.0 * np.log10(worst)

    def effective_bits(self) -> int:
        """*Uncompensated* resolution above the raw crosstalk floor.

        A leakage floor at x (linear) limits distinguishable levels to
        ~1/x, i.e. floor(log2(1/x)) bits.  Deployed systems calibrate the
        (deterministic) mixing away — this figure measures how much the
        calibration must correct, not the final system resolution.
        """
        s = self.served_power_matrix()
        signal = np.diag(s)
        leak_per_ring = s.sum(axis=1) - signal
        worst = float((leak_per_ring / signal).max())
        if worst <= 0:
            return 16
        return max(0, int(np.floor(np.log2(1.0 / worst))))


def physical_crosstalk_matrix(
    plan: WDMChannelPlan, reference: AddDropMRR | None = None
) -> np.ndarray:
    """Normalized leakage matrix from the cascaded physical model.

    X[i, j] = (power of channel j landing on detector i) / (power of
    channel i landing on detector i); diagonal is exactly 1.
    """
    spectrum = BusSpectrum.build(plan, reference)
    s = spectrum.served_power_matrix()
    return s / np.diag(s)[:, None]
