"""Physical-layer optical simulation.

The functional simulator in :mod:`repro.arch` works in normalized signal
units (weights and inputs in [-1, 1]).  This package drops to the physical
layer — watts, amperes, decibels — and answers the questions normalization
hides:

- :mod:`repro.optics.spectrum` — cascaded ring transfer along the shared
  bus: a channel is depleted by every ring it passes before reaching its
  own, and neighbouring resonances leak (the *physical* crosstalk matrix).
- :mod:`repro.optics.physical_bank` — a weight bank simulated end-to-end in
  absolute units: laser powers, splitter and bus losses, per-ring drop /
  through powers at the programmed GST states, balanced photocurrents with
  ampere-domain shot/thermal noise, TIA voltages, and the calibration that
  recovers the normalized MVP.  Cross-validated against
  :class:`repro.arch.weight_bank.WeightBank` in the tests.
- :mod:`repro.optics.link_budget` — the scaling analysis: how many rows and
  columns one laser can drive at a required bit resolution, given losses
  and detector noise.  This is the physical argument behind the paper's
  16 x 16 bank choice.
"""

from repro.optics.link_budget import LinkBudget, LinkBudgetReport
from repro.optics.physical_bank import PhysicalBankOutput, PhysicalWeightBank
from repro.optics.ring_design import (
    RingDesignPoint,
    best_design,
    design_space,
    evaluate_design,
)
from repro.optics.spectrum import BusSpectrum, cascade_through, physical_crosstalk_matrix

__all__ = [
    "best_design",
    "BusSpectrum",
    "cascade_through",
    "design_space",
    "evaluate_design",
    "LinkBudget",
    "LinkBudgetReport",
    "PhysicalBankOutput",
    "PhysicalWeightBank",
    "physical_crosstalk_matrix",
    "RingDesignPoint",
]
