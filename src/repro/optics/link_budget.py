"""Optical link-budget and scaling analysis for PCM-MRR weight banks.

How big can a bank be?  Broadcasting one laser comb to J rows splits power
J ways; every extra column adds a channel but also shot noise; the detector
needs enough SNR to resolve the output at the target bit precision
(SNR >= 6.02 b + 1.76 dB).  This module computes the loss waterfall and
answers the sizing questions — the physical rationale for the paper's
16 x 16 bank at ~1 mW per channel.

All quantities derive from the same device models the simulators use
(ring calibration, detector, bus); nothing here is fitted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE, MW, ROOM_TEMPERATURE
from repro.devices.mrr import AddDropMRR
from repro.devices.pcm_mrr import WeightCalibration, build_calibration
from repro.devices.photodetector import Photodetector
from repro.devices.waveguide import WDMBus, WDMChannelPlan
from repro.errors import ConfigError


@dataclass(frozen=True)
class LinkBudgetReport:
    """Loss waterfall + SNR summary for one bank configuration."""

    rows: int
    cols: int
    channel_power_w: float
    power_at_bank_w: float
    full_scale_current_a: float
    shot_noise_a: float
    thermal_noise_a: float
    snr_db: float
    achievable_bits: int
    waterfall_db: tuple[tuple[str, float], ...]

    def supports(self, bits: int) -> bool:
        """Whether this link resolves the requested precision."""
        return self.achievable_bits >= bits


@dataclass
class LinkBudget:
    """Analytical link budget for a broadcast-and-weight bank."""

    detector: Photodetector = field(default_factory=Photodetector)
    reference_ring: AddDropMRR = field(default_factory=AddDropMRR)
    calibration: WeightCalibration | None = None
    modulator_transmission: float = 0.89
    splitter_excess: float = 0.9
    bus_transmission: float | None = None

    def __post_init__(self) -> None:
        if self.calibration is None:
            self.calibration = build_calibration(self.reference_ring)
        if self.bus_transmission is None:
            self.bus_transmission = WDMBus(WDMChannelPlan(1)).transmission
        if not 0 < self.modulator_transmission <= 1:
            raise ConfigError("modulator transmission must be in (0, 1]")
        if not 0 < self.splitter_excess <= 1:
            raise ConfigError("splitter excess must be in (0, 1]")
        if not 0 < self.bus_transmission <= 1:
            raise ConfigError("bus transmission must be in (0, 1]")

    # ------------------------------------------------------------------
    def power_at_bank_w(self, channel_power_w: float, rows: int) -> float:
        """Per-channel power reaching one row's rings [W]."""
        if channel_power_w <= 0:
            raise ConfigError("channel power must be positive")
        if rows < 1:
            raise ConfigError("rows must be positive")
        return (
            channel_power_w
            * self.modulator_transmission
            * self.bus_transmission
            * self.splitter_excess
            / rows
        )

    def _noise_currents(self, p_bank_w: float, cols: int) -> tuple[float, float]:
        """(shot, thermal) current std [A] at full-scale illumination."""
        r = self.detector.responsivity_a_per_w
        # Worst case: every channel at full power; both diodes loaded at
        # roughly half the total (balanced operating point).
        total_power = cols * p_bank_w
        shot = math.sqrt(
            2.0 * ELEMENTARY_CHARGE * r * total_power * self.detector.bandwidth_hz
        )
        thermal = math.sqrt(
            4.0
            * BOLTZMANN
            * ROOM_TEMPERATURE
            * self.detector.bandwidth_hz
            / self.detector.load_ohms
        )
        return shot, thermal

    # ------------------------------------------------------------------
    def report(
        self, rows: int = 16, cols: int = 16, channel_power_w: float = 1.0 * MW
    ) -> LinkBudgetReport:
        """Full waterfall + SNR for a bank configuration."""
        if cols < 1:
            raise ConfigError("cols must be positive")
        p_bank = self.power_at_bank_w(channel_power_w, rows)
        r = self.detector.responsivity_a_per_w
        full_scale = cols * r * p_bank * self.calibration.d_sym
        shot, thermal = self._noise_currents(p_bank, cols)
        noise = math.hypot(shot, thermal)
        snr_db = 20.0 * math.log10(full_scale / noise)
        bits = max(0, int(math.floor((snr_db - 1.76) / 6.02)))
        waterfall = (
            ("laser (per channel)", 0.0),
            ("modulator", -10 * math.log10(self.modulator_transmission)),
            ("bus", -10 * math.log10(self.bus_transmission)),
            (f"1:{rows} splitter", 10 * math.log10(rows)),
            ("splitter excess", -10 * math.log10(self.splitter_excess)),
        )
        return LinkBudgetReport(
            rows=rows,
            cols=cols,
            channel_power_w=channel_power_w,
            power_at_bank_w=p_bank,
            full_scale_current_a=full_scale,
            shot_noise_a=shot,
            thermal_noise_a=thermal,
            snr_db=snr_db,
            achievable_bits=bits,
            waterfall_db=waterfall,
        )

    def snr_db(self, rows: int, cols: int, channel_power_w: float = 1.0 * MW) -> float:
        """Full-scale output SNR [dB]."""
        return self.report(rows, cols, channel_power_w).snr_db

    def achievable_bits(
        self, rows: int, cols: int, channel_power_w: float = 1.0 * MW
    ) -> int:
        """Output precision the link supports (6.02 b + 1.76 dB rule)."""
        return self.report(rows, cols, channel_power_w).achievable_bits

    def max_rows(
        self, cols: int, bits: int, channel_power_w: float = 1.0 * MW, cap: int = 4096
    ) -> int:
        """Largest row count (splitter fan-out) that still resolves ``bits``.

        SNR decreases monotonically with rows, so binary search applies.
        Returns 0 if even one row fails.
        """
        if bits < 1:
            raise ConfigError("bits must be positive")
        if self.achievable_bits(1, cols, channel_power_w) < bits:
            return 0
        lo, hi = 1, cap
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.achievable_bits(mid, cols, channel_power_w) >= bits:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def required_channel_power_w(self, rows: int, cols: int, bits: int) -> float:
        """Minimum per-channel laser power for the target precision [W].

        Closed form is awkward (shot noise scales with sqrt(P)); bisect on
        a generous power range instead.
        """
        if bits < 1:
            raise ConfigError("bits must be positive")
        lo, hi = 1e-9, 10.0
        if self.achievable_bits(rows, cols, hi) < bits:
            raise ConfigError(
                f"{bits} bits unreachable at {rows}x{cols} even at {hi} W/channel"
            )
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if self.achievable_bits(rows, cols, mid) >= bits:
                hi = mid
            else:
                lo = mid
        return hi

    def scaling_table(
        self,
        row_counts: tuple[int, ...] = (1, 4, 8, 16, 32, 64, 128),
        cols: int = 16,
        channel_power_w: float = 1.0 * MW,
    ) -> list[dict[str, float]]:
        """Fan-out sweep: SNR and achievable bits vs row count.

        Columns held fixed; every doubling of rows halves the per-row
        optical power (1:J splitter), costing ~1.5 dB of shot-limited SNR
        (3 dB once thermal noise dominates).  Note that *square* scaling is
        SNR-neutral in the shot-limited regime: total detected power
        cols x P/rows is constant — which is why column count is bounded by
        the WDM span and crosstalk, not by the power budget.
        """
        rows = []
        for n in row_counts:
            rep = self.report(n, cols, channel_power_w)
            rows.append(
                {
                    "rows": n,
                    "snr_db": rep.snr_db,
                    "achievable_bits": rep.achievable_bits,
                    "power_at_bank_uw": rep.power_at_bank_w * 1e6,
                }
            )
        return rows
