"""Ring/GST co-design space exploration.

A real tension the abstract weight model hides: the ring's coupling sets
its Q, and

- **low Q** (strong coupling) gives a *wide weight range* (the lossy
  crystalline state still swings the differential strongly negative) but
  *broad, loss-heavy skirts* that leak neighbouring WDM channels;
- **high Q** (weak coupling) isolates channels but is so loss-sensitive
  that even the amorphous patch's residual absorption collapses the drop
  port — the signed weight range shrinks or vanishes entirely.

The patch geometry (length x confinement) moves the same trade-off from
the other side.

``worst_leakage_db`` below is the *uncompensated* cascaded leakage from
:class:`repro.optics.spectrum.BusSpectrum`.  Deployed broadcast-and-weight
systems do not run uncompensated: the leakage is a deterministic linear
mixing that per-weight feedback calibration absorbs (Tait et al., paper
ref [32]) — which is exactly the abstraction level of
:class:`repro.arch.weight_bank.WeightBank`.  This module quantifies how
much work that calibration has to do, and which geometries keep it easy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.mrr import AddDropMRR
from repro.devices.pcm_mrr import build_calibration
from repro.devices.waveguide import WDMChannelPlan
from repro.errors import ConfigError, DeviceError
from repro.optics.spectrum import BusSpectrum


@dataclass(frozen=True)
class RingDesignPoint:
    """One evaluated (coupling, patch) configuration."""

    coupling: float
    patch_length_m: float
    confinement: float
    q_factor: float
    #: Symmetric weight swing d_sym (0 if signed weights unrealizable).
    d_sym: float
    #: Worst-case uncompensated neighbour leakage [dB] (negative = good).
    worst_leakage_db: float
    #: Whether signed weights are realizable at all.
    viable: bool


def evaluate_design(
    coupling: float,
    patch_length_m: float,
    confinement: float = 0.2,
    n_channels: int = 16,
) -> RingDesignPoint:
    """Score one ring/patch configuration."""
    if not 0.0 < coupling < 1.0:
        raise ConfigError(f"coupling must be in (0, 1), got {coupling}")
    if patch_length_m <= 0:
        raise ConfigError("patch length must be positive")
    ring = AddDropMRR(input_coupling=coupling, drop_coupling=coupling)
    try:
        cal = build_calibration(
            ring, patch_length_m=patch_length_m, confinement=confinement
        )
        d_sym = cal.d_sym
        viable = True
    except DeviceError:
        d_sym = 0.0
        viable = False

    plan = WDMChannelPlan(n_channels)
    # Mid-programming operating point (amplitude 0.95 per pass).
    spectrum = BusSpectrum.build(plan, ring, extra_losses=np.full(n_channels, 0.95))
    return RingDesignPoint(
        coupling=coupling,
        patch_length_m=patch_length_m,
        confinement=confinement,
        q_factor=ring.q_factor(),
        d_sym=d_sym,
        worst_leakage_db=spectrum.crosstalk_db(),
        viable=viable,
    )


def design_space(
    couplings: tuple[float, ...] = (0.90, 0.95, 0.97, 0.983, 0.99),
    patch_lengths_m: tuple[float, ...] = (0.1e-6, 0.2e-6, 0.3e-6, 0.5e-6),
    confinement: float = 0.2,
    n_channels: int = 16,
) -> list[RingDesignPoint]:
    """Sweep the (coupling, patch length) grid."""
    points = []
    for c in couplings:
        for length in patch_lengths_m:
            points.append(evaluate_design(c, length, confinement, n_channels))
    return points


def best_design(
    points: list[RingDesignPoint], max_leakage_db: float = -10.0
) -> RingDesignPoint:
    """Largest weight swing among viable points with acceptable leakage.

    d_sym matters beyond viability: the link budget's full-scale current
    (hence SNR) is proportional to it.  If no point meets the leakage bound
    the constraint is relaxed to the best-isolated viable point.
    """
    if not points:
        raise ConfigError("no design points to choose from")
    viable = [p for p in points if p.viable]
    if not viable:
        raise ConfigError("no viable design point (signed weights unrealizable)")
    ok = [p for p in viable if p.worst_leakage_db <= max_leakage_db]
    if ok:
        return max(ok, key=lambda p: p.d_sym)
    return min(viable, key=lambda p: p.worst_leakage_db)
