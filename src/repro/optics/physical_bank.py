"""End-to-end physical simulation of one PCM-MRR weight bank.

Everything in absolute units: the laser comb in watts, modulator / bus /
splitter losses in dB, per-ring drop and through powers at the programmed
GST states, balanced photocurrents in amperes with physical shot and
thermal noise, and TIA voltages.  A calibration constant derived from the
link (not fitted) recovers the normalized matrix-vector product, and the
tests assert it agrees with the normalized-domain
:class:`repro.arch.weight_bank.WeightBank`.

Physical conventions the normalized model hides:

- Optical amplitudes are non-negative: inputs here are activations in
  [0, 1] (post-ReLU, exactly the NN case).  Signed *weights* come from the
  balanced drop-minus-through detection.
- Broadcasting to J rows costs an honest 1/J splitter loss.
- Shot noise scales with the *total* power on each photodiode, not the
  difference — large balanced terms still add noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE, MW, ROOM_TEMPERATURE
from repro.devices.gst import patch_transmission
from repro.devices.mrr import AddDropMRR
from repro.devices.pcm_mrr import WeightCalibration, build_calibration
from repro.devices.photodetector import Photodetector
from repro.devices.tia import TransimpedanceAmplifier
from repro.devices.waveguide import WDMBus, WDMChannelPlan
from repro.errors import DeviceError, ProgrammingError, ShapeError


@dataclass(frozen=True)
class PhysicalBankOutput:
    """One symbol's worth of physical readout."""

    #: Differential photocurrent per row [A].
    currents_a: np.ndarray
    #: TIA output voltage per row [V].
    voltages_v: np.ndarray
    #: Recovered normalized weighted sums (comparable to WeightBank.matvec).
    normalized: np.ndarray
    #: Per-row electrical SNR [dB] (signal over shot+thermal noise).
    snr_db: np.ndarray


@dataclass
class PhysicalWeightBank:
    """A J x N bank simulated at the optical/electrical physical layer."""

    rows: int = 16
    plan: WDMChannelPlan = field(default_factory=lambda: WDMChannelPlan(16))
    reference_ring: AddDropMRR = field(default_factory=AddDropMRR)
    bus: WDMBus | None = None
    detector: Photodetector = field(default_factory=Photodetector)
    tia: TransimpedanceAmplifier = field(default_factory=TransimpedanceAmplifier)
    calibration: WeightCalibration | None = None
    #: Optical power per laser channel [W].
    channel_power_w: float = 1.0 * MW
    #: Modulator insertion loss applied at encode [linear].
    modulator_transmission: float = 0.89
    #: Excess loss of the 1-to-J row splitter beyond the ideal 1/J [linear].
    splitter_excess: float = 0.9
    #: GST patch parameters (must match the calibration build).
    patch_length_m: float = 0.3e-6
    confinement: float = 0.2
    noise_enabled: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ShapeError(f"rows must be positive, got {self.rows}")
        if self.channel_power_w <= 0:
            raise DeviceError("channel power must be positive")
        if not 0 < self.modulator_transmission <= 1:
            raise DeviceError("modulator transmission must be in (0, 1]")
        if not 0 < self.splitter_excess <= 1:
            raise DeviceError("splitter excess must be in (0, 1]")
        if self.bus is None:
            self.bus = WDMBus(self.plan)
        if self.calibration is None:
            self.calibration = build_calibration(
                self.reference_ring,
                patch_length_m=self.patch_length_m,
                confinement=self.confinement,
            )
        self._rng = np.random.default_rng(self.seed)
        self._fractions: np.ndarray | None = None
        self._t_drop: np.ndarray | None = None
        self._t_through: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def cols(self) -> int:
        """Column (wavelength) count."""
        return self.plan.n_channels

    def program(self, weights: np.ndarray) -> np.ndarray:
        """Program signed weights; returns the realized (quantized) ones.

        Weight -> level -> crystalline fraction -> ring transmission, all
        through the shared device calibration (vectorized).
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.rows, self.cols):
            raise ShapeError(
                f"expected weights of shape ({self.rows}, {self.cols}), got {w.shape}"
            )
        if np.any(np.abs(w) > 1 + 1e-12):
            raise ProgrammingError("weights must lie in [-1, 1]")
        levels = self.calibration.weights_to_levels(w)
        realized = self.calibration.levels_to_weights(levels)
        fractions = self.calibration.weight_to_fraction(realized)
        self._fractions = fractions

        # On-resonance port transmissions, vectorized over the whole bank.
        amp = np.sqrt(
            patch_transmission(
                fractions, self.patch_length_m, confinement=self.confinement
            )
        )
        r1 = self.reference_ring.input_coupling
        r2 = self.reference_ring.drop_coupling
        a = self.reference_ring.ring_loss * amp
        den = (1.0 - r1 * r2 * a) ** 2
        self._t_through = (r2 * a - r1) ** 2 / den
        self._t_drop = (1.0 - r1 * r1) * (1.0 - r2 * r2) * a / den
        return realized

    # ------------------------------------------------------------------
    @property
    def power_per_channel_at_bank_w(self) -> float:
        """Per-channel power reaching one row's rings at full modulation."""
        ideal_split = 1.0 / self.rows
        return (
            self.channel_power_w
            * self.modulator_transmission
            * self.bus.transmission
            * ideal_split
            * self.splitter_excess
        )

    @property
    def current_scale_a(self) -> float:
        """Photocurrent corresponding to a normalized weighted sum of 1.

        Derived from the link, not fitted: responsivity x per-channel power
        at the bank x the calibration's symmetric differential swing.
        """
        return (
            self.detector.responsivity_a_per_w
            * self.power_per_channel_at_bank_w
            * self.calibration.d_sym
        )

    def forward(self, x: np.ndarray) -> PhysicalBankOutput:
        """One analog symbol: activations in [0, 1] through the bank."""
        if self._t_drop is None:
            raise ProgrammingError("program the bank before forwarding")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.cols,):
            raise ShapeError(f"expected input of shape ({self.cols},), got {x.shape}")
        if np.any(x < 0) or np.any(x > 1 + 1e-12):
            raise DeviceError(
                "physical amplitudes are activations in [0, 1]; encode signed "
                "data differentially upstream"
            )
        p_channel = self.power_per_channel_at_bank_w * x  # (N,)
        p_drop = self._t_drop * p_channel  # (J, N)
        p_through = self._t_through * p_channel
        plus = p_drop.sum(axis=1)
        minus = p_through.sum(axis=1)
        r = self.detector.responsivity_a_per_w
        current = r * (plus - minus)

        shot_var = (
            2.0 * ELEMENTARY_CHARGE * r * (plus + minus) * self.detector.bandwidth_hz
        )
        thermal_var = (
            4.0
            * BOLTZMANN
            * ROOM_TEMPERATURE
            * self.detector.bandwidth_hz
            / self.detector.load_ohms
        )
        noise_std = np.sqrt(shot_var + thermal_var)
        if self.noise_enabled:
            current = current + self._rng.standard_normal(self.rows) * noise_std

        voltages = self.tia.amplify(current)
        normalized = current / self.current_scale_a
        with np.errstate(divide="ignore"):
            snr = np.where(
                np.abs(current) > 0,
                20.0 * np.log10(np.maximum(np.abs(current), 1e-30) / noise_std),
                -np.inf,
            )
        return PhysicalBankOutput(
            currents_a=current,
            voltages_v=voltages,
            normalized=normalized,
            snr_db=snr,
        )

    # ------------------------------------------------------------------
    def expected_normalized(self, x: np.ndarray) -> np.ndarray:
        """The normalized weighted sum the link *should* produce (exact
        ring physics, no noise) — used by cross-validation tests."""
        if self._fractions is None:
            raise ProgrammingError("program the bank first")
        d = self._t_drop - self._t_through
        return (d @ np.asarray(x, dtype=np.float64)) / self.calibration.d_sym
