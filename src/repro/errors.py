"""Exception hierarchy for the Trident reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An invalid configuration value or combination of values."""


class DeviceError(ReproError):
    """A photonic/electronic device was used outside its operating envelope."""


class ProgrammingError(DeviceError):
    """A PCM cell or weight bank was programmed with an out-of-range value."""


class FaultError(ProgrammingError):
    """Invalid fault injection or fault-map operation.

    Subclasses :class:`ProgrammingError` only as a deprecation-compatible
    alias: fault injection historically raised ``ProgrammingError``, so
    existing ``except ProgrammingError`` sites keep working.  New code
    should catch ``FaultError`` — injection is a wear/fault problem, not a
    programming-range problem.
    """


class RepairError(ReproError):
    """A repair action could not be carried out (no spare rows/PEs left,
    or the repair budget is exhausted)."""


class EnduranceExceededError(DeviceError):
    """A PCM cell exceeded its rated switching endurance."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or applied: corrupt or
    truncated file, schema/hash mismatch, or a snapshot incompatible with
    the accelerator it is being loaded into."""


class TrainingAbortedError(ReproError):
    """A resilient training run exhausted its rollback/retry budget and
    aborted.  Raised only by APIs asked to abort loudly; the default
    :class:`~repro.runtime.resilient.ResilientTrainer` path returns a
    structured ``RunReport`` instead."""


class ServingError(ReproError):
    """An invalid serving-layer configuration or scheduling operation."""


class WorkerFault(ServingError):
    """A serving worker's accelerator is too degraded to trust its
    outputs: the batch it was executing failed and its requests must be
    retried elsewhere or shed.  Raised by
    :meth:`repro.serving.AcceleratorWorker.execute`; the server converts
    it into retry/shed decisions — it never escapes the serving loop."""


class IntegrityError(ReproError):
    """An invalid integrity (ABFT) configuration or an operation that
    needs state the checker does not have: attaching checksum tiles
    without PE headroom, verifying before calibration, or verifying a
    forward pass that was not recorded."""


class IntegrityFault(WorkerFault):
    """A worker's output failed its ABFT checksum attestation and the
    escalation ladder (re-execute, digital-spare cross-check) could not
    clear it: the batch carried silent data corruption and must be
    retried on a peer.  Subclasses :class:`WorkerFault` so the server's
    breaker/retry machinery handles it unchanged; the distinct type is
    what feeds the rollup's SDC-rate signal."""


class ChaosError(ReproError):
    """An invalid chaos plan, injection, or soak-harness configuration —
    or (from the soak self-audit) an intentionally unhandled injected
    fault proving the gate can fail."""


class MappingError(ReproError):
    """A neural-network layer could not be mapped onto the hardware."""


class ShardingError(MappingError):
    """A model could not be split across multiple accelerators: no
    feasible cut points under the per-shard capacity, an invalid explicit
    cut, or a stage/weight specification that disagrees with the plan.
    Subclasses :class:`MappingError` — sharding is mapping, scaled out."""


class ShapeError(ReproError):
    """Tensor shapes are inconsistent with the layer/graph definition."""


class ScheduleError(ReproError):
    """The dataflow scheduler produced or received an invalid schedule."""


class WriteConvergenceWarning(UserWarning):
    """A program-and-verify write left more cells unconverged than the
    bank's configured convergence floor allows."""
