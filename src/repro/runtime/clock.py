"""Deterministic virtual time for replayable schedulers.

The serving layer (and any future discrete-event runtime component) must
replay bit-identically from a seed, which rules out ``time.monotonic()``
as a scheduling authority.  A :class:`VirtualClock` is the alternative:
a monotonically advancing float the owning event loop moves explicitly.
Nothing here reads the wall clock, so two runs that advance the clock
through the same sequence of instants are bit-identical by construction.
"""

from __future__ import annotations

from repro.errors import ServingError


class VirtualClock:
    """Explicitly advanced simulation time (seconds, monotone)."""

    __slots__ = ("_now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        if not start_s >= 0.0:
            raise ServingError(f"clock must start at t >= 0, got {start_s}")
        self._now_s = float(start_s)

    def now(self) -> float:
        """Current virtual time [s]."""
        return self._now_s

    def advance(self, dt_s: float) -> float:
        """Move forward by ``dt_s`` (must be >= 0); returns the new time."""
        if dt_s < 0:
            raise ServingError(f"cannot advance by negative dt {dt_s}")
        self._now_s += float(dt_s)
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Jump to absolute time ``t_s`` (must not move backwards)."""
        if t_s < self._now_s:
            raise ServingError(
                f"cannot rewind clock from {self._now_s} to {t_s}"
            )
        self._now_s = float(t_s)
        return self._now_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(t={self._now_s!r})"
