"""Deterministic virtual time for replayable schedulers.

The serving layer (and any future discrete-event runtime component) must
replay bit-identically from a seed, which rules out ``time.monotonic()``
as a scheduling authority.  A :class:`VirtualClock` is the alternative:
a monotonically advancing float the owning event loop moves explicitly.
Nothing here reads the wall clock, so two runs that advance the clock
through the same sequence of instants are bit-identical by construction.

Chaos jitter rides on the same contract: an optional ``jitter_fn`` (set
via :meth:`VirtualClock.set_jitter`, normally by
``TridentServer.install_chaos``) perturbs *forward* jumps by a
non-negative offset drawn from the chaos plan's seeded stream.  Because
the perturbation is itself a pure function of the chaos seed and the
jump sequence, jittered runs stay bit-identical under replay.
"""

from __future__ import annotations

from repro.errors import ServingError


class VirtualClock:
    """Explicitly advanced simulation time (seconds, monotone)."""

    __slots__ = ("_now_s", "_jitter_fn")

    def __init__(self, start_s: float = 0.0, jitter_fn=None) -> None:
        if not start_s >= 0.0:
            raise ServingError(f"clock must start at t >= 0, got {start_s}")
        self._now_s = float(start_s)
        self._jitter_fn = jitter_fn

    def now(self) -> float:
        """Current virtual time [s]."""
        return self._now_s

    def set_jitter(self, jitter_fn) -> None:
        """Install (or clear, with ``None``) a jitter hook.

        ``jitter_fn(t_s)`` is called on every strictly-forward jump and
        must return a non-negative offset added to the target instant.
        Negative returns are clamped to zero: jitter may delay events,
        never reorder them into the past.
        """
        self._jitter_fn = jitter_fn

    def advance(self, dt_s: float) -> float:
        """Move forward by ``dt_s`` (must be >= 0); returns the new time."""
        if dt_s < 0:
            raise ServingError(f"cannot advance by negative dt {dt_s}")
        return self.advance_to(self._now_s + float(dt_s))

    def advance_to(self, t_s: float) -> float:
        """Jump to absolute time ``t_s`` (must not move backwards)."""
        if t_s < self._now_s:
            raise ServingError(
                f"cannot rewind clock from {self._now_s} to {t_s}"
            )
        if self._jitter_fn is not None and t_s > self._now_s:
            t_s += max(0.0, float(self._jitter_fn(t_s)))
        self._now_s = float(t_s)
        return self._now_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(t={self._now_s!r})"
