"""Crash-safe runtime: checkpoint/restore and resilient training.

Everything a deployment needs to survive its process dying or its
training diverging: a pickle-free, hash-verified, atomically-written
checkpoint format for the accelerator's *entire* physically realized
state (:mod:`repro.runtime.checkpoint`), and a training harness that
checkpoints on a cadence, detects divergence, rolls back, backs off the
learning rate, and repairs faults before retrying
(:mod:`repro.runtime.resilient`).
"""

from repro.runtime.clock import VirtualClock
from repro.runtime.checkpoint import (
    SCHEMA_VERSION,
    CheckpointStore,
    decode_state,
    describe_checkpoint,
    encode_state,
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.runtime.resilient import (
    ResilienceConfig,
    ResilientTrainer,
    RunIncident,
    RunReport,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointStore",
    "decode_state",
    "describe_checkpoint",
    "encode_state",
    "load_checkpoint",
    "save_checkpoint",
    "state_digest",
    "ResilienceConfig",
    "ResilientTrainer",
    "RunIncident",
    "RunReport",
    "VirtualClock",
]
