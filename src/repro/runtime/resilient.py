"""Resilient in-situ training: periodic checkpoints, divergence rollback,
learning-rate backoff, and repair-on-rollback.

The paper's in-situ training story (Sec. III-A-2) assumes runs finish.  On
wear-limited PCM hardware they often don't: a loss can go non-finite when
quantized updates resonate with stuck cells, a spike can wipe out hours of
progress, and every reprogram burned before a crash is endurance the
device never gets back.  :class:`ResilientTrainer` wraps
:class:`~repro.training.insitu.InSituTrainer` with the run harness a
durable deployment needs:

- **Checkpoint every N steps** through a
  :class:`~repro.runtime.checkpoint.CheckpointStore` — the full
  accelerator snapshot (:meth:`~repro.arch.TridentAccelerator.state_dict`)
  plus trainer progress (step, learning rate, loss history) and, when a
  :class:`~repro.faults.FaultManager` is attached, its detector strike
  maps, so a resumed run's repair decisions match an uninterrupted one.
- **Detect divergence**: a non-finite loss, a loss above
  ``spike_factor`` x the recent median, or a hardware-model exception
  mid-step all count.
- **Roll back + back off**: restore the last good checkpoint, multiply
  the learning rate by ``lr_backoff`` per consecutive retry (exponential
  backoff, floored at ``min_lr``), and run a
  :meth:`~repro.faults.FaultManager.repair` sweep first — divergence
  caused by freshly stuck cells gets *repaired*, not blindly retried.
- **Abort gracefully**: after ``max_retries`` consecutive failed retries
  the run stops with a structured :class:`RunReport` (never a stack
  trace), its checkpoints intact for post-mortem or manual resume.

Determinism: the batch schedule is a pure function of ``(data seed,
step)``, and rollback/resume restore the accelerator RNG in place, so a
run interrupted at any checkpoint boundary and resumed — in the same
process or a fresh one — produces bit-identical losses, weights, and
event counters to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

import numpy as np

from repro.errors import CheckpointError, ConfigError, ReproError
from repro.nn.datasets import Dataset
from repro.runtime.checkpoint import CheckpointStore
from repro.telemetry.log import get_logger
from repro.telemetry.session import (
    counter as _metric_counter,
    emit_event as _emit_event,
)

_CHECKPOINT_KIND = "training"

_log = get_logger("repro.runtime.resilient")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the checkpoint/rollback harness."""

    #: Write a checkpoint every this many completed steps.
    checkpoint_every: int = 5
    #: Consecutive rollbacks tolerated before the run aborts gracefully.
    max_retries: int = 3
    #: Learning-rate multiplier per consecutive retry (exponential).
    lr_backoff: float = 0.5
    #: Floor under the backed-off learning rate.
    min_lr: float = 1e-4
    #: A finite loss counts as divergence above this multiple of the
    #: recent-median loss (guards against blow-ups that never reach inf).
    spike_factor: float = 25.0
    #: Number of recent losses the spike detector medians over.
    spike_window: int = 5
    #: Checkpoints retained on disk.
    keep_last: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 < self.lr_backoff <= 1.0:
            raise ConfigError(
                f"lr_backoff must lie in (0, 1], got {self.lr_backoff}"
            )
        if self.min_lr <= 0:
            raise ConfigError(f"min_lr must be positive, got {self.min_lr}")
        if self.spike_factor <= 1.0:
            raise ConfigError(
                f"spike_factor must exceed 1, got {self.spike_factor}"
            )
        if self.spike_window < 1:
            raise ConfigError(f"spike_window must be >= 1, got {self.spike_window}")
        if self.keep_last < 1:
            raise ConfigError(f"keep_last must be >= 1, got {self.keep_last}")


@dataclass(frozen=True)
class RunIncident:
    """One detected divergence and the recovery that answered it."""

    step: int
    loss: float
    reason: str
    restored_step: int
    lr_after: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (stable key order)."""
        return {
            "step": self.step,
            "loss": self.loss,
            "reason": self.reason,
            "restored_step": self.restored_step,
            "lr_after": self.lr_after,
        }


@dataclass
class RunReport:
    """Structured outcome of a resilient training run."""

    completed: bool
    aborted_reason: str | None
    steps_completed: int
    total_steps: int
    final_loss: float
    final_lr: float
    losses: list[float] = field(default_factory=list)
    rollbacks: int = 0
    checkpoints_written: int = 0
    resumed_from_step: int | None = None
    incidents: list[RunIncident] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (stable key order) for exports and tests."""
        return {
            "completed": self.completed,
            "aborted_reason": self.aborted_reason,
            "steps_completed": self.steps_completed,
            "total_steps": self.total_steps,
            "final_loss": self.final_loss,
            "final_lr": self.final_lr,
            "losses": list(self.losses),
            "rollbacks": self.rollbacks,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from_step": self.resumed_from_step,
            "incidents": [i.as_dict() for i in self.incidents],
        }

    def render(self) -> str:
        """Human-readable summary."""
        lines = [
            f"resilient run: {self.steps_completed}/{self.total_steps} steps "
            + ("completed" if self.completed else f"ABORTED ({self.aborted_reason})"),
            f"  final loss {self.final_loss:.6f}  final lr {self.final_lr:.6g}",
            f"  rollbacks {self.rollbacks}  checkpoints {self.checkpoints_written}"
            + (
                f"  resumed from step {self.resumed_from_step}"
                if self.resumed_from_step is not None
                else ""
            ),
        ]
        for incident in self.incidents:
            lines.append(
                f"  step {incident.step}: {incident.reason} (loss "
                f"{incident.loss:.3g}) -> restored step "
                f"{incident.restored_step}, lr {incident.lr_after:.6g}"
            )
        return "\n".join(lines)


class ResilientTrainer:
    """Checkpointing, self-healing wrapper around an in-situ trainer.

    ``step_hook`` is an instrumentation seam: called before each step with
    the step index, and if it returns a float that value is taken as the
    step's observed loss (the hardware step is skipped) — how tests and
    the CLI inject a NaN-loss step to exercise the rollback ladder without
    corrupting device state.
    """

    def __init__(
        self,
        trainer,
        checkpoint_dir,
        config: ResilienceConfig | None = None,
        manager=None,
        step_hook=None,
    ) -> None:
        self.trainer = trainer
        self.config = config or ResilienceConfig()
        self.store = CheckpointStore(checkpoint_dir, keep_last=self.config.keep_last)
        self.manager = manager
        self.step_hook = step_hook
        self._last_payload: dict | None = None

    # ------------------------------------------------------------------
    # Deterministic batch schedule
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_at(
        data: Dataset, batch_size: int, seed: int, step: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The minibatch for one global step — a pure function of
        ``(seed, step)``, so rollback and resume replay identical data."""
        per_epoch = ceil(data.n_samples / batch_size)
        epoch, index = divmod(step, per_epoch)
        order = np.random.default_rng(seed + epoch).permutation(data.n_samples)
        chosen = order[index * batch_size : (index + 1) * batch_size]
        return data.x[chosen], data.y[chosen]

    # ------------------------------------------------------------------
    # Snapshot plumbing
    # ------------------------------------------------------------------
    def _run_fingerprint(
        self, data: Dataset, batch_size: int, seed: int
    ) -> dict:
        return {
            "batch_size": batch_size,
            "data_seed": seed,
            "n_samples": data.n_samples,
            "n_features": data.n_features,
        }

    def _snapshot(
        self,
        step: int,
        losses: list[float],
        rollbacks: int,
        incidents: list[RunIncident],
        run_fingerprint: dict,
    ) -> dict:
        payload = {
            "step": step,
            "run": run_fingerprint,
            "lr": self.trainer.lr,
            "losses": list(losses),
            "rollbacks": rollbacks,
            "incidents": [i.as_dict() for i in incidents],
            "accelerator": self.trainer.acc.state_dict(),
            "manager": None if self.manager is None else self.manager.state_dict(),
        }
        self.store.save(step, payload, kind=_CHECKPOINT_KIND)
        self._last_payload = payload
        _log.debug("checkpoint written at step %d", step)
        _metric_counter("repro_checkpoints_written_total").inc()
        _emit_event("checkpoint", step=step, lr=self.trainer.lr)
        return payload

    def _restore(self, payload: dict) -> None:
        self.trainer.acc.load_state_dict(payload["accelerator"])
        self.trainer.lr = float(payload["lr"])
        if self.manager is not None and payload.get("manager") is not None:
            self.manager.load_state_dict(payload["manager"])

    # ------------------------------------------------------------------
    def _diverged(self, loss: float, losses: list[float]) -> str | None:
        """Reason string if this step's loss means divergence, else None."""
        if not np.isfinite(loss):
            return "non-finite loss"
        window = [v for v in losses[-self.config.spike_window :] if np.isfinite(v)]
        if window:
            baseline = float(np.median(window))
            if baseline > 0 and loss > self.config.spike_factor * baseline:
                return (
                    f"loss spike ({loss:.3g} > {self.config.spike_factor:g} x "
                    f"median {baseline:.3g})"
                )
        return None

    # ------------------------------------------------------------------
    def run(
        self,
        data: Dataset,
        steps: int,
        batch_size: int = 16,
        seed: int = 0,
        resume: bool = False,
        max_steps_this_run: int | None = None,
    ) -> RunReport:
        """Train for ``steps`` optimizer steps with the full harness.

        With ``resume`` the newest verifiable checkpoint in the store is
        restored first (its run fingerprint must match this call's data
        and batch schedule).  ``max_steps_this_run`` stops the process
        after that many *executed* steps without a final checkpoint —
        the crash-simulation hook used by tests and ``repro resume
        --smoke``; such a run reports ``completed=False`` and resumes
        cleanly later.  Returns a :class:`RunReport`; never raises on
        divergence — an exhausted retry budget aborts gracefully instead.
        """
        if steps < 1:
            raise ConfigError(f"steps must be >= 1, got {steps}")
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        fingerprint = self._run_fingerprint(data, batch_size, seed)

        start_step = 0
        losses: list[float] = []
        rollbacks = 0
        incidents: list[RunIncident] = []
        resumed_from: int | None = None
        if resume:
            newest = self.store.latest(expect_kind=_CHECKPOINT_KIND)
            if newest is not None:
                step_found, payload = newest
                if payload["run"] != fingerprint:
                    raise CheckpointError(
                        "checkpointed run does not match this invocation: "
                        f"snapshot {payload['run']} vs requested {fingerprint}"
                    )
                self._restore(payload)
                self._last_payload = payload
                start_step = int(payload["step"])
                losses = [float(v) for v in payload["losses"]]
                rollbacks = int(payload["rollbacks"])
                incidents = [
                    RunIncident(
                        step=int(i["step"]),
                        loss=float(i["loss"]),
                        reason=str(i["reason"]),
                        restored_step=int(i["restored_step"]),
                        lr_after=float(i["lr_after"]),
                    )
                    for i in payload["incidents"]
                ]
                resumed_from = step_found
                _log.info(
                    "resuming from checkpoint at step %d (lr %.6g)",
                    step_found, self.trainer.lr,
                )
                _emit_event("resume", step=step_found, lr=self.trainer.lr)

        checkpoints_written = 0
        if self._last_payload is None:
            # Anchor checkpoint: rollback always has a target, and a crash
            # before the first cadence point still resumes.
            self._snapshot(start_step, losses, rollbacks, incidents, fingerprint)
            checkpoints_written += 1

        step = start_step
        executed = 0
        retries = 0

        def report(completed: bool, reason: str | None) -> RunReport:
            return RunReport(
                completed=completed,
                aborted_reason=reason,
                steps_completed=step,
                total_steps=steps,
                final_loss=losses[-1] if losses else float("nan"),
                final_lr=self.trainer.lr,
                losses=list(losses),
                rollbacks=rollbacks,
                checkpoints_written=checkpoints_written,
                resumed_from_step=resumed_from,
                incidents=list(incidents),
            )

        while step < steps:
            if max_steps_this_run is not None and executed >= max_steps_this_run:
                return report(False, "halted (simulated crash)")
            forced = self.step_hook(step) if self.step_hook is not None else None
            failure: str | None = None
            if forced is not None:
                loss = float(forced)
            else:
                xb, yb = self._batch_at(data, batch_size, seed, step)
                try:
                    loss = float(self.trainer.train_step(xb, yb))
                except (ReproError, FloatingPointError) as exc:
                    loss = float("inf")
                    failure = f"hardware-model error: {exc}"
            executed += 1
            reason = failure or self._diverged(loss, losses)

            if reason is not None:
                rollbacks += 1
                retries += 1
                if retries > self.config.max_retries:
                    incidents.append(
                        RunIncident(
                            step=step,
                            loss=loss,
                            reason=f"{reason}; retry budget exhausted",
                            restored_step=int(self._last_payload["step"]),
                            lr_after=self.trainer.lr,
                        )
                    )
                    _log.error(
                        "aborting at step %d: %s; %d retries exhausted",
                        step, reason, self.config.max_retries,
                    )
                    _metric_counter("repro_run_aborts_total").inc()
                    _emit_event(
                        "training_abort",
                        step=step,
                        reason=reason,
                        retries=self.config.max_retries,
                    )
                    return report(
                        False,
                        f"{reason} at step {step}; "
                        f"{self.config.max_retries} retries exhausted",
                    )
                payload = self._last_payload
                self._restore(payload)
                # Exponential backoff from the checkpoint's learning rate.
                self.trainer.lr = max(
                    self.config.min_lr,
                    float(payload["lr"]) * self.config.lr_backoff**retries,
                )
                if self.manager is not None:
                    # Repair before retrying: divergence driven by freshly
                    # stuck cells is fixed, not replayed.
                    self.manager.repair()
                restored = int(payload["step"])
                incidents.append(
                    RunIncident(
                        step=step,
                        loss=loss,
                        reason=reason,
                        restored_step=restored,
                        lr_after=self.trainer.lr,
                    )
                )
                _log.warning(
                    "rollback at step %d (%s): restored step %d, lr %.6g",
                    step, reason, restored, self.trainer.lr,
                )
                _metric_counter("repro_rollbacks_total").inc()
                _emit_event(
                    "rollback",
                    step=step,
                    reason=reason,
                    restored_step=restored,
                    lr_after=self.trainer.lr,
                )
                del losses[restored:]
                step = restored
                continue

            losses.append(loss)
            step += 1
            if step % self.config.checkpoint_every == 0:
                self._snapshot(step, losses, rollbacks, incidents, fingerprint)
                checkpoints_written += 1
                retries = 0

        if self._last_payload is None or int(self._last_payload["step"]) != step:
            self._snapshot(step, losses, rollbacks, incidents, fingerprint)
            checkpoints_written += 1
        return report(True, None)
