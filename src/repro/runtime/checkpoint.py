"""Crash-safe checkpoint serialization for accelerator and trainer state.

A checkpoint is a nested *snapshot dict* — plain Python containers,
numbers, strings, booleans, ``None``, and NumPy arrays — produced by the
``state_dict()`` methods on :class:`~repro.arch.TridentAccelerator` and
its components.  This module turns such a dict into a durable file and
back with three guarantees:

1. **Bit-exact round trip.**  Arrays serialize as raw little-endian bytes
   (base64), so every float, NaN payload, and integer survives exactly;
   scalars ride through JSON, whose float encoding (``repr``) round-trips
   IEEE-754 doubles exactly.  ``load(save(x)) == x`` to the bit.
2. **Atomicity.**  Writes go to a temporary file in the target directory,
   are flushed and fsynced, then ``os.replace``d over the destination (and
   the directory entry fsynced).  A crash mid-write leaves either the old
   checkpoint or the new one — never a torn file under the final name.
3. **Integrity + versioning.**  The payload's SHA-256 over its canonical
   JSON form is stored in the header along with a schema version; loading
   verifies both and raises :class:`~repro.errors.CheckpointError` on any
   mismatch, so a corrupt or foreign file can never be silently applied.

:class:`CheckpointStore` manages a directory of step-numbered checkpoints
with bounded retention; ``latest()`` skips corrupt files (e.g. damaged by
an unrelated crash) and falls back to the newest verifiable one.

No pickle anywhere: the format is self-describing JSON, debuggable with a
text editor, and immune to code-execution-on-load.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import re
import warnings
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.telemetry.session import counter as _metric_counter
from repro.telemetry.session import emit_event as _emit_event

#: Bump when the snapshot layout changes incompatibly.
SCHEMA_VERSION = 1
_MAGIC = "trident-checkpoint"
_ARRAY_KEY = "__ndarray__"
_STEP_PATTERN = re.compile(r"^step_(\d{10})\.ckpt$")


# ---------------------------------------------------------------------------
# Codec: snapshot dict <-> JSON-safe tree
# ---------------------------------------------------------------------------
def encode_state(obj):
    """Recursively convert a snapshot tree into JSON-safe form.

    Arrays become ``{"__ndarray__": {dtype, shape, data}}`` with the data
    as base64 of the C-order little-endian bytes; NumPy scalars collapse
    to Python scalars; tuples become lists.  Rejects anything else —
    a snapshot must be fully describable without pickle.
    """
    if isinstance(obj, np.ndarray):
        little = obj.astype(obj.dtype.newbyteorder("<"), copy=False)
        return {
            _ARRAY_KEY: {
                "dtype": str(obj.dtype),
                "shape": list(obj.shape),
                "data": base64.b64encode(np.ascontiguousarray(little).tobytes()).decode(
                    "ascii"
                ),
            }
        }
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"snapshot dict keys must be strings, got {key!r} "
                    f"({type(key).__name__}) — stringify at state_dict time"
                )
            if key == _ARRAY_KEY:
                raise CheckpointError(
                    f"snapshot key {_ARRAY_KEY!r} is reserved for the array codec"
                )
            out[key] = encode_state(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [encode_state(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise CheckpointError(
        f"snapshot values must be arrays, scalars, strings, None, or "
        f"containers thereof; got {type(obj).__name__}"
    )


def decode_state(obj):
    """Inverse of :func:`encode_state` (lists stay lists)."""
    if isinstance(obj, dict):
        if set(obj) == {_ARRAY_KEY}:
            spec = obj[_ARRAY_KEY]
            try:
                dtype = np.dtype(spec["dtype"])
                shape = tuple(int(s) for s in spec["shape"])
                raw = base64.b64decode(spec["data"].encode("ascii"))
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(f"malformed array record: {exc}") from exc
            flat = np.frombuffer(raw, dtype=dtype.newbyteorder("<"))
            return flat.astype(dtype, copy=True).reshape(shape)
        return {key: decode_state(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_state(v) for v in obj]
    return obj


def state_digest(encoded) -> str:
    """SHA-256 of the canonical JSON form of an encoded payload."""
    canonical = json.dumps(
        encoded, sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Atomic single-file save / verified load
# ---------------------------------------------------------------------------
def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def save_checkpoint(path: str | Path, payload: dict, kind: str = "checkpoint") -> Path:
    """Atomically write ``payload`` (a snapshot dict) to ``path``.

    tmp file in the same directory + fsync + ``os.replace`` — the final
    name only ever holds a complete file.  The header records the schema
    version, a ``kind`` tag (e.g. ``"accelerator"``, ``"training"``), and
    the payload's content hash.  Returns the final path.
    """
    path = Path(path)
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint payload must be a dict, got {type(payload).__name__}"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    encoded = encode_state(payload)
    document = {
        "magic": _MAGIC,
        "schema": SCHEMA_VERSION,
        "kind": str(kind),
        "sha256": state_digest(encoded),
        "payload": encoded,
    }
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, allow_nan=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failure before replace leaves the tmp behind
            tmp.unlink(missing_ok=True)
    _fsync_directory(path.parent)
    return path


def load_checkpoint(path: str | Path, expect_kind: str | None = None) -> dict:
    """Load and verify a checkpoint; returns the decoded payload.

    Raises :class:`~repro.errors.CheckpointError` on a missing, truncated,
    or corrupt file, a schema mismatch, a content-hash mismatch, or (when
    ``expect_kind`` is given) the wrong checkpoint kind.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("magic") != _MAGIC:
        raise CheckpointError(f"{path} is not a {_MAGIC} file")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path} has schema version {schema!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    if expect_kind is not None and document.get("kind") != expect_kind:
        raise CheckpointError(
            f"{path} holds a {document.get('kind')!r} checkpoint, "
            f"expected {expect_kind!r}"
        )
    encoded = document.get("payload")
    digest = state_digest(encoded)
    if digest != document.get("sha256"):
        raise CheckpointError(
            f"{path} failed integrity check: content hash {digest[:12]}... "
            f"!= recorded {str(document.get('sha256'))[:12]}... (torn or "
            "tampered file)"
        )
    return decode_state(encoded)


def describe_checkpoint(path: str | Path) -> dict:
    """Header + integrity verdict for one checkpoint file (for the CLI).

    Never raises on a bad file — returns ``{"valid": False, "error": ...}``
    so inspection tooling can report instead of crash.
    """
    path = Path(path)
    try:
        payload = load_checkpoint(path)
        with path.open("r", encoding="utf-8") as handle:
            header = json.load(handle)
        return {
            "path": str(path),
            "valid": True,
            "kind": header.get("kind"),
            "schema": header.get("schema"),
            "sha256": header.get("sha256"),
            "size_bytes": path.stat().st_size,
            "top_level_keys": sorted(payload),
            "step": payload.get("step"),
        }
    except CheckpointError as exc:
        return {"path": str(path), "valid": False, "error": str(exc)}


# ---------------------------------------------------------------------------
# Directory of step-numbered checkpoints
# ---------------------------------------------------------------------------
class CheckpointStore:
    """A directory of ``step_NNNNNNNNNN.ckpt`` files with bounded retention.

    ``save`` writes atomically then prunes to the newest ``keep_last``
    files; ``latest`` walks newest-to-oldest, *verifying* each candidate
    and skipping corrupt ones with a warning — the crash-recovery
    behaviour resilient training relies on.
    """

    def __init__(self, directory: str | Path, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, step: int) -> Path:
        """Canonical file path for one step's checkpoint."""
        if step < 0:
            raise CheckpointError(f"step must be non-negative, got {step}")
        return self.directory / f"step_{step:010d}.ckpt"

    def steps(self) -> list[int]:
        """Ascending step numbers present on disk (unverified)."""
        found = []
        for entry in self.directory.iterdir():
            match = _STEP_PATTERN.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def save(self, step: int, payload: dict, kind: str = "training") -> Path:
        """Write step's checkpoint atomically, then prune old ones."""
        path = save_checkpoint(self.path_for(step), payload, kind=kind)
        self._prune()
        return path

    def load(self, step: int, expect_kind: str | None = None) -> dict:
        """Load one specific step's checkpoint (verified)."""
        return load_checkpoint(self.path_for(step), expect_kind=expect_kind)

    def latest(self, expect_kind: str | None = None) -> tuple[int, dict] | None:
        """Newest *verifiable* checkpoint as ``(step, payload)``, or None.

        Corrupt candidates (torn by a crash, bit-rotted, wrong kind) are
        skipped with a warning rather than ending the run — recovery
        degrades to the previous good snapshot.
        """
        for step in reversed(self.steps()):
            try:
                return step, self.load(step, expect_kind=expect_kind)
            except CheckpointError as exc:
                warnings.warn(
                    f"skipping unusable checkpoint {self.path_for(step).name}: {exc}",
                    stacklevel=2,
                )
                # A skipped checkpoint is a recovery decision, not just a
                # log line: surface it structurally so soak audits and
                # dashboards can count silent-rotation events.
                _emit_event(
                    "checkpoint_corrupt_skipped",
                    path=str(self.path_for(step)),
                    step=int(step),
                    error=str(exc),
                )
                _metric_counter(
                    "repro_checkpoint_corrupt_skipped_total",
                    "Corrupt checkpoint files skipped during store recovery",
                ).inc()
        return None

    def _prune(self) -> None:
        for step in self.steps()[: -self.keep_last]:
            self.path_for(step).unlink(missing_ok=True)
