"""Laser sources and electro-optic encoding.

Each weight-bank column has a dedicated wavelength; the input vector is
amplitude-encoded onto the corresponding laser channels (paper Sec. III-A).
Between PEs, an E/O laser re-encodes each row's electronic output onto a
fresh wavelength for the next layer (Fig 1; Table III attributes 0.032 mW
per E/O laser, ref [28]).

Values are normalized: an encoded channel carries ``power_w * |x|`` with the
sign tracked electronically (the photonic amplitude is non-negative; signed
inputs are handled by the control unit encoding sign into the modulation
phase/branch, which at the model level means signs simply propagate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import C_BAND_CENTER, MW
from repro.devices.waveguide import WDMChannelPlan
from repro.errors import ConfigError, DeviceError


@dataclass(frozen=True)
class LaserSource:
    """A single continuous-wave laser line."""

    wavelength_m: float = C_BAND_CENTER
    power_w: float = 1.0 * MW
    #: Relative intensity noise expressed as a fractional std per sample.
    rin_fraction: float = 0.0
    #: Wall-plug electrical power [W] (drive + control).
    electrical_power_w: float = 0.032 * MW

    def __post_init__(self) -> None:
        if self.wavelength_m <= 0:
            raise ConfigError("wavelength must be positive")
        if self.power_w <= 0:
            raise ConfigError("optical power must be positive")
        if self.rin_fraction < 0:
            raise ConfigError("RIN must be non-negative")


@dataclass
class EOModulator:
    """Electro-optic amplitude encoder for one channel.

    ``encode`` maps a normalized value x in [-1, 1] to a modulated amplitude;
    extinction ratio limits how close to zero the off state gets.
    """

    extinction_ratio_db: float = 25.0
    insertion_loss_db: float = 0.5
    bandwidth_hz: float = 10e9

    def __post_init__(self) -> None:
        if self.extinction_ratio_db <= 0:
            raise ConfigError("extinction ratio must be positive")
        if self.insertion_loss_db < 0:
            raise ConfigError("insertion loss must be non-negative")

    @property
    def floor(self) -> float:
        """Residual normalized power in the nominal off state."""
        return 10.0 ** (-self.extinction_ratio_db / 10.0)

    @property
    def transmission(self) -> float:
        """Peak transmission through the modulator."""
        return 10.0 ** (-self.insertion_loss_db / 10.0)

    def encode(self, values: np.ndarray | float) -> np.ndarray:
        """Encode normalized values onto channel amplitudes (vectorized).

        Magnitude maps onto optical power (with extinction floor and
        insertion loss); sign is carried through for the signed MVM model.
        """
        x = np.asarray(values, dtype=np.float64)
        if np.any(np.abs(x) > 1.0 + 1e-9):
            raise DeviceError("encoded values must lie in [-1, 1]")
        magnitude = np.maximum(np.abs(x), self.floor) * self.transmission
        return np.sign(x) * magnitude


@dataclass
class LaserArray:
    """The bank of WDM sources feeding a PE.

    One source per channel of the plan; ``encode_vector`` produces the
    per-channel signed amplitudes the weight bank multiplies.
    """

    plan: WDMChannelPlan
    modulator: EOModulator = field(default_factory=EOModulator)
    source_power_w: float = 1.0 * MW
    source_electrical_power_w: float = 0.032 * MW

    def __post_init__(self) -> None:
        if self.source_power_w <= 0:
            raise ConfigError("source power must be positive")

    @property
    def sources(self) -> list[LaserSource]:
        """Materialized per-channel sources (for inspection/tests)."""
        return [
            LaserSource(wavelength_m=lam, power_w=self.source_power_w)
            for lam in self.plan.wavelengths
        ]

    @property
    def total_electrical_power_w(self) -> float:
        """Aggregate wall-plug power of all sources [W]."""
        return self.source_electrical_power_w * self.plan.n_channels

    def encode_vector(self, values: np.ndarray) -> np.ndarray:
        """Encode a length-N vector onto the N channels (vectorized)."""
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 1 or x.shape[0] != self.plan.n_channels:
            raise DeviceError(
                f"expected a length-{self.plan.n_channels} vector, got shape {x.shape}"
            )
        return self.modulator.encode(x)
