"""WDM waveguide bus: channel plan, insertion loss, inter-channel crosstalk.

The Trident PE chain shares one wavelength-division-multiplexed waveguide
(paper Fig 2a).  Each input element x_i rides its own wavelength lambda_i;
the paper requires the resonances be spaced at least 1.6 nm apart so that a
ring tuned to lambda_i ignores the other channels (Sec. III-A, ref [32]).

The crosstalk model is the physically meaningful part: each MRR's Lorentzian
drop response, evaluated at its *neighbours'* wavelengths, leaks a fraction
of their power into its photodetector.  The bus builds that leakage matrix
once per channel plan; bank-level models fold it into the analog MVM.  For
thermally tuned banks the resonance wander makes the effective leakage much
larger — that is what limits them to 6-bit resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import C_BAND_CENTER, MIN_WDM_SPACING, NM, db_to_linear
from repro.devices.mrr import AddDropMRR
from repro.errors import ConfigError, DeviceError


@dataclass(frozen=True)
class WDMChannelPlan:
    """A grid of WDM channel wavelengths.

    Parameters
    ----------
    n_channels:
        Number of wavelengths multiplexed on the bus (one per weight-bank
        column, N <= 16 in the default Trident PE geometry).
    spacing_m:
        Channel pitch [m]; must respect the paper's 1.6 nm minimum.
    center_m:
        Center of the channel comb [m].
    """

    n_channels: int
    spacing_m: float = MIN_WDM_SPACING
    center_m: float = C_BAND_CENTER

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ConfigError(f"need at least one channel, got {self.n_channels}")
        if self.spacing_m < MIN_WDM_SPACING - 1e-15:
            raise ConfigError(
                f"channel spacing {self.spacing_m / NM:.2f} nm violates the "
                f"{MIN_WDM_SPACING / NM:.1f} nm minimum (paper Sec. III-A)"
            )
        if self.center_m <= 0:
            raise ConfigError("center wavelength must be positive")

    @property
    def wavelengths(self) -> np.ndarray:
        """Channel wavelengths [m], ascending, centered on ``center_m``."""
        idx = np.arange(self.n_channels, dtype=np.float64)
        offset = (self.n_channels - 1) / 2.0
        return self.center_m + (idx - offset) * self.spacing_m

    @property
    def span_m(self) -> float:
        """Total spectral width occupied by the comb [m]."""
        return (self.n_channels - 1) * self.spacing_m


@dataclass
class WDMBus:
    """The shared waveguide distributing WDM channels to a weight bank row.

    Parameters
    ----------
    plan:
        The channel grid.
    propagation_loss_db_per_cm:
        Waveguide propagation loss (typical SOI: 1-3 dB/cm).
    length_m:
        Physical bus length from laser block to the bank [m].
    coupling_loss_db:
        Total fiber/chip + splitter insertion loss [dB].
    """

    plan: WDMChannelPlan
    propagation_loss_db_per_cm: float = 2.0
    length_m: float = 2.0e-3
    coupling_loss_db: float = 1.0
    _crosstalk: np.ndarray | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.propagation_loss_db_per_cm < 0 or self.coupling_loss_db < 0:
            raise ConfigError("losses must be non-negative")
        if self.length_m < 0:
            raise ConfigError("length must be non-negative")

    # ------------------------------------------------------------------
    @property
    def insertion_loss_db(self) -> float:
        """End-to-end insertion loss [dB]."""
        return self.coupling_loss_db + self.propagation_loss_db_per_cm * (self.length_m / 1e-2)

    @property
    def transmission(self) -> float:
        """End-to-end power transmission (linear)."""
        return db_to_linear(-self.insertion_loss_db)

    def propagate(self, channel_powers: np.ndarray) -> np.ndarray:
        """Attenuate per-channel powers by the bus insertion loss."""
        p = np.asarray(channel_powers, dtype=np.float64)
        if p.shape[-1] != self.plan.n_channels:
            raise DeviceError(
                f"expected {self.plan.n_channels} channels, got shape {p.shape}"
            )
        if np.any(p < 0):
            raise DeviceError("channel powers must be non-negative")
        return p * self.transmission

    # ------------------------------------------------------------------
    def crosstalk_matrix(self, reference_ring: AddDropMRR | None = None) -> np.ndarray:
        """Leakage matrix X where X[i, j] is the fraction of channel j's
        power that a ring tuned to channel i erroneously drops.

        Built by evaluating each ring's Lorentzian drop response at every
        channel wavelength (vectorized: one ``drop`` call on the full grid
        per ring).  Diagonal entries are 1 (each ring fully serves its own
        channel, normalization folded into the weight calibration).
        """
        if self._crosstalk is not None:
            return self._crosstalk
        ring = reference_ring or AddDropMRR()
        lams = self.plan.wavelengths
        n = self.plan.n_channels
        matrix = np.empty((n, n), dtype=np.float64)
        for i in range(n):
            # Retarget the ring's resonance to channel i by scaling n_eff.
            resonance = ring.geometry.nearest_resonance(lams[i])
            scale = lams[i] / resonance
            geometry = ring.geometry.__class__(
                radius_m=ring.geometry.radius_m,
                effective_index=ring.geometry.effective_index * scale,
                group_index=ring.geometry.group_index,
            )
            tuned = AddDropMRR(
                geometry=geometry,
                input_coupling=ring.input_coupling,
                drop_coupling=ring.drop_coupling,
                ring_loss=ring.ring_loss,
                extra_loss=ring.extra_loss,
            )
            row = tuned.drop(lams)
            row = row / row[i]
            matrix[i] = row
        self._crosstalk = matrix
        return matrix

    def worst_case_crosstalk_db(self, reference_ring: AddDropMRR | None = None) -> float:
        """Largest off-diagonal leakage in dB (negative = suppressed)."""
        matrix = self.crosstalk_matrix(reference_ring)
        off = matrix - np.diag(np.diag(matrix))
        worst = float(off.max())
        if worst <= 0:
            return -np.inf
        return 10.0 * np.log10(worst)
