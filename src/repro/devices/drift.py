"""GST retention: thermally activated re-crystallization of programmed
states.

The paper quotes GST as "non-volatile for up to 10 years" (Sec. III-B).
Physically that is a *retention* number: the amorphous (transmissive) phase
is metastable and relaxes toward the crystalline ground state with an
Arrhenius-activated time constant — fast when hot, ~decade-scale at room
temperature.  A programmed crystalline fraction c0 ages as

    c(t) = 1 - (1 - c0) * exp(-t / tau(T)),
    tau(T) = tau_ref * exp( (Ea / kB) * (1/T - 1/T_ref) ),

so partial levels (the 255-level weights!) creep toward "crystalline", and
the realized weights drift negative over time.  This module quantifies the
drift, its effect on weights through the shared device calibration, and the
refresh interval a deployment needs at a given temperature — the
maintenance cost hiding behind "non-volatile".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE
from repro.devices.pcm_mrr import WeightCalibration, build_calibration
from repro.errors import ConfigError

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class RetentionModel:
    """Arrhenius retention model for programmed GST states.

    Anchored the way PCM retention is specified industrially — and the way
    the paper's "10 years" should be read: ten years *at 85 C*.  At room
    temperature the Arrhenius slope makes retention effectively unlimited;
    at elevated automotive/industrial temperatures it shrinks fast.
    """

    #: Retention time constant at the spec temperature [s] (10 years).
    tau_ref_s: float = 10.0 * SECONDS_PER_YEAR
    #: Spec temperature [K] (85 C, the standard retention condition).
    reference_temperature_k: float = 358.15
    #: Crystallization activation energy [eV] (GST literature: 2-2.8 eV).
    activation_energy_ev: float = 2.5
    room_temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.tau_ref_s <= 0:
            raise ConfigError("retention time constant must be positive")
        if self.activation_energy_ev <= 0:
            raise ConfigError("activation energy must be positive")
        if self.room_temperature_k <= 0 or self.reference_temperature_k <= 0:
            raise ConfigError("temperatures must be positive")

    # ------------------------------------------------------------------
    def time_constant_s(self, temperature_k: float) -> float:
        """Arrhenius-scaled retention time constant at ``temperature_k``."""
        if temperature_k <= 0:
            raise ConfigError("temperature must be positive")
        ea_j = self.activation_energy_ev * ELEMENTARY_CHARGE
        exponent = (ea_j / BOLTZMANN) * (
            1.0 / temperature_k - 1.0 / self.reference_temperature_k
        )
        return self.tau_ref_s * math.exp(exponent)

    def aged_fraction(
        self,
        fraction: np.ndarray | float,
        age_s: float,
        temperature_k: float | None = None,
    ) -> np.ndarray:
        """Crystalline fraction after ``age_s`` seconds (vectorized)."""
        if age_s < 0:
            raise ConfigError("age must be non-negative")
        c0 = np.asarray(fraction, dtype=np.float64)
        if np.any(c0 < 0) or np.any(c0 > 1):
            raise ConfigError("fractions must lie in [0, 1]")
        tau = self.time_constant_s(temperature_k or self.room_temperature_k)
        return 1.0 - (1.0 - c0) * np.exp(-age_s / tau)

    # ------------------------------------------------------------------
    def aged_weights(
        self,
        weights: np.ndarray,
        age_s: float,
        temperature_k: float | None = None,
        calibration: WeightCalibration | None = None,
    ) -> np.ndarray:
        """Weights realized after the programmed states age (vectorized).

        Weight -> fraction via the device calibration, relax the fraction,
        map back.  Drift is always toward -1 (crystalline = absorbing).
        """
        calibration = calibration or build_calibration()
        w = np.asarray(weights, dtype=np.float64)
        fractions = calibration.weight_to_fraction(w)
        aged = self.aged_fraction(fractions, age_s, temperature_k)
        return calibration.fraction_to_weight(aged)

    def worst_case_weight_error(
        self,
        age_s: float,
        temperature_k: float | None = None,
        calibration: WeightCalibration | None = None,
        grid: int = 101,
    ) -> float:
        """Max |aged - programmed| weight over the full weight range."""
        calibration = calibration or build_calibration()
        w = np.linspace(-1.0, 1.0, grid)
        aged = self.aged_weights(w, age_s, temperature_k, calibration)
        return float(np.max(np.abs(aged - w)))

    def refresh_interval_s(
        self,
        max_weight_error: float,
        temperature_k: float | None = None,
        calibration: WeightCalibration | None = None,
    ) -> float:
        """Longest age keeping worst-case drift below ``max_weight_error``.

        Bisect on age (drift error is monotone in time).
        """
        if max_weight_error <= 0:
            raise ConfigError("error bound must be positive")
        calibration = calibration or build_calibration()
        temperature = temperature_k or self.room_temperature_k
        hi = 1000.0 * SECONDS_PER_YEAR
        if self.worst_case_weight_error(hi, temperature, calibration) <= max_weight_error:
            return hi
        lo = 0.0
        for _ in range(80):
            mid = (lo + hi) / 2.0
            if self.worst_case_weight_error(mid, temperature, calibration) <= max_weight_error:
                lo = mid
            else:
                hi = mid
        return lo


def refresh_schedule(
    temperatures_c: tuple[float, ...] = (25.0, 55.0, 85.0, 105.0, 125.0),
    weight_bits: int = 8,
    model: RetentionModel | None = None,
) -> list[dict[str, float]]:
    """Refresh interval vs operating temperature at half-LSB drift budget.

    The edge-deployment question behind the paper's 10-year retention
    figure (a spec *at 85 C*): at room temperature weights effectively
    never need refreshing; at the 85 C spec point 8-bit weights need a
    reprogram every few weeks; hot automotive corners shrink it to hours.
    """
    if weight_bits < 2:
        raise ConfigError("weight_bits must be >= 2")
    model = model or RetentionModel()
    calibration = build_calibration()
    lsb = 2.0 / ((1 << weight_bits) - 2)
    rows = []
    for t_c in temperatures_c:
        t_k = t_c + 273.15
        interval = model.refresh_interval_s(lsb / 2.0, t_k, calibration)
        rows.append(
            {
                "temperature_c": t_c,
                "tau_years": model.time_constant_s(t_k) / SECONDS_PER_YEAR,
                "refresh_interval_s": interval,
                "refresh_interval_days": interval / 86400.0,
            }
        )
    return rows
