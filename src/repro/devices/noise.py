"""Stochastic noise machinery shared by the analog device models.

The functional simulator is deterministic unless a :class:`NoiseModel` is
enabled.  All randomness flows through a single :class:`numpy.random.Generator`
owned by the noise model so that experiments are reproducible from one seed,
and so that the hot paths can draw vectorized samples in one call (the
HPC-style rule: never loop over per-element ``rng.normal`` calls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass
class NoiseModel:
    """Aggregate analog noise description for photonic MAC paths.

    Parameters
    ----------
    enabled:
        Master switch.  When ``False`` every ``apply_*`` method is an exact
        pass-through, which keeps unit tests of the linear algebra exact.
    shot_noise_coeff:
        Standard deviation of signal-dependent (shot-like) noise expressed as
        a fraction of ``sqrt(|signal|)``.  Photodetector shot noise grows with
        the square root of optical power.
    thermal_noise_std:
        Standard deviation of signal-independent additive noise (detector /
        TIA thermal noise), in normalized signal units.
    rin_coeff:
        Relative-intensity-noise coefficient: multiplicative noise whose
        standard deviation is ``rin_coeff * |signal|``.
    crosstalk_floor:
        Residual inter-channel crosstalk power fraction leaking between WDM
        channels after filtering (applied by bank-level models).
    seed:
        Seed for the owned generator.
    """

    enabled: bool = False
    shot_noise_coeff: float = 0.002
    thermal_noise_std: float = 0.001
    rin_coeff: float = 0.001
    crosstalk_floor: float = 1e-4
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        for name in ("shot_noise_coeff", "thermal_noise_std", "rin_coeff", "crosstalk_floor"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A disabled (exact) noise model."""
        return cls(enabled=False)

    @classmethod
    def realistic(cls, seed: int = 0) -> "NoiseModel":
        """Default-calibrated enabled noise model."""
        return cls(enabled=True, seed=seed)

    def reseed(self, seed: int) -> None:
        """Reset the generator; subsequent draws repeat from this seed."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The owned generator (for models needing custom draws)."""
        return self._rng

    # ------------------------------------------------------------------
    def apply_detection_noise(self, signal: np.ndarray) -> np.ndarray:
        """Apply shot + thermal + RIN noise to a detected photocurrent array.

        Vectorized: one generator call per noise source regardless of the
        array size.  Returns a new array; the input is never mutated.
        """
        signal = np.asarray(signal, dtype=np.float64)
        if not self.enabled:
            return signal.copy()
        std = np.sqrt(
            self.shot_noise_coeff**2 * np.abs(signal)
            + self.thermal_noise_std**2
            + (self.rin_coeff * signal) ** 2
        )
        return signal + self._rng.standard_normal(signal.shape) * std

    def apply_programming_noise(self, levels: np.ndarray, level_std: float) -> np.ndarray:
        """Perturb programmed PCM levels by ``level_std`` (in level units)."""
        levels = np.asarray(levels, dtype=np.float64)
        if not self.enabled or level_std == 0:
            return levels.copy()
        return levels + self._rng.standard_normal(levels.shape) * level_std
