"""Photonic and mixed-signal device models used by the Trident architecture.

Every device the paper's Figure 1/2 draws has a model here:

- :mod:`repro.devices.gst` — the Ge2Sb2Te5 phase-change material itself.
- :mod:`repro.devices.mrr` — microring resonators (all-pass and add-drop).
- :mod:`repro.devices.pcm_mrr` — an MRR with an embedded GST cell acting as
  a programmable signed weight.
- :mod:`repro.devices.waveguide` — the WDM bus distributing laser channels.
- :mod:`repro.devices.photodetector` — photodiodes and balanced pairs.
- :mod:`repro.devices.tia` — programmable-gain transimpedance amplifiers.
- :mod:`repro.devices.laser` — WDM laser sources and E/O encoding.
- :mod:`repro.devices.activation_cell` — the GST photonic activation (Fig 3).
- :mod:`repro.devices.ldsu` — the linear derivative storage unit.
- :mod:`repro.devices.tuning` — thermal / electric / GST tuning (Table I).
- :mod:`repro.devices.noise` — shared stochastic-noise machinery.
"""

from repro.devices.activation_cell import GSTActivationCell, GSTActivationConfig
from repro.devices.drift import RetentionModel, refresh_schedule
from repro.devices.gst import GSTCell, GSTMaterial
from repro.devices.laser import EOModulator, LaserArray, LaserSource
from repro.devices.ldsu import AnalogComparator, DFlipFlop, LDSU
from repro.devices.mrr import AddDropMRR, AllPassMRR
from repro.devices.noise import NoiseModel
from repro.devices.pcm_mrr import PCMMRRWeight, WeightCalibration
from repro.devices.photodetector import BalancedPhotodetector, Photodetector
from repro.devices.program_verify import (
    ProgramVerifyConfig,
    ProgramVerifyResult,
    ProgramVerifyWriter,
)
from repro.devices.thermal_crosstalk import ThermalCrosstalkModel, thermal_resolution_sweep
from repro.devices.tia import TransimpedanceAmplifier
from repro.devices.tuning import (
    ElectricTuning,
    GSTTuning,
    ThermalTuning,
    TuningMethod,
    tuning_comparison_table,
)
from repro.devices.waveguide import WDMBus, WDMChannelPlan

__all__ = [
    "AddDropMRR",
    "AllPassMRR",
    "AnalogComparator",
    "BalancedPhotodetector",
    "DFlipFlop",
    "ElectricTuning",
    "EOModulator",
    "GSTActivationCell",
    "GSTActivationConfig",
    "GSTCell",
    "GSTMaterial",
    "GSTTuning",
    "LaserArray",
    "LaserSource",
    "LDSU",
    "NoiseModel",
    "PCMMRRWeight",
    "Photodetector",
    "ProgramVerifyConfig",
    "ProgramVerifyResult",
    "ProgramVerifyWriter",
    "refresh_schedule",
    "RetentionModel",
    "ThermalCrosstalkModel",
    "thermal_resolution_sweep",
    "ThermalTuning",
    "TransimpedanceAmplifier",
    "TuningMethod",
    "tuning_comparison_table",
    "WDMBus",
    "WDMChannelPlan",
    "WeightCalibration",
]
