"""Linear Derivative Storage Unit (LDSU) — paper Fig 2d / Sec. III-C.

Because the GST activation function has exactly two derivative values
(0.34 above threshold, 0 below), storing f'(h_k) for the backward pass needs
only one bit per neuron.  The LDSU is an analog voltage comparator (is the
weighted sum above the activation threshold?) feeding a D flip-flop.  During
the backward pass the stored bit programs the row's TIA gain to f'(h_k),
realizing the Hadamard product of Eq. (3) with zero memory traffic.

Table III attributes 0.09 mW to the LDSU (refs [3], [16]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import MW
from repro.errors import ConfigError, DeviceError


@dataclass
class AnalogComparator:
    """Voltage comparator: output bit = (input > threshold).

    ``threshold_v`` is the electrical image of the activation cell's 430 pJ
    optical threshold after the BPD/TIA chain; in the normalized signal
    domain the control unit calibrates it to logit 0.
    """

    threshold_v: float = 0.0
    #: Input-referred offset/noise band; inputs within +/- this of the
    #: threshold resolve nondeterministically on real silicon, so the model
    #: (conservatively, deterministically) resolves them to False.
    uncertainty_v: float = 0.0

    def __post_init__(self) -> None:
        if self.uncertainty_v < 0:
            raise ConfigError("uncertainty must be non-negative")

    def compare(self, inputs: np.ndarray | float) -> np.ndarray:
        """Vectorized comparison; returns a boolean array."""
        v = np.asarray(inputs, dtype=np.float64)
        return v > (self.threshold_v + self.uncertainty_v)


@dataclass
class DFlipFlop:
    """One-bit storage element with explicit clocking semantics."""

    state: bool = False

    def latch(self, d: bool) -> None:
        """Capture the input on the (modeled) clock edge."""
        self.state = bool(d)

    @property
    def q(self) -> bool:
        """Stored output."""
        return self.state


@dataclass
class LDSU:
    """Comparator + per-row flip-flop bank storing f'(h) for one PE.

    One bit per weight-bank row (J bits total).  ``capture`` runs during the
    forward pass; ``derivative_gains`` replays the stored bits as TIA gain
    values during the gradient-vector step.
    """

    n_rows: int = 16
    comparator: AnalogComparator = field(default_factory=AnalogComparator)
    #: The two-valued derivative of the GST activation (paper: 0.34 / 0).
    derivative_high: float = 0.34
    power_w: float = 0.09 * MW
    _bits: np.ndarray = field(init=False, repr=False)
    _batch_bits: np.ndarray | None = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ConfigError(f"n_rows must be positive, got {self.n_rows}")
        if not 0.0 < self.derivative_high:
            raise ConfigError("derivative_high must be positive")
        self._bits = np.zeros(self.n_rows, dtype=bool)

    # ------------------------------------------------------------------
    def capture(self, logits: np.ndarray) -> np.ndarray:
        """Latch the comparator outputs for a row-vector of logits.

        Returns the captured bits (copy).  Raises if the shape does not
        match the number of rows — a mis-sized capture means the layer was
        mapped onto the wrong PE geometry.
        """
        h = np.asarray(logits, dtype=np.float64)
        if h.shape != (self.n_rows,):
            raise DeviceError(
                f"expected logits of shape ({self.n_rows},), got {h.shape}"
            )
        self._bits = self.comparator.compare(h)
        return self._bits.copy()

    def capture_batch(self, logits: np.ndarray) -> np.ndarray:
        """Latch comparator outputs for a (n_rows, B) batch of logit columns.

        One column per streamed sample: the flip-flops latch per symbol and
        the control unit shifts each sample's bit plane out before the next
        arrives.  Stores the full (n_rows, B) plane for a batched backward
        pass and leaves the per-sample flip-flops holding the final column —
        the state a per-sample sweep of :meth:`capture` would leave behind.
        """
        h = np.asarray(logits, dtype=np.float64)
        if h.ndim != 2 or h.shape[0] != self.n_rows:
            raise DeviceError(
                f"expected logits of shape ({self.n_rows}, B), got {h.shape}"
            )
        self._batch_bits = self.comparator.compare(h)
        if h.shape[1]:
            self._bits = self._batch_bits[:, -1].copy()
        return self._batch_bits.copy()

    @property
    def bits(self) -> np.ndarray:
        """Currently stored bits (copy; storage is not externally mutable)."""
        return self._bits.copy()

    @property
    def batch_bits(self) -> np.ndarray:
        """The (n_rows, B) bit plane of the last batched capture (copy)."""
        if self._batch_bits is None:
            raise DeviceError("no batched capture has run (call capture_batch)")
        return self._batch_bits.copy()

    def derivative_gains(self) -> np.ndarray:
        """f'(h) per row from the stored bits: derivative_high or 0."""
        return np.where(self._bits, self.derivative_high, 0.0)

    def derivative_gains_batch(self) -> np.ndarray:
        """f'(h) per row per sample from the last batched capture."""
        if self._batch_bits is None:
            raise DeviceError("no batched capture has run (call capture_batch)")
        return np.where(self._batch_bits, self.derivative_high, 0.0)

    def clear(self) -> None:
        """Reset all flip-flops and drop the batched bit plane."""
        self._bits = np.zeros(self.n_rows, dtype=bool)
        self._batch_bits = None

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the flip-flop bits and any held batched bit plane."""
        return {
            "bits": self._bits.copy(),
            "batch_bits": None if self._batch_bits is None else self._batch_bits.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (shape-checked)."""
        bits = np.asarray(state["bits"], dtype=bool)
        if bits.shape != (self.n_rows,):
            raise DeviceError(
                f"LDSU snapshot has {bits.shape[0] if bits.ndim else 0} rows, "
                f"this LDSU has {self.n_rows}"
            )
        self._bits = bits.copy()
        batch = state["batch_bits"]
        self._batch_bits = None if batch is None else np.asarray(batch, dtype=bool)
