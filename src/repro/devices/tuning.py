"""MRR tuning methods — the paper's Table I, as executable device models.

Three ways to set the weight realized by a microring resonator:

* **Thermal** — a micro-heater shifts the resonance.  Fast enough, but
  *volatile*: the heater must keep drawing power for as long as the weight is
  held, and thermal crosstalk between adjacent heaters limits usable weight
  resolution to 6 bits (paper Sec. II-B), which is below what NN training
  needs.
* **Electric** — the electro-optic effect.  Tiny range (0.18 pm/V), so it
  needs ±100 V drives and 60 um rings; the paper rules it out for edge
  devices and so do we (it exists here so Table I can be regenerated and so
  ablations can quantify *why* it is ruled out).
* **GST (PCM)** — optical write pulses set a non-volatile attenuation level.
  Zero hold power, 8-bit resolution (255 levels), 2x faster than thermal.

Each model answers the three questions the cost model asks:
``write_energy(n)``, ``write_time()``, and ``hold_power(n, t)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import MW, NJ, NS, PJ, US


class TuningMethod(enum.Enum):
    """Enumeration of the tuning technologies compared in Table I."""

    THERMAL = "thermal"
    ELECTRIC = "electric"
    GST = "gst"


@dataclass(frozen=True)
class TuningModel:
    """Common interface for MRR tuning technologies.

    Attributes
    ----------
    method:
        Which technology this is.
    write_energy_j:
        Energy to (re)program one MRR's weight once [J].
    write_time_s:
        Latency of one programming operation [s].  Programming is assumed
        parallel across the MRRs of a bank (each has its own wavelength /
        heater / electrode), so a bank write takes one ``write_time_s``.
    hold_power_w:
        Continuous per-MRR power needed to *keep* the programmed weight [W].
        Zero for non-volatile technologies.
    bit_resolution:
        Usable weight resolution [bits] after crosstalk/drive limits.
    volatile:
        Whether the weight disappears when power is removed.
    """

    method: TuningMethod
    write_energy_j: float
    write_time_s: float
    hold_power_w: float
    bit_resolution: int
    volatile: bool

    def __post_init__(self) -> None:
        if self.write_energy_j < 0 or self.write_time_s <= 0:
            raise ValueError("write energy must be >=0 and write time > 0")
        if self.hold_power_w < 0:
            raise ValueError("hold power must be non-negative")
        if self.bit_resolution < 1:
            raise ValueError("bit resolution must be at least 1")

    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of distinct programmable weight levels."""
        return (1 << self.bit_resolution) - 1

    def write_energy(self, n_mrrs: int) -> float:
        """Energy [J] to program ``n_mrrs`` rings once."""
        if n_mrrs < 0:
            raise ValueError(f"n_mrrs must be non-negative, got {n_mrrs}")
        return self.write_energy_j * n_mrrs

    def write_time(self) -> float:
        """Latency [s] of one (bank-parallel) programming operation."""
        return self.write_time_s

    def hold_energy(self, n_mrrs: int, duration_s: float) -> float:
        """Energy [J] spent holding ``n_mrrs`` weights for ``duration_s``."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        return self.hold_power_w * n_mrrs * duration_s

    def supports_training(self, required_bits: int = 8) -> bool:
        """Whether the resolution suffices for NN training (paper: 8 bits)."""
        return self.bit_resolution >= required_bits


@dataclass(frozen=True)
class ThermalTuning(TuningModel):
    """Thermo-optic micro-heater tuning (DEAP-CNN, PIXEL).

    Table I: 1.02 nJ per tuning event, 0.6 us settling.  The heater draws
    1.7 mW continuously to hold the resonance shift (paper Sec. III-B quotes
    1.7 mW thermal vs 2.0 mW GST transient).  Thermal crosstalk limits
    resolution to 6 bits.
    """

    method: TuningMethod = TuningMethod.THERMAL
    write_energy_j: float = 1.02 * NJ
    write_time_s: float = 0.6 * US
    hold_power_w: float = 1.7 * MW
    bit_resolution: int = 6
    volatile: bool = True


@dataclass(frozen=True)
class ElectricTuning(TuningModel):
    """Electro-optic tuning.

    Table I quotes the *efficiency* 0.18 pm/V rather than an energy; the
    energy here is the CV^2 drive estimate for the +/-100 V swing on a 60 um
    ring the paper describes (Sec. II-B), which is why this option is
    impractical.  500 ns switching.
    """

    method: TuningMethod = TuningMethod.ELECTRIC
    write_energy_j: float = 5.0 * NJ
    write_time_s: float = 500 * NS
    hold_power_w: float = 0.05 * MW
    bit_resolution: int = 7
    volatile: bool = True

    #: Tuning efficiency from Table I [m/V] — 0.18 pm/V.
    efficiency_m_per_volt: float = 0.18e-12
    #: Drive range required for a usable shift [V].
    drive_range_v: float = 200.0

    def wavelength_shift(self, volts: float) -> float:
        """Resonance shift [m] produced by a drive voltage."""
        return self.efficiency_m_per_volt * volts


@dataclass(frozen=True)
class GSTTuning(TuningModel):
    """Optical GST programming (Trident).

    Table I / Sec. III-B: >=660 pJ write pulse, 300 ns switching (2x faster
    than thermal), 20 pJ read pulses, non-volatile (10-year retention) at 255
    levels => 8-bit weights.  Hold power is zero — this is the head-line
    energy advantage.
    """

    method: TuningMethod = TuningMethod.GST
    write_energy_j: float = 660 * PJ
    write_time_s: float = 300 * NS
    hold_power_w: float = 0.0
    bit_resolution: int = 8
    volatile: bool = False

    #: Low-power read pulse energy [J] (Sec. III-B, 20 pJ from Feldmann).
    read_energy_j: float = 20 * PJ
    #: Transient power while a write pulse is applied [W] (Sec. III-B: 2 mW).
    write_power_w: float = 2.0 * MW
    #: Non-volatile retention [years].
    retention_years: float = 10.0

    def read_energy(self, n_reads: int) -> float:
        """Energy [J] for ``n_reads`` low-power read pulses."""
        if n_reads < 0:
            raise ValueError(f"n_reads must be non-negative, got {n_reads}")
        return self.read_energy_j * n_reads


def tuning_comparison_table() -> list[dict[str, object]]:
    """Regenerate the rows of the paper's Table I.

    Returns one dict per tuning method with the quantities the paper tabulates
    plus the derived properties the rest of the library consumes.
    """
    rows: list[dict[str, object]] = []
    for model in (ThermalTuning(), ElectricTuning(), GSTTuning()):
        rows.append(
            {
                "method": model.method.value,
                "write_energy_j": model.write_energy_j,
                "write_time_s": model.write_time_s,
                "hold_power_w": model.hold_power_w,
                "bit_resolution": model.bit_resolution,
                "volatile": model.volatile,
                "supports_training": model.supports_training(),
            }
        )
    return rows
