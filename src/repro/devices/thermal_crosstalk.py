"""Thermal crosstalk between heater-tuned MRRs — why thermal banks stop
at 6 bits.

The paper (Sec. II-B) asserts that "crosstalk in thermally tuned MRRs
results in a bit resolution of only 6 bits".  This module supplies the
mechanism.  Each micro-heater leaks heat to its neighbours; ring i's
temperature is a convolution of every heater's power with a spatial
coupling kernel that decays with distance.  Since a thermally tuned weight
*is* a resonance shift, leaked heat is directly a weight error — and unlike
photonic crosstalk it cannot be calibrated once, because the error depends
on what the *other* weights currently are.

Model:

- heaters sit on a pitch grid; coupling between rings at distance d falls
  as ``exp(-d / decay_length)``;
- heater power is proportional to the programmed thermal shift (weight);
- the worst-case weight error is the maximal leaked shift over all
  programming patterns, which for the exponential kernel is the kernel sum
  times full-scale;
- usable bits follow from error < LSB/2.

The GST comparison is the point: attenuation-based weights leave every
resonance parked, so this entire error term is zero (the paper's
"crosstalk is not an issue for the GST tuning method").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ThermalCrosstalkModel:
    """Heater-leakage model for a linear array of N thermally tuned rings."""

    n_rings: int = 16
    #: Heater pitch [m] (weight-bank rings sit tens of um apart).
    pitch_m: float = 30e-6
    #: Thermal decay length of the leaked temperature field [m].
    decay_length_m: float = 12e-6
    #: Fraction of a heater's shift leaked to an *adjacent* ring beyond the
    #: exponential geometry factor (insulation quality; 0 = perfect).
    #: Default 0.35 % — trench-isolated heaters at 30 um pitch; this is the
    #: operating point at which a 16-ring bank resolves exactly 6 bits,
    #: matching the paper's Sec. II-B figure.
    adjacent_coupling: float = 0.0035

    def __post_init__(self) -> None:
        if self.n_rings < 1:
            raise ConfigError("need at least one ring")
        if self.pitch_m <= 0 or self.decay_length_m <= 0:
            raise ConfigError("pitch and decay length must be positive")
        if not 0 <= self.adjacent_coupling < 1:
            raise ConfigError("adjacent coupling must be in [0, 1)")

    # ------------------------------------------------------------------
    def coupling_matrix(self) -> np.ndarray:
        """C[i, j]: fraction of heater j's shift appearing at ring i.

        Diagonal is 1 (the heater serves its own ring); off-diagonals decay
        exponentially with pitch distance, scaled so that the *adjacent*
        coupling equals ``adjacent_coupling``.
        """
        idx = np.arange(self.n_rings)
        dist = np.abs(idx[:, None] - idx[None, :]) * self.pitch_m
        base = np.exp(-(dist - self.pitch_m) / self.decay_length_m)
        matrix = self.adjacent_coupling * base
        np.fill_diagonal(matrix, 1.0)
        return matrix

    def weight_errors(self, weights: np.ndarray) -> np.ndarray:
        """Realized-minus-target weight error for a programming pattern.

        ``weights`` in [0, 1] are normalized heater drives (thermal tuning
        shifts only one way).  Vectorized matrix product.
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.n_rings,):
            raise ConfigError(f"expected {self.n_rings} weights, got {w.shape}")
        if np.any(w < 0) or np.any(w > 1):
            raise ConfigError("heater drives must lie in [0, 1]")
        realized = self.coupling_matrix() @ w
        return realized - w

    def worst_case_error(self) -> float:
        """Max leaked shift over all programming patterns (all-on pattern
        maximizes the positive leakage for a non-negative kernel)."""
        return float(self.weight_errors(np.ones(self.n_rings)).max())

    def usable_bits(self) -> int:
        """Resolution with error below half an LSB: 2^b <= 1/(2 e_max).

        Capped at 16 bits (far beyond any DAC/ADC in these systems) so the
        crosstalk-free limit is finite and the metric is monotone in the
        coupling all the way to zero.
        """
        err = self.worst_case_error()
        if err <= 0:
            return 16
        return min(16, max(0, int(math.floor(math.log2(1.0 / (2.0 * err))))))

    def monte_carlo_error(self, n_patterns: int = 1000, seed: int = 0) -> float:
        """95th-percentile error over random programming patterns."""
        if n_patterns < 1:
            raise ConfigError("need at least one pattern")
        rng = np.random.default_rng(seed)
        patterns = rng.uniform(0, 1, size=(n_patterns, self.n_rings))
        coupling = self.coupling_matrix()
        errors = np.abs(patterns @ coupling.T - patterns)
        return float(np.percentile(errors.max(axis=1), 95))


def thermal_resolution_sweep(
    couplings: tuple[float, ...] = (0.0, 0.0005, 0.001, 0.002, 0.0035, 0.007, 0.014),
    n_rings: int = 16,
) -> list[dict[str, float]]:
    """Usable bits vs adjacent heater coupling — regenerates the 6-bit
    claim: at the realistic ~0.35 % adjacent coupling a 16-ring bank lands
    at 6 usable bits, while GST (zero thermal coupling) keeps all 8."""
    rows = []
    for c in couplings:
        model = ThermalCrosstalkModel(n_rings=n_rings, adjacent_coupling=c)
        rows.append(
            {
                "adjacent_coupling": c,
                "worst_case_error": model.worst_case_error(),
                "usable_bits": model.usable_bits(),
            }
        )
    return rows
