"""GST photonic activation cell — the paper's Fig 2e / Fig 3 nonlinearity.

A 60 um ring with a GST patch at the ring/waveguide crossing.  Below a
threshold pulse energy (430 pJ) the weighted-sum pulse couples into the ring
and no output emerges; above it, the pulse switches the GST amorphous, the
ring falls out of resonance and the pulse is transmitted.  The measured
transfer function at 1553.4 nm is ReLU-like with slope 0.34 above threshold
(Fig 3) — which is why the LDSU only needs one bit to store the derivative.

Two views of the same device:

* :meth:`response_energy` — physical: output pulse energy vs input pulse
  energy [J], reproducing Fig 3.
* :meth:`activate` — normalized: the control unit biases the weighted-sum
  pulse so that logit h = 0 lands exactly at the switching threshold, so in
  the NN's normalized units the cell computes ``slope * max(0, h)``.

Every firing event requires recrystallization before the next symbol
(Table III: 53.3 mW reset budget); the cell counts events against PCM
endurance (~1e12 cycles, ref [17]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import ACTIVATION_WAVELENGTH, PJ, UM
from repro.devices.gst import DEFAULT_ENDURANCE_CYCLES
from repro.errors import ConfigError, DeviceError, EnduranceExceededError


@dataclass(frozen=True)
class GSTActivationConfig:
    """Parameters of the activation cell (paper Sec. III-C)."""

    #: Switching threshold pulse energy [J] (paper: 430.0 pJ).
    threshold_j: float = 430.0 * PJ
    #: Transfer-function slope above threshold (paper: 0.34).
    slope: float = 0.34
    #: Sub-threshold leakage as a fraction of the input (ideally 0).
    leakage: float = 0.0
    #: Ring radius [m] (paper: 60 um).
    ring_radius_m: float = 60.0 * UM
    #: Measurement wavelength [m] (paper Fig 3: 1553.4 nm).
    wavelength_m: float = ACTIVATION_WAVELENGTH
    #: Recrystallization (reset) energy per firing event [J].  Derived from
    #: Table III: 53.3 mW reset budget per PE across 16 rows at the effective
    #: symbol rate — ~0.8 nJ per event.
    reset_energy_j: float = 0.8e-9
    #: Rated switching endurance (ref [17]).
    endurance_cycles: int = DEFAULT_ENDURANCE_CYCLES

    def __post_init__(self) -> None:
        if self.threshold_j <= 0:
            raise ConfigError("threshold must be positive")
        if self.slope <= 0:
            raise ConfigError("slope must be positive")
        if not 0.0 <= self.leakage < 1.0:
            raise ConfigError("leakage must lie in [0, 1)")
        if self.reset_energy_j < 0 or self.endurance_cycles <= 0:
            raise ConfigError("reset energy must be >= 0 and endurance positive")


@dataclass
class GSTActivationCell:
    """Stateful activation cell for one weight-bank row."""

    config: GSTActivationConfig = field(default_factory=GSTActivationConfig)
    #: When True the cell is parked fully amorphous and acts as a wire
    #: (paper: "the GST activation cell can be set to a fully amorphous
    #: state, effectively eliminating the activation cell").
    bypass: bool = False

    firing_events: int = 0
    reset_energy_spent_j: float = 0.0

    # ------------------------------------------------------------------
    # Physical view (Fig 3)
    # ------------------------------------------------------------------
    def response_energy(self, input_energy_j: np.ndarray | float) -> np.ndarray:
        """Output pulse energy [J] vs input pulse energy [J] (vectorized).

        Reproduces Fig 3: ~zero below threshold, linear with slope 0.34
        above.  Stateless — use :meth:`fire` for the event-counting path.
        """
        e = np.asarray(input_energy_j, dtype=np.float64)
        if np.any(e < 0):
            raise DeviceError("pulse energy must be non-negative")
        if self.bypass:
            return e.copy()
        above = e > self.config.threshold_j
        out = np.where(
            above,
            self.config.slope * (e - self.config.threshold_j),
            self.config.leakage * e,
        )
        return out

    # ------------------------------------------------------------------
    # Normalized view (what the NN math sees)
    # ------------------------------------------------------------------
    def activate(self, logits: np.ndarray | float) -> np.ndarray:
        """Normalized activation ``slope * max(0, h)`` (vectorized).

        The control unit biases the optical pulse so h = 0 coincides with
        the physical threshold; the downstream E/O calibration can absorb
        the 0.34 slope, but we keep it explicit so training sees the same
        scale the hardware produces.
        """
        h = np.asarray(logits, dtype=np.float64)
        if self.bypass:
            return h.copy()
        return self.config.slope * np.maximum(h, 0.0)

    def derivative(self, logits: np.ndarray | float) -> np.ndarray:
        """f'(h): ``slope`` above threshold, 0 below (paper Sec. III-C)."""
        h = np.asarray(logits, dtype=np.float64)
        if self.bypass:
            return np.ones_like(h)
        return np.where(h > 0.0, self.config.slope, 0.0)

    # ------------------------------------------------------------------
    # Stateful firing path (endurance + reset accounting)
    # ------------------------------------------------------------------
    def fire(self, logits: np.ndarray | float) -> np.ndarray:
        """Activate and account for switching events and reset energy.

        Each element whose logit exceeds threshold switches the cell once
        and must be recrystallized before the next symbol.
        """
        h = np.asarray(logits, dtype=np.float64)
        out = self.activate(h)
        if not self.bypass:
            events = int(np.count_nonzero(h > 0.0))
            if self.firing_events + events > self.config.endurance_cycles:
                raise EnduranceExceededError(
                    f"activation cell exceeded endurance of "
                    f"{self.config.endurance_cycles} switching cycles"
                )
            self.firing_events += events
            self.reset_energy_spent_j += events * self.config.reset_energy_j
        return out

    @property
    def remaining_endurance(self) -> int:
        """Switching cycles left before the cell is out of spec."""
        return max(0, self.config.endurance_cycles - self.firing_events)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the wear counters and bypass flag."""
        return {
            "firing_events": self.firing_events,
            "reset_energy_spent_j": self.reset_energy_spent_j,
            "bypass": self.bypass,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        events = int(state["firing_events"])
        if events < 0:
            raise DeviceError(f"firing_events must be non-negative, got {events}")
        self.firing_events = events
        self.reset_energy_spent_j = float(state["reset_energy_spent_j"])
        self.bypass = bool(state["bypass"])
