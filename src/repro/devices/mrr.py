"""Microring resonator (MRR) transfer-function models.

Implements the standard all-pass and add-drop ring formulas (Bogaerts et al.,
paper ref [4]).  The add-drop configuration is what Trident's weight banks
use: it exposes both a *through* and a *drop* port, whose difference —
detected by a balanced photodetector — realizes signed weights in [-1, 1]
(paper Sec. III-A).

All transfer functions are vectorized over wavelength so a WDM spectrum can
be evaluated in one call.

Conventions
-----------
- ``r`` (self-coupling) and ``a`` (single-pass amplitude transmission) are
  *amplitude* coefficients in (0, 1].
- All port quantities returned are *power* transmissions in [0, 1].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import C_BAND_CENTER, UM
from repro.errors import DeviceError


def _validate_amplitude(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise DeviceError(f"{name} must be an amplitude in (0, 1], got {value}")


@dataclass(frozen=True)
class RingGeometry:
    """Geometric and modal parameters shared by the ring models."""

    radius_m: float = 5.0 * UM
    effective_index: float = 2.35
    group_index: float = 4.2

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise DeviceError(f"radius must be positive, got {self.radius_m}")
        if self.effective_index <= 0 or self.group_index <= 0:
            raise DeviceError("indices must be positive")

    @property
    def circumference_m(self) -> float:
        """Round-trip physical length of the ring [m]."""
        return 2.0 * math.pi * self.radius_m

    def round_trip_phase(self, wavelength_m: np.ndarray | float) -> np.ndarray:
        """Round-trip phase phi = 2*pi*n_eff*L / lambda (vectorized)."""
        lam = np.asarray(wavelength_m, dtype=np.float64)
        if np.any(lam <= 0):
            raise DeviceError("wavelength must be positive")
        return 2.0 * math.pi * self.effective_index * self.circumference_m / lam

    def free_spectral_range(self, wavelength_m: float = C_BAND_CENTER) -> float:
        """FSR [m] near the given wavelength: lambda^2 / (n_g * L)."""
        return wavelength_m**2 / (self.group_index * self.circumference_m)

    def nearest_resonance(self, wavelength_m: float = C_BAND_CENTER) -> float:
        """Resonant wavelength closest to ``wavelength_m``.

        Resonance condition: n_eff * L = m * lambda for integer m.
        """
        optical_length = self.effective_index * self.circumference_m
        m = max(1, round(optical_length / wavelength_m))
        return optical_length / m


@dataclass(frozen=True)
class AllPassMRR:
    """Single-bus (all-pass) ring: one input, one through port."""

    geometry: RingGeometry = RingGeometry()
    self_coupling: float = 0.95
    loss: float = 0.999  # single-pass amplitude transmission of the bare ring

    def __post_init__(self) -> None:
        _validate_amplitude("self_coupling", self.self_coupling)
        _validate_amplitude("loss", self.loss)

    def through(self, wavelength_m: np.ndarray | float) -> np.ndarray:
        """Power transmission of the through port (vectorized)."""
        phi = self.geometry.round_trip_phase(wavelength_m)
        r, a = self.self_coupling, self.loss
        cos = np.cos(phi)
        num = a * a - 2.0 * r * a * cos + r * r
        den = 1.0 - 2.0 * r * a * cos + (r * a) ** 2
        return num / den

    @property
    def extinction_on_resonance(self) -> float:
        """Through-port transmission exactly on resonance."""
        r, a = self.self_coupling, self.loss
        return ((a - r) / (1.0 - r * a)) ** 2


@dataclass(frozen=True)
class AddDropMRR:
    """Two-bus (add-drop) ring: through + drop ports.

    ``ring_loss`` is the bare ring's single-pass amplitude transmission;
    ``extra_loss`` multiplies it and is how an embedded GST patch attenuates
    the circulating light (amplitude, i.e. sqrt of the patch's power
    transmission).
    """

    geometry: RingGeometry = RingGeometry()
    input_coupling: float = 0.95  # r1
    drop_coupling: float = 0.95  # r2
    ring_loss: float = 0.999
    extra_loss: float = 1.0

    def __post_init__(self) -> None:
        _validate_amplitude("input_coupling", self.input_coupling)
        _validate_amplitude("drop_coupling", self.drop_coupling)
        _validate_amplitude("ring_loss", self.ring_loss)
        _validate_amplitude("extra_loss", self.extra_loss)

    # ------------------------------------------------------------------
    @property
    def total_loss(self) -> float:
        """Combined single-pass amplitude transmission (ring * GST patch)."""
        return self.ring_loss * self.extra_loss

    def _denominator(self, cos_phi: np.ndarray) -> np.ndarray:
        r1, r2, a = self.input_coupling, self.drop_coupling, self.total_loss
        return 1.0 - 2.0 * r1 * r2 * a * cos_phi + (r1 * r2 * a) ** 2

    def through(self, wavelength_m: np.ndarray | float) -> np.ndarray:
        """Power transmission input -> through port (vectorized)."""
        phi = self.geometry.round_trip_phase(wavelength_m)
        r1, r2, a = self.input_coupling, self.drop_coupling, self.total_loss
        cos = np.cos(phi)
        num = (r2 * a) ** 2 - 2.0 * r1 * r2 * a * cos + r1 * r1
        return num / self._denominator(cos)

    def drop(self, wavelength_m: np.ndarray | float) -> np.ndarray:
        """Power transmission input -> drop port (vectorized)."""
        phi = self.geometry.round_trip_phase(wavelength_m)
        r1, r2, a = self.input_coupling, self.drop_coupling, self.total_loss
        cos = np.cos(phi)
        num = (1.0 - r1 * r1) * (1.0 - r2 * r2) * a
        return num / self._denominator(cos)

    # ------------------------------------------------------------------
    def through_on_resonance(self) -> float:
        """Through-port power transmission exactly on resonance."""
        r1, r2, a = self.input_coupling, self.drop_coupling, self.total_loss
        return ((r2 * a - r1) / (1.0 - r1 * r2 * a)) ** 2

    def drop_on_resonance(self) -> float:
        """Drop-port power transmission exactly on resonance."""
        r1, r2, a = self.input_coupling, self.drop_coupling, self.total_loss
        return (1.0 - r1 * r1) * (1.0 - r2 * r2) * a / (1.0 - r1 * r2 * a) ** 2

    def differential_on_resonance(self) -> float:
        """(drop - through) on resonance — the signed-weight observable."""
        return self.drop_on_resonance() - self.through_on_resonance()

    # ------------------------------------------------------------------
    def fwhm(self, wavelength_m: float = C_BAND_CENTER) -> float:
        """Full width at half maximum of the resonance [m]."""
        r1, r2, a = self.input_coupling, self.drop_coupling, self.total_loss
        rt = r1 * r2 * a
        ng_l = self.geometry.group_index * self.geometry.circumference_m
        return (1.0 - rt) * wavelength_m**2 / (math.pi * ng_l * math.sqrt(rt))

    def q_factor(self, wavelength_m: float = C_BAND_CENTER) -> float:
        """Loaded quality factor lambda / FWHM."""
        return wavelength_m / self.fwhm(wavelength_m)

    def with_extra_loss(self, extra_loss: float) -> "AddDropMRR":
        """New ring with a different embedded-attenuator (GST) state."""
        return AddDropMRR(
            geometry=self.geometry,
            input_coupling=self.input_coupling,
            drop_coupling=self.drop_coupling,
            ring_loss=self.ring_loss,
            extra_loss=extra_loss,
        )
