"""Transimpedance amplifier with programmable gain.

The TIA converts the BPD's differential photocurrent into a voltage.  Trident
gives it a second job during training: its gain is programmed to f'(h_k) per
row to realize the Hadamard product in the backpropagation gradient-vector
step (paper Table II / Sec. III-A-2).  During inference and the outer-product
step the gain is a fixed calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import MW
from repro.errors import ConfigError, DeviceError


@dataclass
class TransimpedanceAmplifier:
    """Programmable-gain TIA.

    Parameters
    ----------
    transimpedance_ohms:
        Base current-to-voltage gain [V/A].
    gain:
        Dimensionless programmable multiplier applied on top of the base
        transimpedance.  Training programs this to f'(h) in {0, 0.34}.
    max_gain:
        Upper bound on the programmable multiplier.
    power_w:
        Electrical power draw [W]; Table III attributes 12.1 mW to the
        BPD + TIA pair, of which the TIA half defaults to 8.1 mW.
    saturation_v:
        Output clamps to +/- this voltage.
    """

    transimpedance_ohms: float = 5_000.0
    gain: float = 1.0
    max_gain: float = 4.0
    power_w: float = 8.1 * MW
    saturation_v: float = 2.0

    def __post_init__(self) -> None:
        if self.transimpedance_ohms <= 0:
            raise ConfigError("transimpedance must be positive")
        if self.max_gain <= 0 or self.saturation_v <= 0:
            raise ConfigError("max_gain and saturation must be positive")
        if not 0.0 <= self.gain <= self.max_gain:
            raise ConfigError(
                f"gain must lie in [0, {self.max_gain}], got {self.gain}"
            )

    # ------------------------------------------------------------------
    def set_gain(self, gain: float) -> None:
        """Program the multiplier (training uses f'(h) in {0, 0.34})."""
        if not 0.0 <= gain <= self.max_gain:
            raise DeviceError(
                f"gain must lie in [0, {self.max_gain}], got {gain}"
            )
        self.gain = float(gain)

    def amplify(self, current_a: np.ndarray | float) -> np.ndarray:
        """Output voltage [V] for an input current [A], with saturation."""
        i = np.asarray(current_a, dtype=np.float64)
        v = i * self.transimpedance_ohms * self.gain
        return np.clip(v, -self.saturation_v, self.saturation_v)

    def amplify_normalized(self, signal: np.ndarray | float) -> np.ndarray:
        """Apply only the programmable multiplier to a normalized signal.

        The functional MVM path works in dimensionless units; the base
        transimpedance is part of the end-to-end calibration constant, so
        here only ``gain`` acts (this is exactly the Hadamard with f'(h)).
        """
        return np.asarray(signal, dtype=np.float64) * self.gain
