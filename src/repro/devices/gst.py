"""Ge2Sb2Te5 (GST) phase-change material model.

GST switches between an **amorphous** phase (low optical loss, low index —
transmissive, encodes a *large* weight) and a **crystalline** phase (lossy,
high index — absorbing, encodes a *small* weight).  Partial crystallization
gives intermediate attenuation levels; current devices resolve 255 levels,
i.e. 8-bit weights (paper Sec. III-B, ref [5]).

The optics use the Lorentz-Lorenz effective-medium approximation to blend the
complex permittivities of the two phases as a function of crystalline
fraction ``c``; the resulting extinction coefficient sets the absorption of a
waveguide segment loaded with a GST patch.  All optical helpers are
vectorized over ``c`` so a whole weight bank can be evaluated in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import PJ, C_BAND_CENTER
from repro.errors import EnduranceExceededError, ProgrammingError

# ---------------------------------------------------------------------------
# Material constants (complex refractive indices at 1550 nm, from the GST
# literature the paper builds on: Liang et al. [21], Zhang et al. [37]).
# ---------------------------------------------------------------------------

#: Complex refractive index of amorphous GST at 1550 nm.
N_AMORPHOUS = 4.6 + 0.18j

#: Complex refractive index of crystalline GST at 1550 nm.
N_CRYSTALLINE = 7.45 + 1.49j

#: Number of resolvable partial-crystallization levels (8-bit: ref [5]).
DEFAULT_LEVELS = 255

#: Rated switching endurance of industry-standard PCM cells (ref [17]).
DEFAULT_ENDURANCE_CYCLES = int(1e12)


def _lorentz_lorenz_term(n: complex) -> complex:
    eps = n * n
    return (eps - 1.0) / (eps + 2.0)


def effective_permittivity(crystalline_fraction: np.ndarray | float) -> np.ndarray:
    """Effective complex permittivity of partially crystallized GST.

    Lorentz-Lorenz mixing:  (e-1)/(e+2) = c*(ec-1)/(ec+2) + (1-c)*(ea-1)/(ea+2).
    Accepts scalars or arrays in [0, 1]; vectorized.
    """
    c = np.asarray(crystalline_fraction, dtype=np.float64)
    if np.any(c < 0) or np.any(c > 1):
        raise ProgrammingError("crystalline fraction must lie in [0, 1]")
    mix = c * _lorentz_lorenz_term(N_CRYSTALLINE) + (1.0 - c) * _lorentz_lorenz_term(N_AMORPHOUS)
    return (1.0 + 2.0 * mix) / (1.0 - mix)


def effective_index(crystalline_fraction: np.ndarray | float) -> np.ndarray:
    """Effective complex refractive index at the given crystalline fraction."""
    return np.sqrt(effective_permittivity(crystalline_fraction))


def absorption_coefficient(
    crystalline_fraction: np.ndarray | float,
    wavelength_m: float = C_BAND_CENTER,
) -> np.ndarray:
    """Intensity absorption coefficient alpha [1/m]: alpha = 4*pi*k / lambda."""
    if wavelength_m <= 0:
        raise ProgrammingError(f"wavelength must be positive, got {wavelength_m}")
    kappa = np.imag(effective_index(crystalline_fraction))
    return 4.0 * np.pi * kappa / wavelength_m


def patch_transmission(
    crystalline_fraction: np.ndarray | float,
    patch_length_m: float,
    wavelength_m: float = C_BAND_CENTER,
    confinement: float = 0.2,
) -> np.ndarray:
    """Power transmission of a waveguide segment loaded with a GST patch.

    ``confinement`` is the fraction of the guided mode overlapping the GST
    film (evanescent coupling); typical integrated devices sit around 0.1-0.3.
    Fully vectorized over ``crystalline_fraction``.
    """
    if patch_length_m < 0:
        raise ProgrammingError(f"patch length must be non-negative, got {patch_length_m}")
    if not 0 < confinement <= 1:
        raise ProgrammingError(f"confinement must be in (0, 1], got {confinement}")
    alpha = absorption_coefficient(crystalline_fraction, wavelength_m)
    return np.exp(-alpha * confinement * patch_length_m)


@dataclass(frozen=True)
class GSTMaterial:
    """Bundle of material-level parameters for a GST film.

    Exists so device models can carry a single object instead of loose
    constants, and so tests/ablations can explore perturbed material stacks.
    """

    n_amorphous: complex = N_AMORPHOUS
    n_crystalline: complex = N_CRYSTALLINE
    levels: int = DEFAULT_LEVELS
    endurance_cycles: int = DEFAULT_ENDURANCE_CYCLES
    retention_years: float = 10.0

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ProgrammingError(f"need at least 2 levels, got {self.levels}")
        if self.endurance_cycles <= 0:
            raise ProgrammingError("endurance must be positive")

    @property
    def bit_resolution(self) -> int:
        """Bits of weight resolution this level count provides."""
        return int(np.floor(np.log2(self.levels + 1)))


@dataclass
class GSTCell:
    """One programmable GST element (state machine + optics + bookkeeping).

    State is the crystalline fraction ``c`` in [0, 1], discretized onto
    ``material.levels`` levels when programmed through :meth:`program_level`.
    Write pulses cost :attr:`write_energy_j` and count against endurance;
    read pulses cost :attr:`read_energy_j` and do not.

    The cell is deliberately small and scalar — the hot path (a 256-element
    weight bank) uses the vectorized module functions above through
    :class:`repro.arch.weight_bank.WeightBank`; this class is the
    single-device reference the array code is tested against.
    """

    material: GSTMaterial = field(default_factory=GSTMaterial)
    patch_length_m: float = 0.3e-6
    confinement: float = 0.2
    write_energy_j: float = 660 * PJ
    read_energy_j: float = 20 * PJ
    wavelength_m: float = C_BAND_CENTER

    crystalline_fraction: float = 1.0  # as-fabricated: fully crystalline
    write_count: int = 0
    read_count: int = 0
    energy_spent_j: float = 0.0

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current state expressed as an integer level (0..levels-1).

        Level 0 is fully crystalline (most absorbing, smallest weight);
        the top level is fully amorphous (most transmissive).
        """
        return int(round((1.0 - self.crystalline_fraction) * (self.material.levels - 1)))

    def program_fraction(self, crystalline_fraction: float) -> None:
        """Program to an exact crystalline fraction via one write pulse."""
        if not 0.0 <= crystalline_fraction <= 1.0:
            raise ProgrammingError(
                f"crystalline fraction must lie in [0, 1], got {crystalline_fraction}"
            )
        if self.write_count >= self.material.endurance_cycles:
            raise EnduranceExceededError(
                f"GST cell exceeded endurance of {self.material.endurance_cycles} writes"
            )
        self.crystalline_fraction = float(crystalline_fraction)
        self.write_count += 1
        self.energy_spent_j += self.write_energy_j

    def program_level(self, level: int) -> None:
        """Program to one of the discrete levels (0 = crystalline)."""
        if not 0 <= level < self.material.levels:
            raise ProgrammingError(
                f"level must be in [0, {self.material.levels - 1}], got {level}"
            )
        self.program_fraction(1.0 - level / (self.material.levels - 1))

    def amorphize(self) -> None:
        """Full RESET pulse: melt-quench to the amorphous phase."""
        self.program_fraction(0.0)

    def crystallize(self) -> None:
        """Full SET anneal: return to the crystalline phase."""
        self.program_fraction(1.0)

    # ------------------------------------------------------------------
    def transmission(self) -> float:
        """Power transmission of the loaded segment at the current state."""
        return float(
            patch_transmission(
                self.crystalline_fraction,
                self.patch_length_m,
                self.wavelength_m,
                self.confinement,
            )
        )

    def read(self) -> float:
        """Issue a low-power read pulse; returns transmission, logs energy."""
        self.read_count += 1
        self.energy_spent_j += self.read_energy_j
        return self.transmission()

    # ------------------------------------------------------------------
    @property
    def remaining_endurance(self) -> int:
        """Write cycles left before the cell is out of spec."""
        return max(0, self.material.endurance_cycles - self.write_count)
