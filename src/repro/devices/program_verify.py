"""Iterative program-and-verify writing for multilevel GST cells.

Hitting one of 255 analog levels with a single optical pulse is optimistic:
real multilevel PCM programming applies a pulse, *reads back* the achieved
level, and re-pulses until the cell lands within tolerance (standard
practice in the PCM literature the paper builds on, e.g. ref [5]'s
255-level devices).  This module models that loop:

- each pulse lands at ``target + N(0, write_std)`` levels;
- each verify read observes the state through ``N(0, read_std)`` noise;
- the loop re-pulses until the *read* is within ``tolerance`` levels or the
  iteration cap is hit.

The controller reports achieved levels, pulses consumed (extra energy and
endurance), and convergence — fully vectorized over a whole weight bank
(unconverged-cell masking instead of per-cell Python loops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import PJ
from repro.errors import ConfigError, ProgrammingError


@dataclass(frozen=True)
class ProgramVerifyConfig:
    """Stochastic write/read model + acceptance policy."""

    #: Per-pulse placement error [levels, 1 sigma].
    write_std_levels: float = 1.5
    #: Verify-read observation noise [levels, 1 sigma].
    read_std_levels: float = 0.3
    #: Accept when the verify read is within this many levels of target.
    tolerance_levels: float = 1.0
    #: Give up (keep best effort) after this many pulses per cell.
    max_iterations: int = 10
    #: Level grid size (255 for 8-bit GST).
    levels: int = 255
    write_energy_j: float = 660 * PJ
    read_energy_j: float = 20 * PJ

    def __post_init__(self) -> None:
        if self.write_std_levels < 0 or self.read_std_levels < 0:
            raise ConfigError("noise sigmas must be non-negative")
        if self.tolerance_levels <= 0:
            raise ConfigError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ConfigError("need at least one iteration")
        if self.levels < 2:
            raise ConfigError("need at least 2 levels")


@dataclass(frozen=True)
class ProgramVerifyResult:
    """Outcome of one bank-wide program-verify operation."""

    achieved_levels: np.ndarray
    pulses: np.ndarray
    reads: np.ndarray
    converged: np.ndarray
    config: ProgramVerifyConfig

    @property
    def total_pulses(self) -> int:
        """Total write pulses across all cells."""
        return int(self.pulses.sum())

    @property
    def total_reads(self) -> int:
        """Total verify reads across all cells."""
        return int(self.reads.sum())

    @property
    def mean_pulses_per_cell(self) -> float:
        """Average pulses a cell needed."""
        return float(self.pulses.mean())

    @property
    def convergence_rate(self) -> float:
        """Fraction of cells that landed within tolerance."""
        return float(self.converged.mean())

    @property
    def energy_j(self) -> float:
        """Total programming energy including verify reads."""
        return (
            self.total_pulses * self.config.write_energy_j
            + self.total_reads * self.config.read_energy_j
        )

    def level_errors(self, targets: np.ndarray) -> np.ndarray:
        """Achieved-minus-target, in levels."""
        return self.achieved_levels - np.asarray(targets, dtype=np.float64)


class ProgramVerifyWriter:
    """Vectorized iterative program-and-verify controller.

    ``rng`` lets a caller (e.g. :class:`repro.arch.TridentAccelerator`)
    thread one shared seeded generator through every write so repeated
    campaign runs with the same seed are bit-identical; without it the
    writer owns a private ``default_rng(seed)``.
    """

    def __init__(
        self,
        config: ProgramVerifyConfig | None = None,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or ProgramVerifyConfig()
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def escalated(self, factor: float) -> "ProgramVerifyWriter":
        """A writer with ``factor``-times the iteration budget, same RNG.

        The retry-with-backoff repair policy re-attempts a failed write
        with an escalating pulse budget; sharing the generator keeps the
        whole campaign on one deterministic draw stream.
        """
        if factor < 1.0:
            raise ConfigError(f"escalation factor must be >= 1, got {factor}")
        from dataclasses import replace

        cfg = replace(
            self.config,
            max_iterations=max(int(self.config.max_iterations * factor), 1),
        )
        writer = ProgramVerifyWriter(cfg)
        writer._rng = self._rng
        return writer

    def write(
        self,
        target_levels: np.ndarray,
        frozen_mask: np.ndarray | None = None,
        frozen_levels: np.ndarray | None = None,
    ) -> ProgramVerifyResult:
        """Program every cell to its integer target level.

        One pass per iteration over the still-unconverged mask; all draws
        vectorized.  Cells flagged in ``frozen_mask`` model worn-out PCM:
        pulses land them at ``frozen_levels`` regardless of target (the
        cell no longer switches), so they converge only when their frozen
        level already sits within tolerance of the target — otherwise they
        burn the full iteration budget and surface in the ``converged``
        mask, which is exactly the readback signal online fault detection
        keys on.
        """
        cfg = self.config
        targets = np.asarray(target_levels, dtype=np.float64)
        if np.any(targets < 0) or np.any(targets > cfg.levels - 1):
            raise ProgrammingError(
                f"targets must lie in [0, {cfg.levels - 1}]"
            )
        frozen = None
        if frozen_mask is not None:
            frozen = np.asarray(frozen_mask, dtype=bool)
            if frozen.shape != targets.shape:
                raise ProgrammingError(
                    f"frozen mask shape {frozen.shape} != targets {targets.shape}"
                )
            frozen_levels = np.asarray(frozen_levels, dtype=np.float64)
            if frozen_levels.shape != targets.shape:
                raise ProgrammingError(
                    f"frozen levels shape {frozen_levels.shape} != targets "
                    f"{targets.shape}"
                )
        shape = targets.shape
        achieved = np.full(shape, np.nan)
        pulses = np.zeros(shape, dtype=np.int64)
        reads = np.zeros(shape, dtype=np.int64)
        pending = np.ones(shape, dtype=bool)

        for _ in range(cfg.max_iterations):
            if not pending.any():
                break
            n = int(pending.sum())
            # Pulse: land near the target with placement error.
            landed = targets[pending] + self._rng.standard_normal(n) * cfg.write_std_levels
            landed = np.clip(landed, 0, cfg.levels - 1)
            if frozen is not None:
                # Worn cells ignore the pulse and stay at their stuck level.
                landed = np.where(frozen[pending], frozen_levels[pending], landed)
            achieved[pending] = landed
            pulses[pending] += 1
            # Verify read.
            observed = landed + self._rng.standard_normal(n) * cfg.read_std_levels
            reads[pending] += 1
            ok = np.abs(observed - targets[pending]) <= cfg.tolerance_levels
            still = pending.copy()
            still[pending] = ~ok
            pending = still

        return ProgramVerifyResult(
            achieved_levels=achieved,
            pulses=pulses,
            reads=reads,
            converged=~pending,
            config=cfg,
        )

    def expected_pulses_per_cell(self) -> float:
        """Analytical expectation of pulses per cell.

        Acceptance probability per attempt: P(|N(0, s)| <= tol) with
        s^2 = write_std^2 + read_std^2; the pulse count is geometric,
        truncated at max_iterations.
        """
        from math import erf, sqrt

        cfg = self.config
        s = sqrt(cfg.write_std_levels**2 + cfg.read_std_levels**2)
        if s == 0:
            return 1.0
        p = erf(cfg.tolerance_levels / (s * sqrt(2.0)))
        if p <= 0:
            return float(cfg.max_iterations)
        expected = 0.0
        survive = 1.0
        for k in range(1, cfg.max_iterations + 1):
            if k == cfg.max_iterations:
                expected += survive * k
            else:
                expected += survive * p * k
                survive *= 1 - p
        return expected
