"""Photodetector models: single PD and the balanced pair (BPD).

A balanced photodetector subtracts the photocurrents of two matched diodes.
In Trident each weight-bank row terminates in a BPD whose two inputs are the
summed *drop* and *through* ports of the row's rings — the subtraction is
what turns the add-drop differential transmission into a signed weighted sum
(paper Sec. III-A, ref [2]).

Power/energy figures come from the paper's Table III: the BPD + TIA pair
draws 12.1 mW (ref [19], a co-designed sub-pJ/bit receiver).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import BOLTZMANN, ELEMENTARY_CHARGE, MW, ROOM_TEMPERATURE
from repro.devices.noise import NoiseModel
from repro.errors import ConfigError, DeviceError


@dataclass
class Photodetector:
    """A single photodiode converting optical power to photocurrent.

    Parameters
    ----------
    responsivity_a_per_w:
        Conversion gain [A/W]; Ge-on-Si detectors reach ~1 A/W at 1550 nm.
    dark_current_a:
        Dark current [A], added to every detection.
    bandwidth_hz:
        Detection bandwidth [Hz]; enters the shot/thermal noise variances.
    load_ohms:
        Effective load for thermal (Johnson) noise.
    """

    responsivity_a_per_w: float = 1.0
    dark_current_a: float = 10e-9
    bandwidth_hz: float = 5e9
    load_ohms: float = 50.0

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0:
            raise ConfigError("responsivity must be positive")
        if self.dark_current_a < 0:
            raise ConfigError("dark current must be non-negative")
        if self.bandwidth_hz <= 0 or self.load_ohms <= 0:
            raise ConfigError("bandwidth and load must be positive")

    def photocurrent(self, optical_power_w: np.ndarray | float) -> np.ndarray:
        """Mean photocurrent [A] for the given optical power (vectorized)."""
        p = np.asarray(optical_power_w, dtype=np.float64)
        if np.any(p < 0):
            raise DeviceError("optical power must be non-negative")
        return self.responsivity_a_per_w * p + self.dark_current_a

    def shot_noise_std(self, optical_power_w: np.ndarray | float) -> np.ndarray:
        """Shot-noise current std [A]: sqrt(2 q I B)."""
        current = self.photocurrent(optical_power_w)
        return np.sqrt(2.0 * ELEMENTARY_CHARGE * current * self.bandwidth_hz)

    def thermal_noise_std(self) -> float:
        """Johnson noise current std [A]: sqrt(4 k T B / R)."""
        return float(
            np.sqrt(4.0 * BOLTZMANN * ROOM_TEMPERATURE * self.bandwidth_hz / self.load_ohms)
        )

    def snr_db(self, optical_power_w: float) -> float:
        """Electrical SNR [dB] of a detection at the given power."""
        if optical_power_w <= 0:
            raise DeviceError("optical power must be positive for SNR")
        signal = self.responsivity_a_per_w * optical_power_w
        noise = np.hypot(self.shot_noise_std(optical_power_w), self.thermal_noise_std())
        return 20.0 * float(np.log10(signal / noise))


@dataclass
class BalancedPhotodetector:
    """Matched photodiode pair producing I_plus - I_minus.

    The subtraction cancels common-mode terms (dark current, bias power) so
    the output is directly proportional to the *signed* optical differential.
    """

    detector: Photodetector = field(default_factory=Photodetector)
    noise: NoiseModel = field(default_factory=NoiseModel.ideal)
    #: Electrical power draw of the BPD half of the receiver [W].
    power_w: float = 4.0 * MW

    def detect(
        self,
        plus_power_w: np.ndarray | float,
        minus_power_w: np.ndarray | float,
    ) -> np.ndarray:
        """Differential photocurrent [A] with optional noise (vectorized)."""
        plus = np.asarray(plus_power_w, dtype=np.float64)
        minus = np.asarray(minus_power_w, dtype=np.float64)
        if plus.shape != minus.shape:
            raise DeviceError(
                f"branch shapes differ: {plus.shape} vs {minus.shape}"
            )
        if np.any(plus < 0) or np.any(minus < 0):
            raise DeviceError("optical powers must be non-negative")
        r = self.detector.responsivity_a_per_w
        diff = r * (plus - minus)  # dark currents cancel
        return self.noise.apply_detection_noise(diff)

    def detect_normalized(
        self,
        differential: np.ndarray | float,
        scale_w: float = 1.0e-3,
    ) -> np.ndarray:
        """Detect a normalized differential signal.

        ``differential`` is a dimensionless signed quantity (e.g. a weighted
        sum of transmissions in [-N, N]); it is split onto the two branches
        at ``scale_w`` watts per unit, detected, and renormalized back to the
        dimensionless domain.  This is the entry point the functional MVM
        uses — it exercises the same noise path as :meth:`detect` without
        forcing callers to carry absolute power units.
        """
        d = np.asarray(differential, dtype=np.float64)
        plus = np.where(d > 0, d, 0.0) * scale_w
        minus = np.where(d < 0, -d, 0.0) * scale_w
        if np.any(plus < 0) or np.any(minus < 0):
            raise DeviceError("optical powers must be non-negative")
        r = self.detector.responsivity_a_per_w
        exact = r * (plus - minus) / (r * scale_w)
        # Noise coefficients are specified in normalized units, so the
        # stochastic stage acts after renormalization.
        return self.noise.apply_detection_noise(exact)
