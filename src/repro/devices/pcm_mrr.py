"""PCM-tuned MRR weight cell: an add-drop ring with an embedded GST patch.

This is Trident's weight element (paper Fig 2b).  The GST patch attenuates
the light circulating in the ring; because the cell sits in an add-drop
configuration read out by a balanced photodetector, the observable is the
*differential* transmission ``d = T_drop - T_through``, which swings from
strongly positive (amorphous GST, lossless ring, light exits at the drop
port) to negative (crystalline GST, light decoupled to the through port).
Mapping a signed weight ``w in [-1, 1]`` onto ``d`` therefore needs no bias
subtraction — the calibration below finds, once per device geometry, the
monotone curve ``d(c)`` over crystalline fraction ``c`` and inverts it.

The calibration object is the bridge between the physical layer and the
vectorized weight-bank math: banks store quantized levels and use
:meth:`WeightCalibration.weights_to_levels` / ``levels_to_weights`` without
touching per-ring Python objects on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.gst import GSTCell, GSTMaterial, patch_transmission
from repro.devices.mrr import AddDropMRR
from repro.errors import DeviceError, ProgrammingError


@dataclass(frozen=True)
class WeightCalibration:
    """Invertible mapping between signed weights and GST states.

    Attributes
    ----------
    fractions:
        Grid of crystalline fractions, ascending in [0, 1].
    differentials:
        ``d(c) = T_drop(c) - T_through(c)`` on that grid (strictly decreasing
        in ``c`` for any physical geometry — verified at build time).
    d_sym:
        Symmetric differential range: weights map linearly onto
        ``d in [-d_sym, +d_sym]`` so that ``w = d / d_sym`` without offset.
    levels:
        Number of programmable GST levels (255 for 8-bit).
    """

    fractions: np.ndarray
    differentials: np.ndarray
    d_sym: float
    levels: int

    def __post_init__(self) -> None:
        if self.fractions.shape != self.differentials.shape:
            raise DeviceError("calibration grids must have matching shapes")
        if self.d_sym <= 0:
            raise DeviceError(f"d_sym must be positive, got {self.d_sym}")
        if self.levels < 2:
            raise DeviceError(f"levels must be >= 2, got {self.levels}")

    # -- weight <-> differential ----------------------------------------
    def weight_to_differential(self, weights: np.ndarray | float) -> np.ndarray:
        """Target differential transmission for signed weights (vectorized)."""
        w = np.asarray(weights, dtype=np.float64)
        if np.any(np.abs(w) > 1.0 + 1e-12):
            raise ProgrammingError("weights must lie in [-1, 1]")
        return np.clip(w, -1.0, 1.0) * self.d_sym

    def differential_to_weight(self, differentials: np.ndarray | float) -> np.ndarray:
        """Signed weight read back from a differential transmission."""
        return np.asarray(differentials, dtype=np.float64) / self.d_sym

    # -- weight <-> crystalline fraction --------------------------------
    def weight_to_fraction(self, weights: np.ndarray | float) -> np.ndarray:
        """Crystalline fraction realizing each weight (vectorized interp).

        ``differentials`` is decreasing in ``c``; ``np.interp`` wants an
        ascending x-grid, so interpolate on the reversed arrays.
        """
        d = self.weight_to_differential(weights)
        return np.interp(d, self.differentials[::-1], self.fractions[::-1])

    def fraction_to_weight(self, fractions: np.ndarray | float) -> np.ndarray:
        """Weight realized by given crystalline fractions (vectorized)."""
        c = np.asarray(fractions, dtype=np.float64)
        d = np.interp(c, self.fractions, self.differentials)
        return np.clip(self.differential_to_weight(d), -1.0, 1.0)

    # -- weight <-> quantized level --------------------------------------
    def weights_to_levels(self, weights: np.ndarray | float) -> np.ndarray:
        """Quantize signed weights onto integer GST levels.

        Level 0 encodes w = -1, the top level encodes w = +1, linearly.
        """
        w = np.asarray(weights, dtype=np.float64)
        if np.any(np.abs(w) > 1.0 + 1e-12):
            raise ProgrammingError("weights must lie in [-1, 1]")
        scaled = (np.clip(w, -1.0, 1.0) + 1.0) / 2.0 * (self.levels - 1)
        return np.rint(scaled).astype(np.int64)

    def levels_to_weights(self, levels: np.ndarray | float) -> np.ndarray:
        """Signed weight encoded by integer (or noise-perturbed) levels."""
        lv = np.asarray(levels, dtype=np.float64)
        return np.clip(lv / (self.levels - 1) * 2.0 - 1.0, -1.0, 1.0)

    @property
    def weight_step(self) -> float:
        """Smallest representable weight increment."""
        return 2.0 / (self.levels - 1)


def build_calibration(
    ring: AddDropMRR | None = None,
    material: GSTMaterial | None = None,
    patch_length_m: float = 0.3e-6,
    confinement: float = 0.2,
    grid_points: int = 1001,
) -> WeightCalibration:
    """Sweep crystalline fraction and build the weight calibration curve.

    Evaluates the add-drop differential on resonance for every fraction on a
    dense grid (vectorized through the ring formulas), verifies monotonicity,
    and picks the symmetric weight range.
    """
    ring = ring or AddDropMRR()
    material = material or GSTMaterial()
    if grid_points < 16:
        raise DeviceError(f"grid_points too small: {grid_points}")

    fractions = np.linspace(0.0, 1.0, grid_points)
    # Amplitude loss of the GST patch = sqrt(power transmission).
    amp = np.sqrt(patch_transmission(fractions, patch_length_m, confinement=confinement))
    r1, r2 = ring.input_coupling, ring.drop_coupling
    a = ring.ring_loss * amp
    den = (1.0 - r1 * r2 * a) ** 2
    t_through = (r2 * a - r1) ** 2 / den
    t_drop = (1.0 - r1 * r1) * (1.0 - r2 * r2) * a / den
    diff = t_drop - t_through

    if not np.all(np.diff(diff) < 0):
        raise DeviceError(
            "differential transmission is not strictly decreasing in crystalline "
            "fraction; geometry is outside the calibratable regime"
        )
    d_max, d_min = float(diff[0]), float(diff[-1])
    if d_max <= 0 or d_min >= 0:
        raise DeviceError(
            f"differential range [{d_min:.3f}, {d_max:.3f}] does not straddle zero; "
            "signed weights are not realizable with this geometry"
        )
    d_sym = min(d_max, -d_min)
    return WeightCalibration(
        fractions=fractions,
        differentials=diff,
        d_sym=d_sym,
        levels=material.levels,
    )


@dataclass
class PCMMRRWeight:
    """A single programmable signed weight: add-drop MRR + GST cell.

    Scalar reference device.  Banks use the vectorized calibration directly;
    tests assert the bank math agrees with this object device-by-device.
    """

    ring: AddDropMRR = field(default_factory=AddDropMRR)
    gst: GSTCell = field(default_factory=GSTCell)
    calibration: WeightCalibration | None = None

    def __post_init__(self) -> None:
        if self.calibration is None:
            self.calibration = build_calibration(
                self.ring,
                self.gst.material,
                patch_length_m=self.gst.patch_length_m,
                confinement=self.gst.confinement,
            )

    # ------------------------------------------------------------------
    def program(self, weight: float) -> None:
        """Program the GST cell so the ring realizes ``weight`` (quantized)."""
        level = int(self.calibration.weights_to_levels(weight))
        quantized = float(self.calibration.levels_to_weights(level))
        fraction = float(self.calibration.weight_to_fraction(quantized))
        self.gst.program_fraction(fraction)

    @property
    def weight(self) -> float:
        """Signed weight currently realized by the device."""
        return float(self.calibration.fraction_to_weight(self.gst.crystalline_fraction))

    def differential_transmission(self) -> float:
        """Physical (drop - through) on resonance at the current GST state."""
        amp = float(np.sqrt(self.gst.transmission()))
        return self.ring.with_extra_loss(amp).differential_on_resonance()

    def apply(self, x: float) -> float:
        """Multiply an input amplitude by the programmed weight."""
        return self.weight * x

    @property
    def programming_energy_j(self) -> float:
        """Total energy spent programming this cell so far."""
        return self.gst.energy_spent_j
