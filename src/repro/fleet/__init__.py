"""Fleet-scale adaptive control plane.

Grows the single-server serving layer into a closed-loop fleet: a
seeded diurnal + bursty multi-tenant trace (:mod:`repro.fleet.trace`)
drives a :class:`~repro.fleet.pool.WorkerPool` of clone-commissioned
workers, and a :class:`~repro.fleet.controller.FleetController` tick —
running inside the serving event loop on the virtual clock — reads
always-on telemetry rollups and actuates autoscaling (warm-up, graceful
drain, checkpointed decommission), per-tenant rebalancing, and a
degraded-mode ladder that always converges back to nominal.  Every
actuation lands in the server's decision log, so a (trace seed,
controller config) pair replays bit-identically.
"""

from repro.fleet.controller import ControllerConfig, FleetController, LADDER
from repro.fleet.pool import WORKER_STATES, WorkerPool, state_digest
from repro.fleet.trace import (
    Burst,
    DEFAULT_TENANTS,
    TenantSpec,
    TraceConfig,
    synthesize_trace,
)
from repro.fleet.workload import (
    FleetRunResult,
    FleetScenario,
    SCENARIOS,
    fleet_digest,
    fleet_smoke_checks,
    large_scenario,
    peak_fleet_size,
    run_fleet_smoke,
    run_fleet_workload,
    smoke_chaos_plan,
    smoke_scenario,
    standard_scenario,
    window_p99_latency_s,
)

__all__ = [
    "Burst",
    "ControllerConfig",
    "DEFAULT_TENANTS",
    "FleetController",
    "FleetRunResult",
    "FleetScenario",
    "LADDER",
    "SCENARIOS",
    "TenantSpec",
    "TraceConfig",
    "WORKER_STATES",
    "WorkerPool",
    "fleet_digest",
    "fleet_smoke_checks",
    "large_scenario",
    "peak_fleet_size",
    "run_fleet_smoke",
    "run_fleet_workload",
    "smoke_chaos_plan",
    "smoke_scenario",
    "standard_scenario",
    "state_digest",
    "synthesize_trace",
    "window_p99_latency_s",
]
