"""Seeded diurnal + bursty multi-tenant arrival-trace generation.

The fleet control plane is exercised against an open-loop trace shaped
like real edge-serving traffic: a diurnal sinusoid (trough at the start
and end of the horizon, peak in the middle), multiplicative burst
windows stacked on top, and a tenant mix in which each arrival carries a
tenant name, priority tier, deadline policy, and traffic class
(``infer`` or ``train``).

Rates are expressed as *multiples of one worker's sustainable full-batch
rate* (``unit_rate_hz``), so the same config scales from a 2-worker
smoke run to a several-hundred-worker fleet without retuning: a
``base_rate_x`` of 2.0 means the mean offered load equals two workers'
worth of capacity.

Arrivals are drawn by thinning a homogeneous Poisson process at the
envelope rate — the standard exact sampler for a non-homogeneous Poisson
process — from a single seeded generator, so a (config, seed,
unit_rate) triple always produces the identical request list, which is
what the fleet replay gate leans on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.serving.request import InferenceRequest


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract."""

    name: str
    #: Relative share of arrivals (normalized across tenants).
    weight: float
    #: Priority tier every request from this tenant carries.
    priority: int = 0
    #: Fraction of this tenant's requests carrying a hard deadline.
    deadline_fraction: float = 0.9
    #: Traffic class — degraded mode freezes ``"train"`` before brownout.
    kind: str = "infer"

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("tenant needs a non-empty name")
        if self.weight <= 0:
            raise ServingError(f"tenant {self.name}: weight must be positive")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ServingError(
                f"tenant {self.name}: deadline fraction must be in [0, 1]"
            )
        if self.kind not in ("infer", "train"):
            raise ServingError(
                f"tenant {self.name}: kind must be 'infer' or 'train', "
                f"got {self.kind!r}"
            )


@dataclass(frozen=True)
class Burst:
    """A multiplicative surge window on top of the diurnal curve."""

    start_s: float
    duration_s: float
    gain: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ServingError("burst window must be positive and start >= 0")
        if self.gain < 1.0:
            raise ServingError(f"burst gain must be >= 1, got {self.gain}")

    @property
    def end_s(self) -> float:
        """Instant the burst window closes [s]."""
        return self.start_s + self.duration_s

    def active(self, t_s: float) -> bool:
        """Whether ``t_s`` falls inside the half-open burst window."""
        return self.start_s <= t_s < self.end_s


DEFAULT_TENANTS = (
    TenantSpec("free", weight=0.55, priority=0, deadline_fraction=0.9),
    TenantSpec("pro", weight=0.30, priority=1, deadline_fraction=0.95),
    TenantSpec(
        "train", weight=0.10, priority=0, deadline_fraction=0.0, kind="train"
    ),
    TenantSpec("enterprise", weight=0.05, priority=2, deadline_fraction=1.0),
)


@dataclass(frozen=True)
class TraceConfig:
    """Shape of one diurnal + burst multi-tenant trace.

    All times are virtual seconds; all rates are multiples of
    ``unit_rate_hz`` (one worker's sustainable full-batch throughput),
    resolved at synthesis time.
    """

    duration_s: float
    #: Mean offered load, in worker-equivalents.
    base_rate_x: float
    #: Diurnal modulation depth in [0, 1): rate spans
    #: ``base * (1 - amp)`` (trough) to ``base * (1 + amp)`` (peak).
    diurnal_amplitude: float = 0.8
    #: Diurnal period; defaults to ``duration_s`` (one full day-cycle,
    #: trough at both ends, peak mid-horizon).
    period_s: float | None = None
    bursts: tuple[Burst, ...] = ()
    tenants: tuple[TenantSpec, ...] = DEFAULT_TENANTS
    seed: int = 0
    #: Hard cap on synthesized arrivals (guards a mistyped rate).
    max_requests: int = 2_000_000

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ServingError("trace duration must be positive")
        if self.base_rate_x <= 0:
            raise ServingError("base rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ServingError(
                f"diurnal amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.period_s is not None and self.period_s <= 0:
            raise ServingError("diurnal period must be positive")
        if not self.tenants:
            raise ServingError("trace needs at least one tenant")
        for burst in self.bursts:
            if burst.start_s >= self.duration_s:
                raise ServingError(
                    f"burst at {burst.start_s:g}s starts past the trace end"
                )

    # -- rate envelope -------------------------------------------------
    def rate_x(self, t_s: float) -> float:
        """Offered load at ``t_s`` in worker-equivalents."""
        period = self.period_s if self.period_s is not None else self.duration_s
        diurnal = 1.0 - self.diurnal_amplitude * math.cos(
            2.0 * math.pi * t_s / period
        )
        gain = 1.0
        for burst in self.bursts:
            if burst.active(t_s):
                gain *= burst.gain
        return self.base_rate_x * diurnal * gain

    def peak_rate_x(self) -> float:
        """Upper envelope of :meth:`rate_x` (the thinning bound)."""
        gain = 1.0
        for burst in self.bursts:
            gain = max(gain, burst.gain)
        return self.base_rate_x * (1.0 + self.diurnal_amplitude) * gain

    def peak_window(self) -> tuple[float, float]:
        """The window the smoke gate grades p99 over: the first burst,
        or the middle fifth of the horizon when no burst is configured."""
        if self.bursts:
            burst = self.bursts[0]
            return burst.start_s, min(burst.end_s, self.duration_s)
        return 0.4 * self.duration_s, 0.6 * self.duration_s


def synthesize_trace(
    config: TraceConfig, unit_rate_hz: float, n_in: int, slo_latency_s: float
) -> list[InferenceRequest]:
    """Draw the full arrival list for one trace.

    ``unit_rate_hz`` converts worker-equivalents to requests/s; ``n_in``
    sizes the input vectors; ``slo_latency_s`` is the latency budget
    deadlines are derived from (``arrival + slo``).
    """
    if unit_rate_hz <= 0:
        raise ServingError("unit rate must be positive")
    rng = np.random.default_rng(config.seed)
    weights = np.array([t.weight for t in config.tenants], dtype=float)
    weights /= weights.sum()
    envelope_hz = config.peak_rate_x() * unit_rate_hz
    requests: list[InferenceRequest] = []
    t = 0.0
    request_id = 0
    while True:
        t += float(rng.exponential(1.0 / envelope_hz))
        if t >= config.duration_s:
            break
        # Thinning: accept with probability rate(t) / envelope.
        if float(rng.random()) * envelope_hz > config.rate_x(t) * unit_rate_hz:
            continue
        tenant = config.tenants[int(rng.choice(len(config.tenants), p=weights))]
        deadline = (
            t + slo_latency_s
            if float(rng.random()) < tenant.deadline_fraction
            else None
        )
        requests.append(
            InferenceRequest(
                request_id=request_id,
                x=rng.uniform(-1.0, 1.0, n_in),
                arrival_s=t,
                deadline_s=deadline,
                priority=tenant.priority,
                tenant=tenant.name,
                kind=tenant.kind,
            )
        )
        request_id += 1
        if request_id >= config.max_requests:
            raise ServingError(
                f"trace exceeded max_requests={config.max_requests}; "
                "lower base_rate_x or duration_s"
            )
    return requests
