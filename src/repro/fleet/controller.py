"""The closed-loop fleet controller: observe rollups, actuate knobs.

Every control decision runs *inside* the serving event loop, as a
recurring :meth:`~repro.serving.server.TridentServer.schedule_action`
tick on the virtual clock.  Each tick reads the always-on
:class:`~repro.telemetry.rollup.ServingRollup` (never the opt-in
telemetry session — decisions must not depend on whether tracing is
enabled), decides, and actuates through the server's public surface:

- **Autoscaling with hysteresis** — proportional scale-up sized from
  the windowed demand estimate after ``scale_up_breach_ticks``
  consecutive red ticks (new workers warm up before taking traffic);
  scale-down drains one worker at a time only after
  ``scale_down_clear_ticks`` consecutive green low-utilization ticks,
  and a decommission waits for in-flight batches and checkpoints bank
  state.  Separate breach/clear counters plus per-direction cooldowns
  are what stop the loop from thrashing at a capacity boundary.
- **Degraded-mode ladder** — NOMINAL → TIGHT_BATCH (shrink the
  micro-batch SLO so batches close sooner) → SHED_LOW (admission
  priority floor) → FREEZE_TRAINING (``kind="train"`` refused) →
  BROWNOUT (power-capped fleet + higher floor).  The ladder climbs one
  rung per sustained breach and steps down one rung per sustained
  green window, so it always converges back to NOMINAL when load
  subsides; the run-end tick unwinds any residual rung as a backstop.
- **Per-tenant rebalancing** — a tenant shedding far above the fleet
  norm while the fleet is otherwise green earns a bounded priority
  boost, released once its shed rate clears.

Every actuation goes through ``server.record_decision`` — the same
ordered, replayed decision log as admits and dispatches — so a (trace
seed, controller config) pair replays the control trajectory
bit-identically.  Wall-clock overhead is accumulated (never read for
decisions) so the benchmark gate can hold the loop under 1% of serve
wall time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.errors import ServingError
from repro.serving.breaker import BreakerState
from repro.telemetry.session import (
    counter as _metric_counter,
    gauge as _metric_gauge,
)

#: Degraded-mode rungs, mildest first.  Index into this tuple is the
#: controller's ``rung`` state; 0 is nominal operation.
LADDER = ("nominal", "tight_batch", "shed_low", "freeze_training", "brownout")


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs for the control loop (all times virtual seconds)."""

    #: Tick period and the trailing window each tick aggregates.
    interval_s: float = 1e-5
    window_s: float = 3e-5
    #: Latency target attainment is graded against.
    slo_latency_s: float = 1e-5
    #: Fleet-size bounds the autoscaler honors.
    min_workers: int = 2
    max_workers: int = 16
    #: Warm-up delay before a commissioned worker takes traffic.
    warmup_s: float = 5e-6
    #: Utilization headroom scale-up sizes toward (fraction of capacity).
    target_utilization: float = 0.8
    # -- scale-up hysteresis -----------------------------------------
    scale_up_attainment: float = 0.92
    scale_up_queue_frac: float = 0.5
    #: Proactive trigger: scale up when windowed demand exceeds this
    #: fraction of active capacity, *before* attainment breaks.  A step
    #: burst costs one detection tick regardless; this keeps the slower
    #: diurnal ramp from ever eating into the SLO.
    scale_up_utilization: float = 0.9
    scale_up_breach_ticks: int = 1
    scale_up_cooldown_ticks: int = 1
    # -- scale-down hysteresis ---------------------------------------
    scale_down_utilization: float = 0.4
    scale_down_clear_ticks: int = 3
    scale_down_cooldown_ticks: int = 2
    # -- degraded-mode ladder ----------------------------------------
    degraded_enter_attainment: float = 0.45
    degraded_enter_ticks: int = 2
    degraded_exit_attainment: float = 0.90
    degraded_exit_ticks: int = 2
    #: TIGHT_BATCH shrinks the micro-batch SLO target by this factor.
    tight_batch_slo_factor: float = 0.5
    #: SHED_LOW admission floor; BROWNOUT raises it further.
    shed_low_floor: int = 1
    brownout_floor: int = 2
    # -- power model --------------------------------------------------
    per_worker_power_w: float = 0.025
    power_budget_w: float = 1.0
    brownout_power_fraction: float = 0.5
    # -- tenant rebalancing -------------------------------------------
    rebalance_shed_rate: float = 0.30
    rebalance_max_boost: int = 2
    # -- SDC quarantine -----------------------------------------------
    #: Escalated ABFT attestation failures a single worker may rack up
    #: in one rollup window before the controller force-trips its
    #: breaker.  The breaker's own failure threshold catches fast bursts
    #: on its shorter memory; this catches the slow corrupter whose
    #: occasional escalations keep slipping past it.
    sdc_quarantine_count: int = 3

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.window_s <= 0:
            raise ServingError("controller interval and window must be positive")
        if self.min_workers < 1 or self.max_workers < self.min_workers:
            raise ServingError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if not 0.0 < self.target_utilization <= 1.0:
            raise ServingError("target utilization must be in (0, 1]")
        if self.degraded_exit_attainment <= self.degraded_enter_attainment:
            raise ServingError(
                "degraded exit threshold must exceed the enter threshold "
                "(that gap is the ladder's hysteresis)"
            )
        if not 0.0 < self.tight_batch_slo_factor <= 1.0:
            raise ServingError("tight-batch SLO factor must be in (0, 1]")
        if self.per_worker_power_w <= 0 or self.power_budget_w <= 0:
            raise ServingError("power model values must be positive")
        if self.sdc_quarantine_count < 1:
            raise ServingError(
                f"SDC quarantine count must be >= 1, "
                f"got {self.sdc_quarantine_count}"
            )

    def power_cap_workers(self, rung: int) -> int:
        """Fleet-size ceiling the power budget allows at ``rung``."""
        budget = self.power_budget_w
        if LADDER[rung] == "brownout":
            budget *= self.brownout_power_fraction
        return max(1, int(budget / self.per_worker_power_w))


class FleetController:
    """Recurring control tick over one server + pool + rollup triple."""

    def __init__(self, server, pool, rollup, config: ControllerConfig) -> None:
        self.server = server
        self.pool = pool
        self.rollup = rollup
        self.config = config
        #: Micro-batch SLO target at NOMINAL (restored on ladder exit).
        self.base_batch_slo_s = float(server.batcher.slo_latency_s)
        # -- control state -------------------------------------------
        self.rung = 0
        self._breach_ticks = 0
        self._clear_ticks = 0
        self._ladder_bad = 0
        self._ladder_good = 0
        self._up_cooldown = 0
        self._down_cooldown = 0
        # -- observability -------------------------------------------
        self.ticks = 0
        self.scale_up_events = 0
        self.scale_down_events = 0
        self.degraded_entries = 0
        self.degraded_exits = 0
        #: Structured log of every knob change (mirrors the decision log).
        self.actuations: list[dict] = []
        #: Wall-clock seconds spent inside ticks *deciding* (benchmark
        #: gate input; never read by any decision).  Actuation payloads —
        #: cloning a worker at commission, hashing bank state at
        #: decommission — accumulate in :attr:`provision_wall_s` instead:
        #: that is capacity work the system pays per scaling event
        #: regardless of what triggers it, not per-tick loop overhead.
        self.wall_s = 0.0
        self.provision_wall_s = 0.0
        self.stopped = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, start_s: float | None = None) -> None:
        """Schedule the first tick (defaults to one interval from now)."""
        start = (
            float(start_s)
            if start_s is not None
            else self.server.clock.now() + self.config.interval_s
        )
        self.server.schedule_action(start, "controller_tick", self._tick)

    # ------------------------------------------------------------------
    # Actuation plumbing
    # ------------------------------------------------------------------
    def _actuate(self, action: str, **fields) -> None:
        record = {"action": action, "t": self.server.clock.now(), **fields}
        self.actuations.append(record)
        self.server.record_decision("controller", **record)
        _metric_counter("repro_controller_actuations_total").inc()

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def _tick(self, server) -> None:
        t0 = time.perf_counter()
        provision0 = self.provision_wall_s
        try:
            self._evaluate(server)
        finally:
            elapsed = time.perf_counter() - t0
            self.wall_s += elapsed - (self.provision_wall_s - provision0)

    def _evaluate(self, server) -> None:
        cfg = self.config
        now = server.clock.now()
        self.ticks += 1
        _metric_counter("repro_controller_ticks_total").inc()
        self.pool.refresh(now)
        if not server.pending_work():
            # Run is drained: unwind any residual degraded rung (no load
            # is by definition nominal), retire any worker still mid-drain
            # (idle by definition now), stop rescheduling, done.
            if self.rung > 0:
                self._set_rung(0, reason="run_drained")
            self._reap_draining()
            self.stopped = True
            self._actuate("stop", ticks=self.ticks)
            return

        stats = self.rollup.window_stats(
            now, cfg.slo_latency_s, window_s=cfg.window_s
        )
        active = self.pool.ids_in("active")
        warming = self.pool.ids_in("warming")
        n_active = len(active)
        n_rising = n_active + len(warming)
        demand_hz = (stats.completions + stats.sheds) / stats.window_s
        per_worker_hz = self.pool.unit_rate_hz(server.batcher.max_batch)
        capacity_hz = max(n_active, 1) * per_worker_hz
        utilization = demand_hz / capacity_hz

        self.rollup.record_power(now, n_active * cfg.per_worker_power_w)
        _metric_gauge("repro_fleet_workers", "Active fleet size").set_at(
            n_active, now
        )
        _metric_gauge(
            "repro_fleet_power_w", "Modeled fleet power draw"
        ).set_at(n_active * cfg.per_worker_power_w, now)

        self._drive_sdc(server, stats, now)
        self._drive_ladder(stats)
        self._drive_autoscaling(
            server, stats, n_active, n_rising, demand_hz, per_worker_hz,
            utilization,
        )
        self._drive_rebalancing(server, stats)
        self._reap_draining()

        server.schedule_action(
            now + cfg.interval_s, "controller_tick", self._tick
        )

    # ------------------------------------------------------------------
    # SDC quarantine
    # ------------------------------------------------------------------
    def _drive_sdc(self, server, stats, now: float) -> None:
        """Force-quarantine workers whose windowed SDC count is over cap.

        The rollup's per-worker escalated-attestation tallies are the
        fleet-level read of the integrity ladder: a worker repeatedly
        producing silently-corrupt batches gets its breaker tripped
        outright (reason ``sdc_quarantine``), pulling it from rotation
        until the half-open probe's repair sweep — which rewrites and
        recalibrates its checksum rows — proves it clean again.
        """
        threshold = self.config.sdc_quarantine_count
        for wid in sorted(stats.sdc_by_worker):
            count = stats.sdc_by_worker[wid]
            breaker = server.breakers.get(wid)
            if (
                count >= threshold
                and breaker is not None
                and breaker.state is BreakerState.CLOSED
            ):
                breaker.trip(now, "sdc_quarantine")
                self._actuate("sdc_quarantine", worker=wid, sdc=int(count))

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    def _drive_autoscaling(
        self, server, stats, n_active, n_rising, demand_hz, per_worker_hz,
        utilization,
    ) -> None:
        cfg = self.config
        self._up_cooldown = max(0, self._up_cooldown - 1)
        self._down_cooldown = max(0, self._down_cooldown - 1)

        red = (
            stats.attainment < cfg.scale_up_attainment
            or utilization > cfg.scale_up_utilization
            or stats.last_queue_depth
            >= cfg.scale_up_queue_frac * server.queue.max_depth
        )
        self._breach_ticks = self._breach_ticks + 1 if red else 0

        healthy = server.serving_worker_count()
        ceiling = min(cfg.max_workers, cfg.power_cap_workers(self.rung))
        if (
            self._breach_ticks >= cfg.scale_up_breach_ticks
            and self._up_cooldown == 0
            and n_rising < ceiling
        ):
            # Proportional sizing: enough workers to carry the windowed
            # demand at target utilization, with breaker-opened capacity
            # (a storm, a crash wave) counted as missing.
            needed = math.ceil(
                demand_hz / (cfg.target_utilization * per_worker_hz)
            )
            needed += n_active - healthy
            target = min(ceiling, max(needed, n_rising + 1))
            to_add = target - n_rising
            if to_add > 0:
                t0 = time.perf_counter()
                added = [
                    self.pool.commission(cfg.warmup_s) for _ in range(to_add)
                ]
                self.provision_wall_s += time.perf_counter() - t0
                self.scale_up_events += 1
                self._up_cooldown = cfg.scale_up_cooldown_ticks
                self._breach_ticks = 0
                self._actuate(
                    "scale_up",
                    added=added,
                    fleet=n_rising + to_add,
                    attainment=round(stats.attainment, 4),
                    demand_x=round(demand_hz / per_worker_hz, 3),
                )
                _metric_counter("repro_fleet_scale_ups_total").inc(to_add)
            return  # never scale both directions in one tick

        green = (
            self.rung == 0
            and stats.attainment >= cfg.degraded_exit_attainment
            and not red
            and utilization < cfg.scale_down_utilization
            and n_active > cfg.min_workers
        )
        self._clear_ticks = self._clear_ticks + 1 if green else 0
        if (
            self._clear_ticks >= cfg.scale_down_clear_ticks
            and self._down_cooldown == 0
        ):
            victim = max(self.pool.ids_in("active"))
            self.pool.begin_drain(victim)
            self.scale_down_events += 1
            self._down_cooldown = cfg.scale_down_cooldown_ticks
            self._clear_ticks = 0
            self._actuate(
                "scale_down",
                drained=victim,
                fleet=n_active - 1,
                utilization=round(utilization, 4),
            )
            _metric_counter("repro_fleet_scale_downs_total").inc()

    def _reap_draining(self) -> None:
        t0 = time.perf_counter()
        for wid in self.pool.ids_in("draining"):
            self.pool.try_decommission(wid)
        self.provision_wall_s += time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Degraded-mode ladder
    # ------------------------------------------------------------------
    def _drive_ladder(self, stats) -> None:
        cfg = self.config
        if stats.attainment < cfg.degraded_enter_attainment:
            self._ladder_bad += 1
            self._ladder_good = 0
        elif stats.attainment >= cfg.degraded_exit_attainment:
            self._ladder_good += 1
            self._ladder_bad = 0
        else:
            self._ladder_bad = 0
            self._ladder_good = 0
        if self._ladder_bad >= cfg.degraded_enter_ticks:
            if self.rung < len(LADDER) - 1:
                self._set_rung(
                    self.rung + 1,
                    reason=f"attainment {stats.attainment:.3f} < "
                    f"{cfg.degraded_enter_attainment}",
                )
            self._ladder_bad = 0
        elif self._ladder_good >= cfg.degraded_exit_ticks and self.rung > 0:
            self._set_rung(
                self.rung - 1,
                reason=f"attainment {stats.attainment:.3f} >= "
                f"{cfg.degraded_exit_attainment}",
            )
            self._ladder_good = 0

    def _set_rung(self, rung: int, reason: str) -> None:
        """Move the ladder to ``rung`` and apply that rung's policy."""
        before = self.rung
        if rung == before:
            return
        if before == 0:
            self.degraded_entries += 1
        if rung == 0:
            self.degraded_exits += 1
        self.rung = rung
        self._apply_rung_policy()
        self._actuate(
            "degraded_mode", frm=LADDER[before], to=LADDER[rung], reason=reason
        )
        _metric_counter("repro_fleet_degraded_transitions_total").inc()

    def _apply_rung_policy(self) -> None:
        """Make the server's policy knobs match the current rung.

        Idempotent by construction: each knob is written only when its
        value actually changes, so re-applying the current rung (or a
        steady NOMINAL state) performs zero actuations.
        """
        cfg = self.config
        server = self.server
        rung_name = LADDER[self.rung]

        slo = self.base_batch_slo_s
        if self.rung >= LADDER.index("tight_batch"):
            slo = self.base_batch_slo_s * cfg.tight_batch_slo_factor
        if server.batcher.slo_latency_s != slo:
            server.batcher.slo_latency_s = slo
            self._actuate("batch_slo", slo_s=slo, rung=rung_name)

        floor: int | None = None
        if self.rung >= LADDER.index("shed_low"):
            floor = cfg.shed_low_floor
        if rung_name == "brownout":
            floor = cfg.brownout_floor
        if server.min_priority != floor:
            server.min_priority = floor
            self._actuate("admission_floor", floor=floor, rung=rung_name)

        frozen = (
            {"train"} if self.rung >= LADDER.index("freeze_training") else set()
        )
        if server.frozen_kinds != frozen:
            server.frozen_kinds = set(frozen)
            self._actuate(
                "freeze_kinds", kinds=sorted(frozen), rung=rung_name
            )

        # Brownout: drain the fleet down to the browned-out power cap.
        cap = cfg.power_cap_workers(self.rung)
        active = self.pool.ids_in("active")
        if len(active) > cap and rung_name == "brownout":
            for wid in sorted(active, reverse=True)[: len(active) - cap]:
                self.pool.begin_drain(wid)
            self._actuate("brownout_cap", cap=cap, drained=len(active) - cap)

    # ------------------------------------------------------------------
    # Tenant rebalancing
    # ------------------------------------------------------------------
    def _drive_rebalancing(self, server, stats) -> None:
        cfg = self.config
        if self.rung != 0:
            return  # degraded mode owns the priority policy
        fleet_green = stats.attainment >= cfg.scale_up_attainment
        for tenant in sorted(stats.terminated_by_tenant):
            rate = stats.tenant_shed_rate(tenant)
            boost = server.tenant_boost.get(tenant, 0)
            if (
                fleet_green
                and rate > cfg.rebalance_shed_rate
                and boost < cfg.rebalance_max_boost
            ):
                server.tenant_boost[tenant] = boost + 1
                self._actuate(
                    "tenant_boost",
                    tenant=tenant,
                    boost=boost + 1,
                    shed_rate=round(rate, 4),
                )
            elif boost > 0 and rate <= cfg.rebalance_shed_rate / 2:
                if boost - 1 == 0:
                    del server.tenant_boost[tenant]
                else:
                    server.tenant_boost[tenant] = boost - 1
                self._actuate(
                    "tenant_boost",
                    tenant=tenant,
                    boost=boost - 1,
                    shed_rate=round(rate, 4),
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Summary the fleet report and smoke checks consume."""
        return {
            "ticks": self.ticks,
            "rung": LADDER[self.rung],
            "scale_up_events": self.scale_up_events,
            "scale_down_events": self.scale_down_events,
            "degraded_entries": self.degraded_entries,
            "degraded_exits": self.degraded_exits,
            "actuations": len(self.actuations),
            "wall_s": self.wall_s,
            "provision_wall_s": self.provision_wall_s,
            "stopped": self.stopped,
        }
