"""End-to-end fleet runs: scenario presets, the runner, and the smoke gate.

A fleet run wires the whole control plane together: a
:class:`~repro.fleet.pool.WorkerPool` bootstraps the initial fleet, a
:class:`~repro.serving.server.TridentServer` serves a seeded diurnal +
burst multi-tenant trace (:mod:`repro.fleet.trace`), an always-on
:class:`~repro.telemetry.rollup.ServingRollup` feeds the
:class:`~repro.fleet.controller.FleetController`, and an optional
:class:`~repro.chaos.plan.ChaosPlan` injects faults mid-run.  The
*uncontrolled* variant of the same run — static initial fleet, no
controller — is the baseline the smoke gate compares against: it must
demonstrably miss the p99 SLO at peak where the controlled run meets it.

The peak-window p99 treats a shed request as infinite latency, so the
gate cannot be gamed by shedding the burst away: the controlled run
passes only if at least 99% of burst-window arrivals complete on time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math

from repro.errors import ServingError
from repro.fleet.controller import ControllerConfig, FleetController, LADDER
from repro.fleet.pool import WorkerPool
from repro.fleet.trace import Burst, TraceConfig, synthesize_trace
from repro.serving.server import ServeReport, ServerConfig, TridentServer
from repro.telemetry.rollup import ServingRollup

#: Where the smoke scenario's breaker storm lands, as a fraction of the
#: trace horizon: after the burst window (~0.38-0.46) but still inside
#: the diurnal peak region, so the storm — not the burst — drives the
#: degraded-mode episode while the burst drives the p99 gate.
STORM_AT_FRACTION = 0.55


@dataclasses.dataclass(frozen=True)
class FleetScenario:
    """One fully-specified fleet run (trace + server + controller)."""

    name: str
    trace: TraceConfig
    server: ServerConfig
    controller: ControllerConfig
    dims: tuple[int, ...] = (12, 16, 4)
    initial_workers: int = 2
    seed: int = 11

    def __post_init__(self) -> None:
        if self.initial_workers < self.controller.min_workers:
            raise ServingError(
                f"initial fleet ({self.initial_workers}) below the "
                f"controller's min_workers ({self.controller.min_workers})"
            )


def _server_config(seed: int, max_queue_depth: int = 4096) -> ServerConfig:
    return ServerConfig(
        max_queue_depth=max_queue_depth,
        max_batch=16,
        slo_latency_s=1e-5,
        max_retries=2,
        retry_backoff_s=5e-7,
        retry_jitter_s=1e-7,
        breaker_failure_threshold=3,
        # Long enough (3 controller ticks) that a breaker storm opens a
        # real capacity hole the degraded ladder has to ride out.
        breaker_cooldown_s=3e-5,
        seed=seed,
    )


def smoke_scenario(seed: int = 11) -> FleetScenario:
    """The CI gate: 2 -> ~8 workers, one burst, one mid-peak storm."""
    duration = 1e-3
    return FleetScenario(
        name="smoke",
        dims=(12, 16, 4),
        initial_workers=2,
        seed=seed,
        trace=TraceConfig(
            duration_s=duration,
            base_rate_x=1.5,
            diurnal_amplitude=0.8,
            bursts=(Burst(0.38 * duration, 0.08 * duration, 1.7),),
            seed=seed,
        ),
        server=_server_config(seed),
        controller=ControllerConfig(
            interval_s=5e-6,
            window_s=1.5e-5,
            slo_latency_s=1e-5,
            min_workers=2,
            max_workers=8,
            warmup_s=2e-6,
            power_budget_w=0.25,
        ),
    )


def standard_scenario(seed: int = 11) -> FleetScenario:
    """A mid-size run for local exploration (4 -> ~32 workers)."""
    duration = 6e-4
    return FleetScenario(
        name="standard",
        dims=(12, 16, 4),
        initial_workers=4,
        seed=seed,
        trace=TraceConfig(
            duration_s=duration,
            base_rate_x=6.0,
            diurnal_amplitude=0.8,
            bursts=(Burst(0.38 * duration, 0.08 * duration, 2.0),),
            seed=seed,
        ),
        server=_server_config(seed),
        controller=ControllerConfig(
            interval_s=6e-6,
            window_s=1.8e-5,
            slo_latency_s=1e-5,
            min_workers=4,
            max_workers=32,
            warmup_s=3e-6,
            power_budget_w=1.0,
        ),
    )


def large_scenario(seed: int = 11) -> FleetScenario:
    """The hundreds-of-workers run the tentpole is sized for."""
    duration = 2.5e-4
    return FleetScenario(
        name="large",
        dims=(12, 16, 4),
        initial_workers=48,
        seed=seed,
        trace=TraceConfig(
            duration_s=duration,
            base_rate_x=64.0,
            diurnal_amplitude=0.8,
            bursts=(Burst(0.38 * duration, 0.08 * duration, 1.5),),
            seed=seed,
        ),
        server=_server_config(seed, max_queue_depth=16384),
        controller=ControllerConfig(
            interval_s=5e-6,
            window_s=1.5e-5,
            slo_latency_s=1e-5,
            min_workers=48,
            max_workers=256,
            warmup_s=2.5e-6,
            power_budget_w=8.0,
        ),
    )


SCENARIOS = {
    "smoke": smoke_scenario,
    "standard": standard_scenario,
    "large": large_scenario,
}


def smoke_chaos_plan(scenario: FleetScenario):
    """A fleet-wide breaker-storm volley, mid-diurnal-peak.

    Hand-built (not drawn from a profile) so the smoke gate's timing is
    exact.  Three back-to-back storms one controller tick apart keep
    re-tripping every breaker — including replacement workers the
    controller commissions mid-storm — so the capacity hole outlasts
    the degraded-mode enter window and the ladder has to engage; a
    single storm is repaired by commissioning before two bad ticks
    accumulate.
    """
    from repro.chaos.plan import ChaosPlan, Injection

    storm_at = STORM_AT_FRACTION * scenario.trace.duration_s
    step = 1.2 * scenario.controller.interval_s
    return ChaosPlan(
        seed=scenario.seed,
        injections=tuple(
            Injection(storm_at + i * step, "breaker_storm", None)
            for i in range(3)
        ),
    )


# ----------------------------------------------------------------------
# The run itself
# ----------------------------------------------------------------------
@dataclasses.dataclass
class FleetRunResult:
    """Everything one fleet run produced."""

    scenario: FleetScenario
    report: ServeReport
    pool: WorkerPool
    #: None for uncontrolled (static-knob baseline) runs.
    controller: FleetController | None
    chaos_applied: list[dict]
    unit_rate_hz: float
    n_requests: int

    def as_dict(self) -> dict:
        """JSON-ready summary: fleet counts, controller report, serve stats."""
        doc = {
            "scenario": self.scenario.name,
            "requests": self.n_requests,
            "unit_rate_hz": self.unit_rate_hz,
            "fleet": self.pool.counts(),
            "chaos_applied": len(self.chaos_applied),
            "serve": self.report.as_dict(),
        }
        if self.controller is not None:
            doc["controller"] = self.controller.report()
        return doc


def run_fleet_workload(
    scenario: FleetScenario,
    controlled: bool = True,
    chaos_plan=None,
) -> FleetRunResult:
    """Build the fleet, synthesize the trace, serve to completion.

    ``controlled=False`` runs the identical trace and chaos on the
    static initial fleet with no controller — the baseline the smoke
    gate uses to show the control plane earns its keep.
    """
    pool = WorkerPool(scenario.dims, scenario.seed)
    workers = pool.bootstrap(scenario.initial_workers)
    rollup = ServingRollup(scenario.controller.window_s)
    server = TridentServer(workers, config=scenario.server, rollup=rollup)
    pool.bind(server)

    unit_rate = pool.unit_rate_hz(scenario.server.max_batch)
    arrivals = synthesize_trace(
        scenario.trace,
        unit_rate,
        scenario.dims[0],
        scenario.controller.slo_latency_s,
    )

    controller = None
    if controlled:
        controller = FleetController(server, pool, rollup, scenario.controller)
        controller.install(start_s=scenario.controller.interval_s)

    if chaos_plan is not None:
        from repro.chaos.session import session as chaos_scope

        with chaos_scope(chaos_plan) as chaos_session:
            server.install_chaos(chaos_session)
            report = server.run(arrivals)
        applied = list(chaos_session.applied)
    else:
        report = server.run(arrivals)
        applied = []

    return FleetRunResult(
        scenario=scenario,
        report=report,
        pool=pool,
        controller=controller,
        chaos_applied=applied,
        unit_rate_hz=unit_rate,
        n_requests=len(arrivals),
    )


# ----------------------------------------------------------------------
# Gate metrics
# ----------------------------------------------------------------------
def window_p99_latency_s(
    report: ServeReport, start_s: float, end_s: float
) -> float:
    """p99 latency over requests *arriving* in ``[start_s, end_s)``.

    A shed request contributes infinite latency — it never met its
    target — so this metric is finite only when at least 99% of the
    window's arrivals actually completed.  0.0 when the window is empty.
    """
    latencies: list[float] = []
    for completion in report.completed:
        if start_s <= completion.request.arrival_s < end_s:
            latencies.append(completion.latency_s)
    for rejection in report.shed:
        if start_s <= rejection.request.arrival_s < end_s:
            latencies.append(math.inf)
    if not latencies:
        return 0.0
    latencies.sort()
    index = min(
        len(latencies) - 1, max(0, int(round(0.99 * (len(latencies) - 1))))
    )
    return latencies[index]


def fleet_digest(result: FleetRunResult) -> str:
    """Replay digest: decision log + every completed output, bit-exact."""
    h = hashlib.sha256()
    h.update(
        json.dumps(
            result.report.decisions, sort_keys=True, default=repr
        ).encode()
    )
    for completion in sorted(
        result.report.completed, key=lambda c: c.request.request_id
    ):
        h.update(completion.output.tobytes())
    return h.hexdigest()


def peak_fleet_size(result: FleetRunResult) -> int:
    """Largest commissioned-and-not-yet-decommissioned roster the run saw."""
    size = result.scenario.initial_workers
    peak = size
    for decision in result.report.decisions:
        if decision["kind"] == "commission":
            size += 1
            peak = max(peak, size)
        elif decision["kind"] == "decommission":
            size -= 1
    return peak


# ----------------------------------------------------------------------
# Smoke gate
# ----------------------------------------------------------------------
def fleet_smoke_checks(
    result: FleetRunResult,
    replay: FleetRunResult,
    baseline: FleetRunResult,
) -> list[tuple[str, bool]]:
    """The ``repro fleet --smoke`` pass/fail list."""
    controller = result.controller
    if controller is None:
        raise ServingError("smoke checks need the controlled run's controller")
    slo = result.scenario.controller.slo_latency_s
    peak = result.scenario.trace.peak_window()
    peak_p99 = window_p99_latency_s(result.report, *peak)
    baseline_p99 = window_p99_latency_s(baseline.report, *peak)
    counts = result.pool.counts()
    decommissioned = result.pool.ids_in("decommissioned")
    controller_decisions = [
        d for d in result.report.decisions if d["kind"] == "controller"
    ]
    return [
        ("request conservation (no silent drops)",
         result.report.conservation_ok()),
        ("burst absorbed: p99 over peak-window arrivals within SLO",
         peak_p99 <= slo),
        ("static baseline misses the p99 SLO at peak",
         baseline_p99 > slo),
        ("fleet scaled up under load",
         controller.scale_up_events > 0
         and peak_fleet_size(result) > result.scenario.initial_workers),
        ("fleet scaled back down after the trough (hysteresis observed)",
         controller.scale_down_events > 0 and len(decommissioned) > 0),
        ("every decommissioned worker checkpointed its bank state",
         sorted(result.pool.checkpoint_digests) == decommissioned),
        ("degraded mode entered exactly once (the storm)",
         controller.degraded_entries == 1),
        ("degraded mode exited exactly once (converged back to nominal)",
         controller.degraded_exits == 1
         and LADDER[controller.rung] == "nominal"),
        ("chaos storm applied",
         any(a["kind"] == "breaker_storm" for a in result.chaos_applied)),
        ("every actuation in the decision log",
         len(controller_decisions) == len(controller.actuations) > 0),
        ("controller stopped cleanly at drain", controller.stopped),
        ("no worker left mid-lifecycle",
         counts["warming"] == 0 and counts["draining"] == 0),
        ("replay is bit-identical",
         fleet_digest(result) == fleet_digest(replay)),
    ]


def run_fleet_smoke(seed: int = 11):
    """Controlled run + fresh replay + static baseline, then the checks."""
    scenario = smoke_scenario(seed)
    plan = smoke_chaos_plan(scenario)
    result = run_fleet_workload(scenario, controlled=True, chaos_plan=plan)
    replay = run_fleet_workload(scenario, controlled=True, chaos_plan=plan)
    baseline = run_fleet_workload(scenario, controlled=False, chaos_plan=plan)
    checks = fleet_smoke_checks(result, replay, baseline)
    return checks, result, baseline
