"""Worker lifecycle management: clone-commission, warm-up, drain, retire.

A fleet of hundreds of workers cannot afford the full build path (map +
program-verify deploy, ~40x the cost) per commission.  The pool builds
**one** template worker the expensive way, snapshots its accelerator
``state_dict`` (bit-exact: weights, PCM cell state, RNG streams), and
commissions every subsequent worker by cloning that snapshot onto a
fresh accelerator — clone outputs are bit-identical to the template's,
so fleet size never perturbs per-request results.

Lifecycle (tracked per worker id)::

    COLD --commission--> WARMING --(warm-up elapses)--> ACTIVE
         ACTIVE --begin_drain--> DRAINING --(idle)--> DECOMMISSIONED

Decommission checkpoints the worker's bank state as a digest before the
worker leaves the roster — drained capacity is *conserved*, auditable
state, not vanished hardware — and the server refuses to remove a
worker with in-flight batches, so the request-conservation audit holds
across any scale-up/drain schedule.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ServingError
from repro.serving.worker import AcceleratorWorker
from repro.serving.workload import build_worker

#: Lifecycle states a pooled worker moves through.
WORKER_STATES = ("warming", "active", "draining", "decommissioned")


def state_digest(state: dict) -> str:
    """Deterministic SHA-256 of an accelerator ``state_dict``."""
    h = hashlib.sha256()

    def feed(obj) -> None:
        if isinstance(obj, np.ndarray):
            h.update(str(obj.dtype).encode())
            h.update(str(obj.shape).encode())
            h.update(np.ascontiguousarray(obj).tobytes())
        elif isinstance(obj, dict):
            for key in sorted(obj, key=str):
                h.update(str(key).encode())
                feed(obj[key])
        elif isinstance(obj, (list, tuple)):
            for item in obj:
                feed(item)
        else:
            h.update(repr(obj).encode())

    feed(state)
    return h.hexdigest()


class WorkerPool:
    """Builds, tracks, and retires the fleet's workers."""

    def __init__(self, dims: tuple[int, ...], seed: int) -> None:
        self.dims = tuple(dims)
        self.seed = int(seed)
        self._template_state: dict | None = None
        self._template_worker: AcceleratorWorker | None = None
        self._next_id = 0
        self.server = None
        #: worker id -> lifecycle state (one of :data:`WORKER_STATES`).
        self.states: dict[int, str] = {}
        #: worker id -> instant it may first take traffic.
        self.ready_s: dict[int, float] = {}
        #: worker id -> bank-state checkpoint digest at decommission.
        self.checkpoint_digests: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def make_worker(self, worker_id: int) -> AcceleratorWorker:
        """Build (first call) or clone (every later call) one worker."""
        if self._template_state is None:
            worker = build_worker(worker_id, self.dims, self.seed)
            self._template_state = worker.acc.state_dict()
            self._template_worker = worker
            return worker
        return self._clone(worker_id)

    def _clone(self, worker_id: int) -> AcceleratorWorker:
        from repro.arch import TridentAccelerator, TridentConfig
        from repro.devices.program_verify import ProgramVerifyConfig
        from repro.faults import FaultManager, RepairConfig

        rows = max(max(self.dims), 2)
        acc = TridentAccelerator(
            config=TridentConfig(
                bank_rows=rows,
                bank_cols=rows,
                spare_rows=4,
                convergence_floor=0.0,
            ),
            seed=self.seed,
            program_verify=ProgramVerifyConfig(),
        )
        acc.map_mlp(list(self.dims))
        acc.load_state_dict(self._template_state)
        n_tiles = sum(len(layer.tiles) for layer in acc.layers)
        manager = FaultManager(
            acc, config=RepairConfig(policy="remap", max_migrations=n_tiles)
        )
        return AcceleratorWorker(worker_id, acc, manager=manager)

    def bootstrap(self, n_workers: int) -> list[AcceleratorWorker]:
        """The initial fleet (already warm); call before the server exists."""
        if n_workers < 1:
            raise ServingError(f"need at least one worker, got {n_workers}")
        if self._next_id != 0:
            raise ServingError("bootstrap must run before any commission")
        workers = []
        for _ in range(n_workers):
            wid = self._next_id
            self._next_id += 1
            workers.append(self.make_worker(wid))
            self.states[wid] = "active"
            self.ready_s[wid] = 0.0
        return workers

    def bind(self, server) -> None:
        """Attach the server the lifecycle methods actuate against."""
        self.server = server

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_server(self):
        if self.server is None:
            raise ServingError("pool is not bound to a server")
        return self.server

    def commission(self, warmup_s: float) -> int:
        """Clone a new worker onto the roster; returns its id.

        The worker enters WARMING and takes no traffic until the warm-up
        delay elapses — modeling program-load + calibration time, and the
        hysteresis half that stops scale-up from thrashing.
        """
        server = self._require_server()
        wid = self._next_id
        self._next_id += 1
        worker = self.make_worker(wid)
        now = server.clock.now()
        ready = now + max(0.0, float(warmup_s))
        server.add_worker(worker, warm_at_s=ready)
        self.states[wid] = "warming" if ready > now else "active"
        self.ready_s[wid] = ready
        return wid

    def refresh(self, now_s: float) -> list[int]:
        """Promote WARMING workers whose warm-up has elapsed; returns them."""
        promoted = []
        for wid, state in sorted(self.states.items()):
            if state == "warming" and self.ready_s.get(wid, 0.0) <= now_s:
                self.states[wid] = "active"
                promoted.append(wid)
        return promoted

    def begin_drain(self, worker_id: int) -> None:
        """ACTIVE/WARMING -> DRAINING: no new dispatches from here on."""
        server = self._require_server()
        state = self.states.get(worker_id)
        if state in (None, "decommissioned"):
            raise ServingError(f"cannot drain worker {worker_id} ({state})")
        if state == "draining":
            return
        server.begin_drain(worker_id)
        self.states[worker_id] = "draining"

    def try_decommission(self, worker_id: int) -> bool:
        """Retire a DRAINING worker once idle; checkpoints its bank state.

        Returns True when the worker actually left the roster this call.
        In-flight batches keep it DRAINING — graceful drain never abandons
        dispatched work.
        """
        server = self._require_server()
        if self.states.get(worker_id) != "draining":
            return False
        if not server.worker_idle(worker_id):
            return False
        worker = server.remove_worker(worker_id)
        digest = state_digest(worker.acc.state_dict())
        self.checkpoint_digests[worker_id] = digest
        self.states[worker_id] = "decommissioned"
        server.record_decision(
            "checkpoint_worker", worker=worker_id, digest=digest[:16]
        )
        return True

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def ids_in(self, state: str) -> list[int]:
        """Worker ids currently in ``state``, ascending."""
        if state not in WORKER_STATES:
            raise ServingError(f"unknown worker state {state!r}")
        return sorted(w for w, s in self.states.items() if s == state)

    def counts(self) -> dict[str, int]:
        """Lifecycle-state histogram."""
        out = {state: 0 for state in WORKER_STATES}
        for state in self.states.values():
            out[state] += 1
        return out

    def unit_rate_hz(self, max_batch: int) -> float:
        """One worker's sustainable full-batch rate (template cost model)."""
        worker = self._probe_worker()
        return max_batch / worker.service_time_s(max_batch)

    def _probe_worker(self) -> AcceleratorWorker:
        if self._template_worker is not None:
            return self._template_worker
        raise ServingError("pool has no workers to probe")
