"""Online fault detection from program-and-verify readback.

The controller never sees the stuck mask — that is device ground truth.
What it *does* see is the verify loop's ``converged`` mask after every
persistent weight write: a stuck cell whose frozen level sits outside
tolerance of its target never converges, no matter how many pulses the
writer spends.  A healthy cell occasionally fails the loop too (with
write_std 1.5 / read_std 0.3 / tol 1.0 the per-attempt acceptance is
~0.48, so ~0.13% of healthy cells exhaust a 10-iteration budget), which
is why detection is *strike-based*: a cell is flagged faulty only after
``strike_threshold`` consecutive unconverged writes, and any converged
write clears its strikes.  Two consecutive misses from a healthy cell
happen with probability ~2e-6 — transient noise and persistent wear
separate cleanly.

Strikes are kept in *physical* ring coordinates, so a row remapped onto a
spare carries no history from the row it replaced and a retired row keeps
its record (useful if the spare pool ever recycles).

The second health signal is time: GST retention is Arrhenius-activated
(:mod:`repro.devices.drift`), so the detector can also answer "has the
deployment aged past its drift budget?" — the refresh trigger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.drift import RetentionModel
from repro.errors import ConfigError, FaultError


@dataclass(frozen=True)
class DriftHealth:
    """Retention check: has programmed state drifted past its budget?"""

    age_s: float
    temperature_k: float
    worst_case_weight_error: float
    error_budget: float
    refresh_interval_s: float

    @property
    def needs_refresh(self) -> bool:
        """True when the worst-case drift exceeds the error budget."""
        return self.worst_case_weight_error > self.error_budget


class BankFaultMap:
    """Strike counters and inferred-faulty flags for one bank's rings.

    Physical-shape arrays (``(rows + spare_rows, cols)``): remaps move a
    logical row between physical rows, and health history belongs to the
    physical ring.
    """

    def __init__(self, physical_rows: int, cols: int, strike_threshold: int = 2) -> None:
        if physical_rows < 1 or cols < 1:
            raise FaultError(
                f"fault map dimensions must be positive, got {physical_rows}x{cols}"
            )
        if strike_threshold < 1:
            raise ConfigError(
                f"strike threshold must be >= 1, got {strike_threshold}"
            )
        self.strike_threshold = strike_threshold
        self.strikes = np.zeros((physical_rows, cols), dtype=np.int64)
        self.faulty = np.zeros((physical_rows, cols), dtype=bool)
        self.writes_observed = 0

    def observe(self, bank, result) -> None:
        """Fold one verified write's readback into the strike counters.

        ``result.converged`` has the programmed block's shape; the block's
        logical rows are translated to physical rows through the bank's
        current remap table, so observations land on the rings that were
        actually pulsed.
        """
        converged = np.atleast_2d(np.asarray(result.converged, dtype=bool))
        r, c = converged.shape
        phys = bank.active_row_map[:r]
        block = np.ix_(phys, np.arange(c))
        block_strikes = np.where(converged, 0, self.strikes[block] + 1)
        self.strikes[block] = block_strikes
        self.faulty[block] = block_strikes >= self.strike_threshold
        self.writes_observed += 1

    def observe_physical(self, result) -> None:
        """Fold a full-physical-array readback (a bank self-test pattern)
        into the strike counters — no row-map translation needed."""
        converged = np.asarray(result.converged, dtype=bool)
        if converged.shape != self.strikes.shape:
            raise FaultError(
                f"physical readback shape {converged.shape} != fault map "
                f"{self.strikes.shape}"
            )
        self.strikes = np.where(converged, 0, self.strikes + 1)
        self.faulty = self.strikes >= self.strike_threshold
        self.writes_observed += 1

    # ------------------------------------------------------------------
    def row_fault_counts(self, bank, cols_used: int | None = None) -> np.ndarray:
        """Inferred faulty-cell count per *logical* row of ``bank``.

        Reads the flags through the bank's current remap table — after a
        successful remap the logical row's count drops to the spare ring
        row's (usually zero).
        """
        c = bank.cols if cols_used is None else cols_used
        return self.faulty[bank.active_row_map, :c].sum(axis=1)

    def spare_fault_counts(self, bank, cols_used: int | None = None) -> dict[int, int]:
        """{free spare physical row: inferred faulty cells} for ``bank``.

        Spares wear like any ring; the repair engine picks the cleanest.
        Spare rows are only observed once written, so an unexercised spare
        reports zero — optimistic, corrected by the post-remap verify.
        """
        c = bank.cols if cols_used is None else cols_used
        return {
            int(s): int(self.faulty[s, :c].sum()) for s in bank.free_spare_rows
        }

    @property
    def faulty_fraction(self) -> float:
        """Fraction of physical cells currently flagged faulty."""
        return float(self.faulty.mean())

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the strike counters and inferred-faulty flags."""
        return {
            "strike_threshold": self.strike_threshold,
            "strikes": self.strikes.copy(),
            "faulty": self.faulty.copy(),
            "writes_observed": self.writes_observed,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (shape-checked)."""
        strikes = np.asarray(state["strikes"], dtype=np.int64)
        if strikes.shape != self.strikes.shape:
            raise FaultError(
                f"fault-map snapshot shape {strikes.shape} != {self.strikes.shape}"
            )
        self.strike_threshold = int(state["strike_threshold"])
        self.strikes = strikes.copy()
        self.faulty = np.asarray(state["faulty"], dtype=bool).copy()
        self.writes_observed = int(state["writes_observed"])


class FaultDetector:
    """Per-bank online fault maps fed by the accelerator's write hook.

    Attach to a :class:`~repro.arch.TridentAccelerator` running with
    program-verify enabled; every verified weight write then updates the
    written bank's :class:`BankFaultMap`.  The detector is an *observer*
    — it never mutates hardware state; acting on the maps is the
    :class:`~repro.faults.repair.FaultManager`'s job.
    """

    def __init__(self, strike_threshold: int = 2) -> None:
        if strike_threshold < 1:
            raise ConfigError(
                f"strike threshold must be >= 1, got {strike_threshold}"
            )
        self.strike_threshold = strike_threshold
        #: pe_index -> fault map (created on first observed write).
        self.maps: dict[int, BankFaultMap] = {}
        #: pe_index -> most recent ProgramVerifyResult.
        self.last_results: dict[int, object] = {}
        self.retention = RetentionModel()

    def attach(self, accelerator) -> "FaultDetector":
        """Register on the accelerator's write hook; returns self."""
        accelerator.add_write_listener(self.observe_write)
        return self

    def observe_write(self, pe_index: int, layer_index: int, tile_index: int, bank, result) -> None:
        """Write-listener callback (signature fixed by the accelerator)."""
        fault_map = self.maps.get(pe_index)
        if fault_map is None:
            fault_map = BankFaultMap(
                bank.physical_rows, bank.cols, self.strike_threshold
            )
            self.maps[pe_index] = fault_map
        fault_map.observe(bank, result)
        self.last_results[pe_index] = result

    def screen(self, pe_index: int, bank, writer) -> list:
        """Built-in self-test: march-test ``bank`` and absorb the readback.

        Exercises every physical ring row (spares included) with the
        bank's :meth:`~repro.arch.WeightBank.selftest`, so spare health is
        *measured* before a repair trusts a remap to one — an unexercised
        spare would otherwise look perfectly clean.  Leaves the bank
        needing a reprogram (the caller pays it).  Returns the per-pattern
        results.
        """
        fault_map = self.maps.get(pe_index)
        if fault_map is None:
            fault_map = BankFaultMap(
                bank.physical_rows, bank.cols, self.strike_threshold
            )
            self.maps[pe_index] = fault_map
        results = bank.selftest(writer)
        for result in results:
            fault_map.observe_physical(result)
        return results

    # ------------------------------------------------------------------
    def map_for(self, pe_index: int) -> BankFaultMap | None:
        """The fault map for one PE (None before its first verified write)."""
        return self.maps.get(pe_index)

    @property
    def total_flagged(self) -> int:
        """Total cells flagged faulty across every observed bank."""
        return sum(int(m.faulty.sum()) for m in self.maps.values())

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of every per-bank fault map (strike history included).

        ``last_results`` — the most recent raw readbacks — are transient
        diagnostics and deliberately not serialized; the strike counters
        carry everything repair decisions depend on.
        """
        return {
            "strike_threshold": self.strike_threshold,
            "maps": {
                str(pe_index): fault_map.state_dict()
                for pe_index, fault_map in self.maps.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, rebuilding per-PE maps."""
        self.strike_threshold = int(state["strike_threshold"])
        self.maps = {}
        self.last_results = {}
        for key, map_state in state["maps"].items():
            strikes = np.asarray(map_state["strikes"], dtype=np.int64)
            fault_map = BankFaultMap(
                strikes.shape[0], strikes.shape[1], self.strike_threshold
            )
            fault_map.load_state_dict(map_state)
            self.maps[int(key)] = fault_map

    # ------------------------------------------------------------------
    def check_drift(
        self,
        age_s: float,
        temperature_k: float = 300.0,
        error_budget: float | None = None,
        weight_step: float = 2.0 / 254.0,
    ) -> DriftHealth:
        """Retention health after ``age_s`` seconds at ``temperature_k``.

        Default budget is half an 8-bit weight LSB — drift beyond that
        starts flipping quantized levels and the deployment should
        refresh (reprogram) its banks.
        """
        if age_s < 0:
            raise ConfigError(f"age must be non-negative, got {age_s}")
        budget = weight_step / 2.0 if error_budget is None else error_budget
        if budget <= 0:
            raise ConfigError(f"error budget must be positive, got {budget}")
        worst = self.retention.worst_case_weight_error(age_s, temperature_k)
        interval = self.retention.refresh_interval_s(budget, temperature_k)
        return DriftHealth(
            age_s=age_s,
            temperature_k=temperature_k,
            worst_case_weight_error=worst,
            error_budget=budget,
            refresh_interval_s=interval,
        )
