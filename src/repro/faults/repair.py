"""The repair policy ladder: retry, spare-ring remap, tile migration.

Three mechanisms, ordered by cost, applied cumulatively (each policy tier
includes the cheaper ones):

1. **Retry** — rewrite the tile with an escalated pulse budget.  Fixes
   transient non-convergence (a healthy cell that ran out of iterations);
   cannot fix a stuck cell, which ignores pulses by definition.
2. **Spare remap** — route a logical row whose inferred faulty-cell count
   crosses threshold onto a spare ring row
   (:meth:`repro.arch.WeightBank.remap_row`), picking the spare the fault
   map believes cleanest, then reprogram the tile.  The routing change is
   free (control-unit mux); the reprogram pays normal write accounting.
3. **Tile migration** — move the whole tile onto a freshly allocated PE
   (:meth:`repro.arch.TridentAccelerator.migrate_tile`) when a bank is too
   far gone for its spare pool, then reprogram there.  Bounded by the
   configured PE budget and ``max_migrations``.

Health is judged from readback only: a tile is healthy when its last
verified write's worst |achieved - target| is within
``tile_error_budget_levels``.  Every repair write flows through
:meth:`~repro.arch.TridentAccelerator.reprogram_tile`, so repair
energy/latency lands in ``BankStats`` / ``EventCounters`` / the
``energy_estimate_j`` / ``time_estimate_s`` roll-ups exactly like any
other write — no free repairs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, RepairError
from repro.faults.detector import FaultDetector
from repro.telemetry.log import get_logger
from repro.telemetry.session import (
    counter as _metric_counter,
    emit_event as _emit_event,
)

_log = get_logger("repro.faults.repair")


class RepairPolicy(enum.Enum):
    """Repair aggressiveness tiers (cumulative: SPARE includes RETRY)."""

    NONE = "none"
    RETRY = "retry"
    SPARE = "spare"
    REMAP = "remap"

    @property
    def tier(self) -> int:
        """Numeric rank for cumulative comparisons."""
        return ("none", "retry", "spare", "remap").index(self.value)

    @classmethod
    def parse(cls, name: "RepairPolicy | str") -> "RepairPolicy":
        """Accept an enum member or its string value."""
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).lower())
        except ValueError as exc:
            valid = ", ".join(p.value for p in cls)
            raise ConfigError(
                f"unknown repair policy {name!r} (valid: {valid})"
            ) from exc


@dataclass(frozen=True)
class RepairConfig:
    """Knobs for the repair ladder."""

    policy: RepairPolicy = RepairPolicy.SPARE
    #: Escalated-rewrite attempts per tile before moving up the ladder.
    max_retries: int = 2
    #: Pulse-budget multiplier per retry (attempt k uses backoff**k).
    backoff: float = 2.0
    #: A tile is healthy when its last readback's worst |achieved-target|
    #: is within this many levels (default: well beyond verify tolerance
    #: but far below a stuck cell's typical error).
    tile_error_budget_levels: float = 4.0
    #: Remap a logical row once this many of its cells are flagged faulty.
    row_fault_threshold: int = 1
    #: Tile migrations allowed per repair sweep (PEs are the scarcest
    #: resource — a migration permanently consumes one).
    max_migrations: int = 1
    #: Self-test a bank (spares included) before its first remap, so
    #: spare choice is informed instead of optimistic.  Costs two
    #: full-array writes per screened bank — charged like any write.
    screen_spares: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", RepairPolicy.parse(self.policy))
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.tile_error_budget_levels <= 0:
            raise ConfigError("tile error budget must be positive")
        if self.row_fault_threshold < 1:
            raise ConfigError(
                f"row_fault_threshold must be >= 1, got {self.row_fault_threshold}"
            )
        if self.max_migrations < 0:
            raise ConfigError(
                f"max_migrations must be >= 0, got {self.max_migrations}"
            )


@dataclass
class RepairLog:
    """What a repair sweep actually did."""

    retries: int = 0
    row_remaps: int = 0
    migrations: int = 0
    tiles_unrepaired: int = 0
    refreshes: int = 0
    #: Batches that failed ABFT attestation beyond local recovery on
    #: this accelerator (noted by the integrity ladder, not by repair
    #: itself) — part of the worker's health history.
    sdc_escalations: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order) for reports."""
        return {
            "retries": self.retries,
            "row_remaps": self.row_remaps,
            "migrations": self.migrations,
            "tiles_unrepaired": self.tiles_unrepaired,
            "refreshes": self.refreshes,
            "sdc_escalations": self.sdc_escalations,
        }


class FaultManager:
    """Closes the loop: detector observations -> repair actions.

    Owns a :class:`~repro.faults.detector.FaultDetector` attached to the
    accelerator's write hook and walks the repair ladder per tile after
    every deployment (and on demand between training steps).  Requires
    program-verify to be enabled on the accelerator — without readback
    there is nothing to detect faults from.
    """

    def __init__(
        self,
        accelerator,
        detector: FaultDetector | None = None,
        config: RepairConfig | None = None,
    ) -> None:
        self.acc = accelerator
        self.config = config or RepairConfig()
        if (
            self.config.policy is not RepairPolicy.NONE
            and accelerator.verify_writer is None
        ):
            raise ConfigError(
                "fault repair needs program-verify readback; construct the "
                "accelerator with program_verify=ProgramVerifyConfig(...)"
            )
        if detector is None:
            detector = FaultDetector().attach(accelerator)
        self.detector = detector
        self.log = RepairLog()
        self._screened: set[int] = set()

    # ------------------------------------------------------------------
    def deploy(self, weights: list[np.ndarray]) -> RepairLog:
        """Program weights, then repair every unhealthy tile.

        The deployment writes feed the detector (each tile's verify
        readback is its health screen), so repair can act immediately.
        Returns the cumulative repair log.
        """
        self.acc.set_weights(weights)
        return self.repair()

    def repair(self) -> RepairLog:
        """One repair sweep over every mapped tile."""
        for layer in self.acc.layers:
            for tile_index in range(len(layer.tiles)):
                self._repair_tile(layer.index, tile_index)
        return self.log

    # ------------------------------------------------------------------
    def _tile_healthy(self, pe_index: int) -> bool:
        bank = self.acc.pes[pe_index].bank
        errors = bank.last_write_error_levels
        if errors is None:
            # Never verified: no evidence of trouble (NONE-policy banks).
            return True
        return float(np.max(errors, initial=0.0)) <= self.config.tile_error_budget_levels

    def _repaired(self, tier: str, layer_index: int, tile_index: int) -> None:
        """Record one successful repair (log line, counter, event)."""
        _log.info(
            "repaired layer %d tile %d via %s", layer_index, tile_index, tier
        )
        _metric_counter("repro_repairs_total", tier=tier).inc()
        _emit_event("repair", tier=tier, layer=layer_index, tile=tile_index)

    def _repair_tile(self, layer_index: int, tile_index: int) -> None:
        policy = self.config.policy
        if policy is RepairPolicy.NONE:
            return
        if self._tile_healthy(self._pe_of(layer_index, tile_index)):
            return
        _log.debug(
            "layer %d tile %d unhealthy; starting repair ladder (policy %s)",
            layer_index, tile_index, policy.value,
        )

        # Tier 1: retry with an escalating pulse budget.  Clears transient
        # non-convergence; stuck cells ignore pulses and stay flagged.
        for attempt in range(1, self.config.max_retries + 1):
            writer = self.acc.verify_writer.escalated(self.config.backoff**attempt)
            self.acc.reprogram_tile(layer_index, tile_index, writer=writer)
            self.log.retries += 1
            if self._tile_healthy(self._pe_of(layer_index, tile_index)):
                self._repaired("retry", layer_index, tile_index)
                return

        # Tier 2: remap worn logical rows onto spare ring rows.  Screen
        # the bank first (once) so the spare choice rests on measured
        # health, not on optimism about never-written rings.
        if policy.tier >= RepairPolicy.SPARE.tier:
            if self.config.screen_spares:
                self._screen(layer_index, tile_index)
                if self._tile_healthy(self._pe_of(layer_index, tile_index)):
                    self._repaired("retry", layer_index, tile_index)
                    return
            if self._remap_worn_rows(layer_index, tile_index):
                if self._tile_healthy(self._pe_of(layer_index, tile_index)):
                    self._repaired("spare", layer_index, tile_index)
                    return

        # Tier 3: migrate the whole tile to a fresh PE.
        if policy.tier >= RepairPolicy.REMAP.tier:
            if self._migrate(layer_index, tile_index):
                if self._tile_healthy(self._pe_of(layer_index, tile_index)):
                    self._repaired("migrate", layer_index, tile_index)
                    return

        # Graceful degradation: out of mechanisms — the tile keeps serving
        # with whatever accuracy its surviving cells deliver.
        self.log.tiles_unrepaired += 1
        _log.warning(
            "layer %d tile %d left unrepaired (policy %s exhausted); "
            "serving degraded",
            layer_index, tile_index, policy.value,
        )
        _metric_counter("repro_tiles_unrepaired_total").inc()
        _emit_event(
            "degradation", layer=layer_index, tile=tile_index, policy=policy.value
        )

    def _pe_of(self, layer_index: int, tile_index: int) -> int:
        return self.acc.layers[layer_index].tiles[tile_index][4]

    def _screen(self, layer_index: int, tile_index: int) -> None:
        """Self-test this tile's bank once, then restore its weights."""
        pe_index = self._pe_of(layer_index, tile_index)
        if pe_index in self._screened:
            return
        bank = self.acc.pes[pe_index].bank
        self.detector.screen(pe_index, bank, self.acc.verify_writer)
        self._screened.add(pe_index)
        # The test clobbered the weights; the restore write is the
        # screening's second (charged) half and refreshes the readback.
        self.acc.reprogram_tile(layer_index, tile_index)

    def _remap_worn_rows(self, layer_index: int, tile_index: int) -> bool:
        """Remap every over-threshold logical row this tile uses.

        Row choice comes from the detector's *inferred* map (no oracle);
        spare choice prefers the spare the map believes cleanest.  Stops
        when the spare pool runs dry.  Returns True if any row moved (the
        tile is reprogrammed once afterwards, paying the write cost).
        """
        pe_index = self._pe_of(layer_index, tile_index)
        bank = self.acc.pes[pe_index].bank
        fault_map = self.detector.map_for(pe_index)
        if fault_map is None:
            return False
        r0, r1, c0, c1, _ = self.acc.layers[layer_index].tiles[tile_index]
        cols_used = c1 - c0
        counts = fault_map.row_fault_counts(bank, cols_used)
        worn = sorted(
            (
                row
                for row in range(r1 - r0)
                if counts[row] >= self.config.row_fault_threshold
            ),
            key=lambda row: -counts[row],
        )
        moved = False
        for row in worn:
            spares = fault_map.spare_fault_counts(bank, cols_used)
            if not spares:
                break
            best = min(spares, key=lambda s: (spares[s], s))
            if spares[best] >= counts[row]:
                # No spare measurably better than the worn row: remapping
                # would trade known damage for equal-or-worse damage.
                # Worst rows were served first, so no later row does
                # better either — stop and degrade gracefully.
                break
            try:
                bank.remap_row(row, best)
            except RepairError:
                break
            self.log.row_remaps += 1
            moved = True
            _log.debug(
                "remapped row %d -> spare %d on layer %d tile %d",
                row, best, layer_index, tile_index,
            )
        if moved:
            # The bank refuses MVMs until the remapped rows hold weights
            # again; the reprogram is the (charged) second half of repair.
            self.acc.reprogram_tile(layer_index, tile_index)
        return moved

    def _migrate(self, layer_index: int, tile_index: int) -> bool:
        """Move the tile to a new PE and reprogram it there."""
        if self.log.migrations >= self.config.max_migrations:
            return False
        try:
            self.acc.migrate_tile(layer_index, tile_index)
        except RepairError:
            return False
        self.log.migrations += 1
        _log.info(
            "migrated layer %d tile %d to a fresh PE", layer_index, tile_index
        )
        self.acc.reprogram_tile(layer_index, tile_index)
        return True

    # ------------------------------------------------------------------
    def note_sdc(self) -> None:
        """Charge one escalated SDC incident to this accelerator's log.

        Called by the integrity escalation ladder when a batch fails
        attestation beyond local recovery — the worker's health history
        must reflect that its silicon produced corrupt numbers even
        though no tile was (yet) condemned by readback.
        """
        self.log.sdc_escalations += 1

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the repair log, screened-bank set, and the owned
        detector's fault maps — everything a resumed run needs for the
        repair ladder to pick up exactly where it left off."""
        return {
            "log": self.log.as_dict(),
            "screened": sorted(self._screened),
            "detector": self.detector.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        log = state["log"]
        self.log = RepairLog(
            retries=int(log["retries"]),
            row_remaps=int(log["row_remaps"]),
            migrations=int(log["migrations"]),
            tiles_unrepaired=int(log["tiles_unrepaired"]),
            refreshes=int(log["refreshes"]),
            # Absent from pre-integrity snapshots; default keeps them
            # loadable.
            sdc_escalations=int(log.get("sdc_escalations", 0)),
        )
        self._screened = {int(pe) for pe in state["screened"]}
        self.detector.load_state_dict(state["detector"])

    # ------------------------------------------------------------------
    def maybe_refresh(
        self, age_s: float, temperature_k: float = 300.0
    ) -> bool:
        """Reprogram every tile if retention drift exceeds its budget.

        The scheduled-maintenance half of fault management: drift is
        deterministic aging, not a cell failure, so the fix is a plain
        refresh write (again fully charged).  Returns True if refreshed.
        """
        first_bank = self.acc.pes[0].bank if self.acc.pes else None
        step = first_bank.weight_step if first_bank is not None else 2.0 / 254.0
        health = self.detector.check_drift(
            age_s, temperature_k, weight_step=step
        )
        if not health.needs_refresh:
            return False
        for layer in self.acc.layers:
            for tile_index in range(len(layer.tiles)):
                self.acc.reprogram_tile(layer.index, tile_index)
        self.log.refreshes += 1
        return True
