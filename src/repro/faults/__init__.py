"""Runtime fault management: detection, spare-ring repair, tile remapping.

PCM cells wear out: after enough SET/RESET cycles a cell stops switching
and holds one level forever (the stuck-at model in
:meth:`repro.arch.WeightBank.inject_stuck_faults`).  A deployed edge
accelerator cannot ship every bank back to the fab, so it must *detect*
failing cells online, *repair* around them, and *degrade gracefully* when
repair runs out of resources.  This package provides that loop:

- :mod:`repro.faults.detector` — online fault inference from the only
  signal the hardware actually exposes: the program-and-verify readback
  (non-converged cells) plus the drift/retention clock.  No oracle access
  to the stuck mask.
- :mod:`repro.faults.repair` — the repair policy ladder (retry with an
  escalated pulse budget, spare-ring row remapping, whole-tile migration
  to a healthy PE), every action charged through the normal event
  accounting — repairs are never free.
- :mod:`repro.faults.campaign` — the fault-injection campaign engine
  behind ``python -m repro faults``: sweeps stuck-cell fraction x repair
  policy, measuring inference accuracy, in-situ-training survival,
  repair overhead, and batched/per-sample execution parity.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignRow,
    resume_campaign,
    run_campaign,
)
from repro.faults.detector import BankFaultMap, DriftHealth, FaultDetector
from repro.faults.repair import FaultManager, RepairConfig, RepairLog, RepairPolicy

__all__ = [
    "BankFaultMap",
    "CampaignConfig",
    "CampaignReport",
    "CampaignRow",
    "DriftHealth",
    "FaultDetector",
    "FaultManager",
    "RepairConfig",
    "RepairLog",
    "RepairPolicy",
    "resume_campaign",
    "run_campaign",
]
