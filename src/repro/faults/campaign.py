"""Fault-injection campaign: accuracy vs stuck-cell rate x repair policy.

The graceful-degradation question for a deployed edge accelerator: as PCM
cells wear out, how fast does inference accuracy fall, how much of the
loss does each repair tier claw back, and what do the repairs cost in
write energy/latency?  The campaign answers it end to end:

1. Train a digital reference classifier once (the weights a fab would
   ship).
2. For every (stuck fraction, repair policy, trial): build a seeded
   accelerator with program-verify enabled and spare ring rows, inject
   stuck-at faults, deploy through a
   :class:`~repro.faults.repair.FaultManager`, and measure test accuracy.
3. Spot-check execution parity: batched and per-sample forward passes
   must agree on outputs and event counters even with faults and
   remapped rows active.
4. Verify in-situ training still runs on the repaired hardware (losses
   stay finite; a repair sweep between steps keeps the banks healthy).
5. Charge every repair through the event accounting and report the
   deploy-time energy/time overhead versus the no-repair policy.

Determinism: one ``numpy.random.Generator`` per run, seeded from
``(seed, fraction, trial)``, shared by the verify writer and fault
injection — identical configs reproduce bit-identical campaigns.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.arch.accelerator import TridentAccelerator
from repro.arch.config import TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import ConfigError, WriteConvergenceWarning
from repro.eval.formatting import format_table
from repro.faults.detector import FaultDetector
from repro.faults.repair import FaultManager, RepairConfig, RepairPolicy
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP
from repro.training.insitu import InSituTrainer


@dataclass(frozen=True)
class CampaignConfig:
    """Sweep definition for one fault campaign."""

    dims: tuple[int, ...] = (10, 14, 3)
    fault_fractions: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)
    policies: tuple[str, ...] = ("none", "retry", "spare", "remap")
    trials: int = 3
    seed: int = 0
    #: Stuck level 254 = weight +1: the damaging corner (a mid-grid stuck
    #: cell is nearly harmless — it reads as weight 0).
    stuck_level: int = 254
    #: Spare ring rows per bank.  8 covers the expected worn-row count of
    #: a 14-row block at ~10% cell faults.
    spare_rows: int = 8
    #: Reference-classifier training epochs (digital, done once).
    reference_epochs: int = 8
    #: In-situ training-survival steps per run (0 disables).
    train_batches: int = 2
    train_lr: float = 0.2
    #: Samples for the batched-vs-per-sample parity spot check.
    parity_samples: int = 8
    n_samples: int = 300

    def __post_init__(self) -> None:
        if len(self.dims) < 2 or any(d < 1 for d in self.dims):
            raise ConfigError(f"dims must be >= 2 positive widths, got {self.dims}")
        if not self.fault_fractions:
            raise ConfigError("need at least one fault fraction")
        if any(not 0.0 <= f <= 1.0 for f in self.fault_fractions):
            raise ConfigError("fault fractions must lie in [0, 1]")
        if not self.policies:
            raise ConfigError("need at least one policy")
        object.__setattr__(
            self,
            "policies",
            tuple(RepairPolicy.parse(p).value for p in self.policies),
        )
        if self.trials < 1:
            raise ConfigError(f"trials must be >= 1, got {self.trials}")
        if self.train_batches < 0:
            raise ConfigError("train_batches must be non-negative")
        if self.parity_samples < 1:
            raise ConfigError("parity_samples must be >= 1")

    @classmethod
    def smoke(cls) -> "CampaignConfig":
        """CI-sized campaign: two fractions, two policies, one trial."""
        return cls(
            fault_fractions=(0.0, 0.08),
            policies=("none", "spare"),
            trials=1,
            train_batches=1,
        )


@dataclass
class CampaignRow:
    """One (fraction, policy, trial) measurement."""

    fraction: float
    policy: str
    trial: int
    accuracy: float
    n_stuck: int
    cells_flagged: int
    retries: int
    row_remaps: int
    migrations: int
    tiles_unrepaired: int
    deploy_energy_j: float
    deploy_time_s: float
    train_loss_first: float
    train_loss_last: float
    parity_ok: bool

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (stable key order) for exports."""
        return {
            "fraction": self.fraction,
            "policy": self.policy,
            "trial": self.trial,
            "accuracy": self.accuracy,
            "n_stuck": self.n_stuck,
            "cells_flagged": self.cells_flagged,
            "retries": self.retries,
            "row_remaps": self.row_remaps,
            "migrations": self.migrations,
            "tiles_unrepaired": self.tiles_unrepaired,
            "deploy_energy_j": self.deploy_energy_j,
            "deploy_time_s": self.deploy_time_s,
            "train_loss_first": self.train_loss_first,
            "train_loss_last": self.train_loss_last,
            "parity_ok": self.parity_ok,
        }


@dataclass
class CampaignReport:
    """Aggregated campaign results."""

    config: CampaignConfig
    clean_accuracy: float
    rows: list[CampaignRow] = field(default_factory=list)

    # ------------------------------------------------------------------
    def mean_accuracy(self, fraction: float, policy: str) -> float:
        """Trial-mean accuracy for one sweep cell."""
        accs = [
            r.accuracy
            for r in self.rows
            if r.fraction == fraction and r.policy == policy
        ]
        if not accs:
            raise ConfigError(f"no rows for fraction={fraction}, policy={policy}")
        return float(np.mean(accs))

    def recovery(self, fraction: float, policy: str) -> float:
        """Fraction of the no-repair accuracy loss this policy recovers.

        1.0 = back to clean accuracy, 0.0 = no better than no repair.
        Undefined (returns 1.0) when no-repair loses nothing.
        """
        lost = self.clean_accuracy - self.mean_accuracy(fraction, "none")
        if lost <= 1e-12:
            return 1.0
        regained = self.mean_accuracy(fraction, policy) - self.mean_accuracy(
            fraction, "none"
        )
        return float(regained / lost)

    def repair_overhead(self, fraction: float, policy: str) -> tuple[float, float]:
        """(extra energy J, extra time s) at deploy vs the none policy."""
        def mean(attr: str, pol: str) -> float:
            vals = [
                getattr(r, attr)
                for r in self.rows
                if r.fraction == fraction and r.policy == pol
            ]
            return float(np.mean(vals)) if vals else 0.0

        return (
            mean("deploy_energy_j", policy) - mean("deploy_energy_j", "none"),
            mean("deploy_time_s", policy) - mean("deploy_time_s", "none"),
        )

    @property
    def parity_ok(self) -> bool:
        """True when every run's batched/per-sample spot check agreed."""
        return all(r.parity_ok for r in self.rows)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII summary: accuracy/recovery/overhead per sweep cell."""
        has_none = "none" in self.config.policies
        table_rows = []
        for fraction in self.config.fault_fractions:
            for policy in self.config.policies:
                acc = self.mean_accuracy(fraction, policy)
                rec = self.recovery(fraction, policy) if has_none else float("nan")
                energy, time_s = (
                    self.repair_overhead(fraction, policy)
                    if has_none
                    else (float("nan"), float("nan"))
                )
                sub = [
                    r
                    for r in self.rows
                    if r.fraction == fraction and r.policy == policy
                ]
                table_rows.append(
                    [
                        fraction * 100,
                        policy,
                        acc,
                        rec,
                        int(np.mean([r.row_remaps for r in sub])),
                        int(np.mean([r.migrations for r in sub])),
                        energy * 1e6,
                        time_s * 1e6,
                    ]
                )
        text = format_table(
            [
                "stuck (%)",
                "policy",
                "accuracy",
                "recovery",
                "remaps",
                "migr",
                "repair energy (uJ)",
                "repair time (us)",
            ],
            table_rows,
            title=(
                f"Fault campaign: dims={list(self.config.dims)}, "
                f"{self.config.trials} trial(s), clean accuracy "
                f"{self.clean_accuracy:.3f}"
            ),
        )
        text += f"\n\nbatched/per-sample parity: {'OK' if self.parity_ok else 'VIOLATED'}"
        return text


# ---------------------------------------------------------------------------
def _reference_weights(config: CampaignConfig) -> tuple[list[np.ndarray], Dataset]:
    """Train the digital reference classifier; return (weights, test set)."""
    data = make_blobs(
        n_samples=config.n_samples,
        n_features=config.dims[0],
        n_classes=config.dims[-1],
        spread=1.2,
        seed=config.seed + 5,
    )
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    train, test = data.split(0.8, seed=1)
    mlp = DigitalMLP(list(config.dims), activation="gst", seed=7)
    for epoch in range(config.reference_epochs):
        for xb, yb in train.batches(16, seed=epoch):
            mlp.train_step(xb, yb, lr=0.4)
    return [w.copy() for w in mlp.weights], test


def _build_accelerator(config: CampaignConfig, seed: int) -> TridentAccelerator:
    arch = TridentConfig(
        spare_rows=config.spare_rows,
        # Stuck cells push whole-tile convergence below the default floor
        # by design; the campaign reports fault metrics itself, so the
        # warning would be noise here.
        convergence_floor=0.0,
    )
    acc = TridentAccelerator(
        config=arch, seed=seed, program_verify=ProgramVerifyConfig()
    )
    acc.map_mlp(list(config.dims))
    return acc


def _check_parity(acc: TridentAccelerator, xs: np.ndarray) -> bool:
    """Batched vs per-sample forward: outputs + event counters must agree."""
    before = acc.counters.snapshot()
    out_batch = acc.forward_batch(xs)
    batch_delta = acc.counters.diff(before).as_dict()
    before = acc.counters.snapshot()
    out_sample = np.stack([acc.forward(x) for x in xs])
    sample_delta = acc.counters.diff(before).as_dict()
    return bool(np.allclose(out_batch, out_sample)) and batch_delta == sample_delta


def _training_survives(
    acc: TridentAccelerator,
    manager: FaultManager,
    test: Dataset,
    config: CampaignConfig,
) -> tuple[float, float]:
    """Run a few in-situ steps with repair sweeps between them.

    Returns (first loss, last loss); NaN/inf losses mean training died.
    """
    if config.train_batches == 0:
        return (float("nan"), float("nan"))
    trainer = InSituTrainer(acc, lr=config.train_lr)
    first = last = float("nan")
    for step, (xb, yb) in enumerate(
        test.batches(16, seed=config.seed + 11)
    ):
        if step >= config.train_batches:
            break
        loss = trainer.train_step(xb, yb)
        # The update reprogram re-screened every tile; sweep repairs so
        # newly crossed thresholds never linger into the next step.
        manager.repair()
        if step == 0:
            first = loss
        last = loss
    return (float(first), float(last))


def run_campaign(config: CampaignConfig | None = None) -> CampaignReport:
    """Execute the full sweep; returns the populated report."""
    config = config or CampaignConfig()
    weights, test = _reference_weights(config)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", WriteConvergenceWarning)
        # Clean (fault-free) reference accuracy on the photonic hardware.
        clean_acc = _build_accelerator(config, seed=config.seed)
        clean_acc.set_weights([w.copy() for w in weights])
        clean = float(
            np.mean(
                np.argmax(clean_acc.forward_batch(test.x), axis=1) == test.y
            )
        )
        report = CampaignReport(config=config, clean_accuracy=clean)

        for f_index, fraction in enumerate(config.fault_fractions):
            for policy in config.policies:
                for trial in range(config.trials):
                    # Same (fraction, trial) seed across policies: every
                    # policy faces the identical fault pattern and noise
                    # stream, so policy deltas are paired comparisons.
                    seed = config.seed + 1000 * f_index + trial
                    acc = _build_accelerator(config, seed=seed)
                    n_stuck = acc.inject_stuck_faults(
                        fraction, stuck_level=config.stuck_level
                    )
                    detector = FaultDetector().attach(acc)
                    manager = FaultManager(
                        acc,
                        detector=detector,
                        config=RepairConfig(policy=policy),
                    )
                    log = manager.deploy([w.copy() for w in weights])
                    deploy_energy = acc.energy_estimate_j()
                    deploy_time = acc.time_estimate_s()
                    pred = np.argmax(acc.forward_batch(test.x), axis=1)
                    accuracy = float(np.mean(pred == test.y))
                    parity = _check_parity(
                        acc, test.x[: config.parity_samples]
                    )
                    first, last = _training_survives(
                        acc, manager, test, config
                    )
                    report.rows.append(
                        CampaignRow(
                            fraction=fraction,
                            policy=policy,
                            trial=trial,
                            accuracy=accuracy,
                            n_stuck=n_stuck,
                            cells_flagged=detector.total_flagged,
                            retries=log.retries,
                            row_remaps=log.row_remaps,
                            migrations=log.migrations,
                            tiles_unrepaired=log.tiles_unrepaired,
                            deploy_energy_j=deploy_energy,
                            deploy_time_s=deploy_time,
                            train_loss_first=first,
                            train_loss_last=last,
                            parity_ok=parity,
                        )
                    )
    return report
