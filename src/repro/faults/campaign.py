"""Fault-injection campaign: accuracy vs stuck-cell rate x repair policy.

The graceful-degradation question for a deployed edge accelerator: as PCM
cells wear out, how fast does inference accuracy fall, how much of the
loss does each repair tier claw back, and what do the repairs cost in
write energy/latency?  The campaign answers it end to end:

1. Train a digital reference classifier once (the weights a fab would
   ship).
2. For every (stuck fraction, repair policy, trial): build a seeded
   accelerator with program-verify enabled and spare ring rows, inject
   stuck-at faults, deploy through a
   :class:`~repro.faults.repair.FaultManager`, and measure test accuracy.
3. Spot-check execution parity: batched and per-sample forward passes
   must agree on outputs and event counters even with faults and
   remapped rows active.
4. Verify in-situ training still runs on the repaired hardware (losses
   stay finite; a repair sweep between steps keeps the banks healthy).
5. Charge every repair through the event accounting and report the
   deploy-time energy/time overhead versus the no-repair policy.

Determinism: one ``numpy.random.Generator`` per run, seeded from
``(seed, fraction, trial)``, shared by the verify writer and fault
injection — identical configs reproduce bit-identical campaigns.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.arch.accelerator import TridentAccelerator
from repro.arch.config import TridentConfig
from repro.devices.program_verify import ProgramVerifyConfig
from repro.errors import (
    CheckpointError,
    ConfigError,
    FaultError,
    WriteConvergenceWarning,
)
from repro.eval.formatting import format_table
from repro.faults.detector import FaultDetector
from repro.faults.repair import FaultManager, RepairConfig, RepairPolicy
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP
from repro.runtime.checkpoint import state_digest
from repro.telemetry.log import get_logger
from repro.telemetry.session import (
    counter as _metric_counter,
    gauge as _metric_gauge,
    trace_span as _trace_span,
)
from repro.training.insitu import InSituTrainer

_log = get_logger("repro.faults.campaign")


@dataclass(frozen=True)
class CampaignConfig:
    """Sweep definition for one fault campaign."""

    dims: tuple[int, ...] = (10, 14, 3)
    fault_fractions: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)
    policies: tuple[str, ...] = ("none", "retry", "spare", "remap")
    trials: int = 3
    seed: int = 0
    #: Stuck level 254 = weight +1: the damaging corner (a mid-grid stuck
    #: cell is nearly harmless — it reads as weight 0).
    stuck_level: int = 254
    #: Spare ring rows per bank.  8 covers the expected worn-row count of
    #: a 14-row block at ~10% cell faults.
    spare_rows: int = 8
    #: Reference-classifier training epochs (digital, done once).
    reference_epochs: int = 8
    #: In-situ training-survival steps per run (0 disables).
    train_batches: int = 2
    train_lr: float = 0.2
    #: Samples for the batched-vs-per-sample parity spot check.
    parity_samples: int = 8
    n_samples: int = 300

    def __post_init__(self) -> None:
        # Structural problems (malformed sweep shape, unknown policy name)
        # stay ConfigError; numeric ranges raise FaultError so a campaign
        # driver can distinguish "you typo'd the sweep" from "this sweep
        # cannot physically run".
        if len(self.dims) < 2 or any(d < 1 for d in self.dims):
            raise ConfigError(f"dims must be >= 2 positive widths, got {self.dims}")
        if not self.fault_fractions:
            raise FaultError(
                "need at least one fault fraction (got an empty sweep)"
            )
        bad = [f for f in self.fault_fractions if not 0.0 <= f <= 1.0]
        if bad:
            raise FaultError(
                f"fault fractions must lie in [0, 1]; out of range: {bad}"
            )
        if not self.policies:
            raise ConfigError("need at least one policy")
        object.__setattr__(
            self,
            "policies",
            tuple(RepairPolicy.parse(p).value for p in self.policies),
        )
        if self.trials < 1:
            raise FaultError(
                f"trials must be >= 1, got {self.trials} "
                "(a sweep cell with no trials measures nothing)"
            )
        if not 0 <= self.stuck_level <= 255:
            raise FaultError(
                f"stuck_level must be a level code in [0, 255], got "
                f"{self.stuck_level}"
            )
        if self.spare_rows < 0:
            raise FaultError(
                f"spare_rows must be non-negative, got {self.spare_rows}"
            )
        if self.reference_epochs < 1:
            raise FaultError(
                f"reference_epochs must be >= 1, got {self.reference_epochs}"
            )
        if self.train_batches < 0:
            raise FaultError(
                f"train_batches must be non-negative, got {self.train_batches} "
                "(use 0 to skip the training-survival check)"
            )
        if self.train_lr <= 0:
            raise FaultError(
                f"train_lr must be positive, got {self.train_lr}"
            )
        if self.parity_samples < 1:
            raise FaultError(
                f"parity_samples must be >= 1, got {self.parity_samples}"
            )
        if self.n_samples < 10:
            raise FaultError(
                f"n_samples must be >= 10 to split train/test, got "
                f"{self.n_samples}"
            )

    @classmethod
    def smoke(cls) -> "CampaignConfig":
        """CI-sized campaign: two fractions, two policies, one trial."""
        return cls(
            fault_fractions=(0.0, 0.08),
            policies=("none", "spare"),
            trials=1,
            train_batches=1,
        )


@dataclass
class CampaignRow:
    """One (fraction, policy, trial) measurement."""

    fraction: float
    policy: str
    trial: int
    accuracy: float
    n_stuck: int
    cells_flagged: int
    retries: int
    row_remaps: int
    migrations: int
    tiles_unrepaired: int
    deploy_energy_j: float
    deploy_time_s: float
    train_loss_first: float
    train_loss_last: float
    parity_ok: bool
    #: Step index whose loss first went non-finite during the in-situ
    #: training-survival check; None when training survived every step.
    train_died_at_step: int | None = None

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (stable key order) for exports."""
        return {
            "fraction": self.fraction,
            "policy": self.policy,
            "trial": self.trial,
            "accuracy": self.accuracy,
            "n_stuck": self.n_stuck,
            "cells_flagged": self.cells_flagged,
            "retries": self.retries,
            "row_remaps": self.row_remaps,
            "migrations": self.migrations,
            "tiles_unrepaired": self.tiles_unrepaired,
            "deploy_energy_j": self.deploy_energy_j,
            "deploy_time_s": self.deploy_time_s,
            "train_loss_first": self.train_loss_first,
            "train_loss_last": self.train_loss_last,
            "parity_ok": self.parity_ok,
            "train_died_at_step": self.train_died_at_step,
        }


@dataclass
class CampaignReport:
    """Aggregated campaign results."""

    config: CampaignConfig
    clean_accuracy: float
    rows: list[CampaignRow] = field(default_factory=list)
    #: False when the sweep halted early (``max_cells`` budget) and some
    #: cells are still missing — resume with the same checkpoint dir.
    complete: bool = True

    # ------------------------------------------------------------------
    def mean_accuracy(self, fraction: float, policy: str) -> float:
        """Trial-mean accuracy for one sweep cell."""
        accs = [
            r.accuracy
            for r in self.rows
            if r.fraction == fraction and r.policy == policy
        ]
        if not accs:
            raise ConfigError(f"no rows for fraction={fraction}, policy={policy}")
        return float(np.mean(accs))

    def recovery(self, fraction: float, policy: str) -> float:
        """Fraction of the no-repair accuracy loss this policy recovers.

        1.0 = back to clean accuracy, 0.0 = no better than no repair.
        Undefined (returns 1.0) when no-repair loses nothing.
        """
        lost = self.clean_accuracy - self.mean_accuracy(fraction, "none")
        if lost <= 1e-12:
            return 1.0
        regained = self.mean_accuracy(fraction, policy) - self.mean_accuracy(
            fraction, "none"
        )
        return float(regained / lost)

    def repair_overhead(self, fraction: float, policy: str) -> tuple[float, float]:
        """(extra energy J, extra time s) at deploy vs the none policy."""
        def mean(attr: str, pol: str) -> float:
            vals = [
                getattr(r, attr)
                for r in self.rows
                if r.fraction == fraction and r.policy == pol
            ]
            return float(np.mean(vals)) if vals else 0.0

        return (
            mean("deploy_energy_j", policy) - mean("deploy_energy_j", "none"),
            mean("deploy_time_s", policy) - mean("deploy_time_s", "none"),
        )

    @property
    def parity_ok(self) -> bool:
        """True when every run's batched/per-sample spot check agreed."""
        return all(r.parity_ok for r in self.rows)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII summary: accuracy/recovery/overhead per sweep cell."""
        has_none = "none" in self.config.policies
        table_rows = []
        for fraction in self.config.fault_fractions:
            for policy in self.config.policies:
                sub = [
                    r
                    for r in self.rows
                    if r.fraction == fraction and r.policy == policy
                ]
                if not sub:
                    # Partial (halted) report: cells never reached.
                    continue
                acc = self.mean_accuracy(fraction, policy)
                try:
                    rec = (
                        self.recovery(fraction, policy)
                        if has_none
                        else float("nan")
                    )
                except ConfigError:
                    rec = float("nan")
                energy, time_s = (
                    self.repair_overhead(fraction, policy)
                    if has_none
                    else (float("nan"), float("nan"))
                )
                table_rows.append(
                    [
                        fraction * 100,
                        policy,
                        acc,
                        rec,
                        int(np.mean([r.row_remaps for r in sub])),
                        int(np.mean([r.migrations for r in sub])),
                        energy * 1e6,
                        time_s * 1e6,
                    ]
                )
        text = format_table(
            [
                "stuck (%)",
                "policy",
                "accuracy",
                "recovery",
                "remaps",
                "migr",
                "repair energy (uJ)",
                "repair time (us)",
            ],
            table_rows,
            title=(
                f"Fault campaign: dims={list(self.config.dims)}, "
                f"{self.config.trials} trial(s), clean accuracy "
                f"{self.clean_accuracy:.3f}"
            ),
        )
        text += f"\n\nbatched/per-sample parity: {'OK' if self.parity_ok else 'VIOLATED'}"
        if not self.complete:
            text += (
                "\nNOTE: campaign halted before completing every cell — "
                "resume with the same checkpoint directory."
            )
        return text


# ---------------------------------------------------------------------------
def _reference_weights(config: CampaignConfig) -> tuple[list[np.ndarray], Dataset]:
    """Train the digital reference classifier; return (weights, test set)."""
    data = make_blobs(
        n_samples=config.n_samples,
        n_features=config.dims[0],
        n_classes=config.dims[-1],
        spread=1.2,
        seed=config.seed + 5,
    )
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    train, test = data.split(0.8, seed=1)
    mlp = DigitalMLP(list(config.dims), activation="gst", seed=7)
    for epoch in range(config.reference_epochs):
        for xb, yb in train.batches(16, seed=epoch):
            mlp.train_step(xb, yb, lr=0.4)
    return [w.copy() for w in mlp.weights], test


def _build_accelerator(config: CampaignConfig, seed: int) -> TridentAccelerator:
    arch = TridentConfig(
        spare_rows=config.spare_rows,
        # Stuck cells push whole-tile convergence below the default floor
        # by design; the campaign reports fault metrics itself, so the
        # warning would be noise here.
        convergence_floor=0.0,
    )
    acc = TridentAccelerator(
        config=arch, seed=seed, program_verify=ProgramVerifyConfig()
    )
    acc.map_mlp(list(config.dims))
    return acc


def _check_parity(acc: TridentAccelerator, xs: np.ndarray) -> bool:
    """Batched vs per-sample forward: outputs + event counters must agree."""
    before = acc.counters.snapshot()
    out_batch = acc.forward_batch(xs)
    batch_delta = acc.counters.diff(before).as_dict()
    before = acc.counters.snapshot()
    out_sample = np.stack([acc.forward(x) for x in xs])
    sample_delta = acc.counters.diff(before).as_dict()
    return bool(np.allclose(out_batch, out_sample)) and batch_delta == sample_delta


def _training_survives(
    acc: TridentAccelerator,
    manager: FaultManager,
    test: Dataset,
    config: CampaignConfig,
) -> tuple[float, float, int | None]:
    """Run a few in-situ steps with repair sweeps between them.

    Returns (first loss, last loss, died_at_step).  The loop aborts at
    the *first* non-finite loss — once training has diverged, every
    subsequent step trains on garbage weights and its losses are
    meaningless — and reports the step it died at (None if it survived).
    """
    if config.train_batches == 0:
        return (float("nan"), float("nan"), None)
    trainer = InSituTrainer(acc, lr=config.train_lr)
    first = last = float("nan")
    died_at: int | None = None
    for step, (xb, yb) in enumerate(
        test.batches(16, seed=config.seed + 11)
    ):
        if step >= config.train_batches:
            break
        loss = float(trainer.train_step(xb, yb))
        if step == 0:
            first = loss
        last = loss
        if not np.isfinite(loss):
            died_at = step
            break
        # The update reprogram re-screened every tile; sweep repairs so
        # newly crossed thresholds never linger into the next step.
        manager.repair()
    return (first, last, died_at)


# ---------------------------------------------------------------------------
# Resumable campaigns
# ---------------------------------------------------------------------------
_LEDGER_MAGIC = "trident-campaign"
_LEDGER_SCHEMA = 1
_LEDGER_FILE = "campaign_cells.jsonl"


def _config_as_doc(config: CampaignConfig) -> dict:
    """JSON-shaped view of a config (tuples become lists)."""
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in asdict(config).items()
    }


class _CampaignLedger:
    """Append-only JSONL record of completed sweep cells.

    Line 1 is a header binding the ledger to one exact
    :class:`CampaignConfig` (and the clean-hardware accuracy, as an
    environment-drift tripwire); every later line is one finished
    (fraction, policy, trial) row with a content hash.  Each append is
    flushed and fsynced, so a crash can lose at most the line being
    written — and a torn trailing line fails its hash check and is
    ignored on reload.  Because every cell's RNG seed is derived
    independently (``seed + 1000 * f_index + trial``), skipping completed
    cells on resume reproduces the uninterrupted sweep bit-identically.
    """

    def __init__(self, directory: str | Path, config: CampaignConfig) -> None:
        self.path = Path(directory) / _LEDGER_FILE
        self.config_doc = _config_as_doc(config)
        self.clean_accuracy: float | None = None
        #: (fraction, policy, trial) -> finished CampaignRow.
        self.completed: dict[tuple[float, str, int], CampaignRow] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return
        header = _parse_json_line(lines[0])
        if (
            header is None
            or header.get("magic") != _LEDGER_MAGIC
            or header.get("schema") != _LEDGER_SCHEMA
        ):
            raise CheckpointError(f"{self.path} is not a campaign ledger")
        if header.get("config") != self.config_doc:
            raise CheckpointError(
                f"campaign ledger {self.path} was written by a different "
                "sweep config; use a fresh checkpoint directory or the "
                "original config"
            )
        self.clean_accuracy = float(header["clean_accuracy"])
        for lineno, line in enumerate(lines[1:], start=2):
            doc = _parse_json_line(line)
            if (
                doc is None
                or "row" not in doc
                or doc.get("sha256") != state_digest(doc["row"])
            ):
                warnings.warn(
                    f"{self.path}:{lineno}: corrupt or torn ledger line "
                    "ignored (that cell will be re-run)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            row = CampaignRow(**doc["row"])
            self.completed[(row.fraction, row.policy, row.trial)] = row

    def begin(self, clean_accuracy: float) -> None:
        """Write the header on first use; cross-check it on resume."""
        if self.clean_accuracy is None:
            self._append(
                {
                    "magic": _LEDGER_MAGIC,
                    "schema": _LEDGER_SCHEMA,
                    "config": self.config_doc,
                    "clean_accuracy": clean_accuracy,
                }
            )
            self.clean_accuracy = clean_accuracy
        elif self.clean_accuracy != clean_accuracy:
            raise CheckpointError(
                f"clean accuracy drifted between runs: ledger has "
                f"{self.clean_accuracy}, this environment computed "
                f"{clean_accuracy} — results would not be comparable"
            )

    def record(self, row: CampaignRow) -> None:
        """Persist one finished cell (flushed + fsynced before returning)."""
        doc = row.as_dict()
        self._append({"row": doc, "sha256": state_digest(doc)})
        self.completed[(row.fraction, row.policy, row.trial)] = row

    def _append(self, doc: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())


def _parse_json_line(line: str) -> dict | None:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return None
    return doc if isinstance(doc, dict) else None


def run_campaign(
    config: CampaignConfig | None = None,
    checkpoint_dir: str | Path | None = None,
    max_cells: int | None = None,
) -> CampaignReport:
    """Execute the full sweep; returns the populated report.

    With ``checkpoint_dir`` every finished (fraction, policy, trial) cell
    is persisted incrementally to a crash-safe ledger, and a restart with
    the same directory and config skips completed cells — producing a
    report bit-identical to an uninterrupted run (per-cell RNG seeds are
    independent).  ``max_cells`` caps the number of cells *executed* by
    this invocation (completed cells loaded from the ledger are free);
    when the cap halts the sweep early the report has
    ``complete=False``.
    """
    config = config or CampaignConfig()
    if max_cells is not None and max_cells < 0:
        raise FaultError(f"max_cells must be non-negative, got {max_cells}")
    ledger = (
        _CampaignLedger(checkpoint_dir, config)
        if checkpoint_dir is not None
        else None
    )
    weights, test = _reference_weights(config)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", WriteConvergenceWarning)
        # Clean (fault-free) reference accuracy on the photonic hardware.
        clean_acc = _build_accelerator(config, seed=config.seed)
        clean_acc.set_weights([w.copy() for w in weights])
        clean = float(
            np.mean(
                np.argmax(clean_acc.forward_batch(test.x), axis=1) == test.y
            )
        )
        if ledger is not None:
            ledger.begin(clean)
        report = CampaignReport(config=config, clean_accuracy=clean)

        executed = 0
        total_cells = (
            len(config.fault_fractions) * len(config.policies) * config.trials
        )
        cells_done = 0
        for f_index, fraction in enumerate(config.fault_fractions):
            for policy in config.policies:
                for trial in range(config.trials):
                    if ledger is not None:
                        done = ledger.completed.get((fraction, policy, trial))
                        if done is not None:
                            report.rows.append(done)
                            cells_done += 1
                            continue
                    if max_cells is not None and executed >= max_cells:
                        report.complete = False
                        _log.info(
                            "campaign halted by max_cells after %d executed "
                            "cells (%d/%d complete)",
                            executed, cells_done, total_cells,
                        )
                        return report
                    # Same (fraction, trial) seed across policies: every
                    # policy faces the identical fault pattern and noise
                    # stream, so policy deltas are paired comparisons.
                    seed = config.seed + 1000 * f_index + trial
                    _log.debug(
                        "campaign cell: fraction=%g policy=%s trial=%d",
                        fraction, policy, trial,
                    )
                    with _trace_span(
                        "campaign_cell",
                        fraction=fraction,
                        policy=policy,
                        trial=trial,
                    ):
                        acc = _build_accelerator(config, seed=seed)
                        n_stuck = acc.inject_stuck_faults(
                            fraction, stuck_level=config.stuck_level
                        )
                        detector = FaultDetector().attach(acc)
                        manager = FaultManager(
                            acc,
                            detector=detector,
                            config=RepairConfig(policy=policy),
                        )
                        log = manager.deploy([w.copy() for w in weights])
                        deploy_energy = acc.energy_estimate_j()
                        deploy_time = acc.time_estimate_s()
                        pred = np.argmax(acc.forward_batch(test.x), axis=1)
                        accuracy = float(np.mean(pred == test.y))
                        parity = _check_parity(
                            acc, test.x[: config.parity_samples]
                        )
                        first, last, died_at = _training_survives(
                            acc, manager, test, config
                        )
                    row = CampaignRow(
                        fraction=fraction,
                        policy=policy,
                        trial=trial,
                        accuracy=accuracy,
                        n_stuck=n_stuck,
                        cells_flagged=detector.total_flagged,
                        retries=log.retries,
                        row_remaps=log.row_remaps,
                        migrations=log.migrations,
                        tiles_unrepaired=log.tiles_unrepaired,
                        deploy_energy_j=deploy_energy,
                        deploy_time_s=deploy_time,
                        train_loss_first=first,
                        train_loss_last=last,
                        parity_ok=parity,
                        train_died_at_step=died_at,
                    )
                    if ledger is not None:
                        ledger.record(row)
                    report.rows.append(row)
                    executed += 1
                    cells_done += 1
                    _metric_counter("repro_campaign_cells_total").inc()
                    _metric_gauge("repro_campaign_progress_ratio").set(
                        cells_done / total_cells
                    )
                    _log.info(
                        "campaign %d/%d: fraction=%g policy=%s trial=%d "
                        "accuracy=%.3f",
                        cells_done, total_cells, fraction, policy, trial,
                        accuracy,
                    )
    return report


def resume_campaign(checkpoint_dir: str | Path) -> CampaignReport:
    """Continue an interrupted campaign from its ledger alone.

    Reconstructs the :class:`CampaignConfig` from the ledger header, so
    the caller needs nothing but the checkpoint directory.
    """
    path = Path(checkpoint_dir) / _LEDGER_FILE
    if not path.exists():
        raise CheckpointError(f"no campaign ledger at {path}")
    lines = path.read_text(encoding="utf-8").splitlines()
    header = _parse_json_line(lines[0]) if lines else None
    if (
        header is None
        or header.get("magic") != _LEDGER_MAGIC
        or not isinstance(header.get("config"), dict)
    ):
        raise CheckpointError(f"{path} has no readable campaign header")
    config = CampaignConfig(
        **{
            key: tuple(value) if isinstance(value, list) else value
            for key, value in header["config"].items()
        }
    )
    return run_campaign(config, checkpoint_dir=checkpoint_dir)
