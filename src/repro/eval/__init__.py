"""Experiment harness: regenerate every table and figure of the paper.

- :mod:`repro.eval.formatting` — ASCII table rendering.
- :mod:`repro.eval.experiments` — the paper's published numbers and
  paper-vs-measured comparison records.
- :mod:`repro.eval.tables` — Table I-V generators.
- :mod:`repro.eval.figures` — Fig 3-6 data-series generators.
"""

from repro.eval.experiments import ExperimentResult, PaperTargets, compare
from repro.eval.figures import (
    fig3_activation_transfer,
    fig4_photonic_energy,
    fig5_area_breakdown,
    fig6_inferences_per_second,
)
from repro.eval.formatting import format_table
from repro.eval.tables import table1_tuning, table2_mapping_check, table3_power, table4_tops, table5_training

__all__ = [
    "compare",
    "ExperimentResult",
    "fig3_activation_transfer",
    "fig4_photonic_energy",
    "fig5_area_breakdown",
    "fig6_inferences_per_second",
    "format_table",
    "PaperTargets",
    "table1_tuning",
    "table2_mapping_check",
    "table3_power",
    "table4_tops",
    "table5_training",
]
