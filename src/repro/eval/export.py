"""Export every regenerated table/figure as CSV artifacts.

For downstream plotting or spreadsheet analysis: ``export_all(directory)``
writes one CSV per table/figure plus the consolidated paper-vs-measured
summary.  Exposed on the CLI as ``python -m repro export --dir out/``.
Fault-campaign results (``python -m repro faults``) export through
:func:`export_fault_campaign` as CSV + JSON.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.errors import ConfigError
from repro.eval.figures import (
    fig3_activation_transfer,
    fig4_photonic_energy,
    fig5_area_breakdown,
    fig6_inferences_per_second,
)
from repro.eval.summary import ReproductionSummary
from repro.eval.tables import (
    table1_tuning,
    table2_mapping_check,
    table3_power,
    table4_tops,
    table5_training,
)


def _write_csv(path: Path, headers: list[str], rows: list[list[object]]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def export_all(directory: str | Path) -> list[Path]:
    """Regenerate everything and write CSVs; returns the written paths."""
    out = Path(directory)
    if out.exists() and not out.is_dir():
        raise ConfigError(f"{out} exists and is not a directory")
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    # --- tables ------------------------------------------------------------
    for name, generator in (
        ("table1_tuning", table1_tuning),
        ("table2_mapping", table2_mapping_check),
        ("table3_power", table3_power),
        ("table4_tops", table4_tops),
        ("table5_training", table5_training),
    ):
        report = generator()
        path = out / f"{name}.csv"
        _write_csv(path, [str(h) for h in report.headers], report.rows)
        written.append(path)

    # --- figures ------------------------------------------------------------
    fig3 = fig3_activation_transfer()
    xs = list(fig3.series["input_energy_pj"].values())
    ys = list(fig3.series["output_energy_pj"].values())
    path = out / "fig3_activation.csv"
    _write_csv(path, ["input_pj", "output_pj"], [[x, y] for x, y in zip(xs, ys)])
    written.append(path)

    for name, report in (
        ("fig4_energy_j", fig4_photonic_energy()),
        ("fig6_inferences_per_second", fig6_inferences_per_second()),
    ):
        series_names = list(report.series)
        keys = list(report.series[series_names[0]])
        rows = [
            [key] + [report.series[s][key] for s in series_names] for key in keys
        ]
        path = out / f"{name}.csv"
        _write_csv(path, ["model"] + series_names, rows)
        written.append(path)

    fig5 = fig5_area_breakdown()
    path = out / "fig5_area.csv"
    _write_csv(
        path,
        ["component", "area_mm2", "percentage"],
        [
            [name, fig5.series["area_mm2"][name], fig5.series["percentage"][name]]
            for name in fig5.series["area_mm2"]
        ],
    )
    written.append(path)

    # --- summary ------------------------------------------------------------
    summary = ReproductionSummary.collect()
    path = out / "paper_vs_measured.csv"
    _write_csv(
        path,
        ["experiment", "metric", "paper", "measured", "relative_error", "units"],
        [
            [r.experiment, r.metric, r.paper_value, r.measured_value,
             r.relative_error, r.units]
            for r in summary.results
        ],
    )
    written.append(path)
    return written


def export_fault_campaign(report, directory: str | Path) -> list[Path]:
    """Write a fault campaign's rows as CSV and its summary as JSON.

    The CSV holds one row per (fraction, policy, trial) run; the JSON adds
    the sweep config, clean accuracy, per-cell recovery/overhead
    aggregates, and the parity verdict — everything a plot or a CI gate
    needs without re-running the campaign.
    """
    out = Path(directory)
    if out.exists() and not out.is_dir():
        raise ConfigError(f"{out} exists and is not a directory")
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    row_dicts = [row.as_dict() for row in report.rows]
    csv_path = out / "fault_campaign.csv"
    headers = list(row_dicts[0]) if row_dicts else []
    _write_csv(csv_path, headers, [list(d.values()) for d in row_dicts])
    written.append(csv_path)

    has_none = "none" in report.config.policies
    cells = []
    for fraction in report.config.fault_fractions:
        for policy in report.config.policies:
            cell = {
                "fraction": fraction,
                "policy": policy,
                "mean_accuracy": report.mean_accuracy(fraction, policy),
            }
            if has_none:
                energy, time_s = report.repair_overhead(fraction, policy)
                cell["recovery"] = report.recovery(fraction, policy)
                cell["repair_energy_j"] = energy
                cell["repair_time_s"] = time_s
            cells.append(cell)
    payload = {
        "config": {
            "dims": list(report.config.dims),
            "fault_fractions": list(report.config.fault_fractions),
            "policies": list(report.config.policies),
            "trials": report.config.trials,
            "seed": report.config.seed,
            "stuck_level": report.config.stuck_level,
            "spare_rows": report.config.spare_rows,
        },
        "clean_accuracy": report.clean_accuracy,
        "parity_ok": report.parity_ok,
        "cells": cells,
        "runs": row_dicts,
    }
    json_path = out / "fault_campaign.json"
    with json_path.open("w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    written.append(json_path)
    return written
