"""One-call paper-vs-measured summary across every experiment.

Regenerates all tables and figures, collects their comparison records, and
renders the consolidated report (the source of EXPERIMENTS.md's summary
table).  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiments import ExperimentResult
from repro.eval.figures import (
    fig3_activation_transfer,
    fig4_photonic_energy,
    fig5_area_breakdown,
    fig6_inferences_per_second,
)
from repro.eval.formatting import format_table
from repro.eval.tables import (
    table1_tuning,
    table3_power,
    table4_tops,
    table5_training,
)

#: Experiments whose Trident value is expected to deviate (documented in
#: EXPERIMENTS.md) — excluded from the max-error gate.
KNOWN_DEVIATIONS: frozenset[str] = frozenset(
    {
        ("table5", "mobilenet_v2 trident time"),
        ("table5", "resnet50 trident time"),
    }
)


@dataclass
class ReproductionSummary:
    """All comparison records plus convenience views."""

    results: list[ExperimentResult] = field(default_factory=list)

    @classmethod
    def collect(cls) -> "ReproductionSummary":
        """Run every generator and gather its comparisons."""
        generators = (
            table1_tuning,
            table3_power,
            table4_tops,
            table5_training,
            fig3_activation_transfer,
            fig4_photonic_energy,
            fig5_area_breakdown,
            fig6_inferences_per_second,
        )
        results: list[ExperimentResult] = []
        for generator in generators:
            results.extend(generator().comparisons)
        return cls(results=results)

    # ------------------------------------------------------------------
    def deviations(self) -> list[ExperimentResult]:
        """Documented-deviation rows."""
        return [
            r for r in self.results
            if (r.experiment, r.metric) in KNOWN_DEVIATIONS
        ]

    def gated(self) -> list[ExperimentResult]:
        """Rows subject to the reproduction-accuracy gate."""
        return [
            r for r in self.results
            if (r.experiment, r.metric) not in KNOWN_DEVIATIONS
        ]

    def max_gated_error(self) -> float:
        """Worst relative error outside the documented deviations."""
        gated = self.gated()
        if not gated:
            return 0.0
        return max(r.within for r in gated)

    def render(self) -> str:
        """ASCII summary table, deviations flagged."""
        rows = []
        for r in self.results:
            flag = "DEVIATION" if (r.experiment, r.metric) in KNOWN_DEVIATIONS else ""
            rows.append(
                [
                    r.experiment,
                    r.metric,
                    r.paper_value,
                    r.measured_value,
                    f"{r.relative_error * 100:+.1f}%",
                    flag,
                ]
            )
        table = format_table(
            ["experiment", "metric", "paper", "measured", "delta", ""],
            rows,
            title="Paper vs measured — every table and figure",
        )
        footer = (
            f"\n{len(self.results)} comparisons; max relative error outside "
            f"documented deviations: {self.max_gated_error() * 100:.1f}%"
        )
        return table + footer
