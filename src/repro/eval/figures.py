"""Generators for the paper's Figures 3-6 (data series, not plots).

Each generator returns the series a plot of the figure would draw, plus
paper-vs-measured comparisons for the quantities the paper states about the
figure (average improvements, breakdown shares, thresholds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.area import AreaModel
from repro.arch.config import TridentConfig
from repro.baselines import electronic_baselines, photonic_baselines
from repro.dataflow.cost_model import PhotonicCostModel
from repro.devices.activation_cell import GSTActivationCell
from repro.eval.experiments import PAPER, ExperimentResult, compare
from repro.nn import build_model
from repro.nn.models import PAPER_MODELS


@dataclass
class FigureReport:
    """A regenerated figure's data plus its paper comparisons."""

    title: str
    #: series name -> x-label -> value (or an array pair for curves).
    series: dict[str, dict[str, float]]
    comparisons: list[ExperimentResult] = field(default_factory=list)

    def max_relative_error(self) -> float:
        """Worst |relative error| across the comparisons."""
        if not self.comparisons:
            return 0.0
        return max(c.within for c in self.comparisons)


# ---------------------------------------------------------------------------
# Fig 3 — GST activation transfer function
# ---------------------------------------------------------------------------
def fig3_activation_transfer(n_points: int = 201) -> FigureReport:
    """Output vs input pulse energy of the GST activation cell."""
    cell = GSTActivationCell()
    energies = np.linspace(0.0, 1000e-12, n_points)
    outputs = cell.response_energy(energies)
    # Measured threshold: first input with non-zero output.
    nonzero = np.nonzero(outputs > 0)[0]
    threshold = float(energies[nonzero[0]]) if nonzero.size else float("inf")
    # Measured slope above threshold.
    above = energies > cell.config.threshold_j
    slope = float(np.polyfit(energies[above], outputs[above], 1)[0])
    series = {
        "input_energy_pj": {str(i): float(e * 1e12) for i, e in enumerate(energies)},
        "output_energy_pj": {str(i): float(o * 1e12) for i, o in enumerate(outputs)},
    }
    comparisons = [
        compare("fig3", "activation threshold", PAPER.activation_threshold_j * 1e12,
                threshold * 1e12, "pJ"),
        compare("fig3", "activation slope", PAPER.activation_slope, slope),
    ]
    return FigureReport(
        title="Fig 3: GST Activation Cell Output Function (1553.4 nm)",
        series=series,
        comparisons=comparisons,
    )


# ---------------------------------------------------------------------------
# Fig 4 — photonic accelerators total energy
# ---------------------------------------------------------------------------
def fig4_photonic_energy(batch: int = 128) -> FigureReport:
    """Per-inference energy of the four photonic architectures x 5 CNNs."""
    archs = photonic_baselines()
    series: dict[str, dict[str, float]] = {}
    for arch in archs:
        cm = PhotonicCostModel(arch, batch=batch)
        series[arch.name] = {
            m: cm.model_cost(build_model(m)).energy_j for m in PAPER_MODELS
        }
    trident = series["trident"]

    def improvement(name: str) -> float:
        """Average energy improvement of Trident vs the baseline, %.

        Matches the paper's phrasing: baseline uses x% more energy.
        """
        return float(
            np.mean([series[name][m] / trident[m] - 1.0 for m in PAPER_MODELS]) * 100.0
        )

    comparisons = [
        compare("fig4", "vs deap-cnn", PAPER.energy_improvement_vs_deap_pct,
                improvement("deap-cnn"), "%"),
        compare("fig4", "vs crosslight", PAPER.energy_improvement_vs_crosslight_pct,
                improvement("crosslight"), "%"),
        compare("fig4", "vs pixel", PAPER.energy_improvement_vs_pixel_pct,
                improvement("pixel"), "%"),
    ]
    return FigureReport(
        title="Fig 4: Photonic Accelerators Total Energy per Inference",
        series=series,
        comparisons=comparisons,
    )


# ---------------------------------------------------------------------------
# Fig 5 — Trident chip area breakdown
# ---------------------------------------------------------------------------
def fig5_area_breakdown(config: TridentConfig | None = None) -> FigureReport:
    """Fig 5: Trident chip-area breakdown by component."""
    config = config or TridentConfig()
    model = AreaModel(config)
    rows = model.as_rows()
    series = {
        "area_mm2": {str(r["component"]): float(r["area_mm2"]) for r in rows},
        "percentage": {str(r["component"]): float(r["percentage"]) for r in rows},
    }
    comparisons = [
        compare("fig5", "chip area", PAPER.chip_area_mm2, model.chip_area_mm2, "mm^2"),
    ]
    return FigureReport(
        title="Fig 5: Trident Chip Area Breakdown by Component",
        series=series,
        comparisons=comparisons,
    )


# ---------------------------------------------------------------------------
# Fig 6 — inferences per second, all seven accelerators
# ---------------------------------------------------------------------------
def fig6_inferences_per_second(batch: int = 128, electronic_batch: int = 32) -> FigureReport:
    """Fig 6: inferences/s for all seven accelerators x 5 CNNs."""
    nets = {m: build_model(m) for m in PAPER_MODELS}
    series: dict[str, dict[str, float]] = {}
    for arch in photonic_baselines():
        cm = PhotonicCostModel(arch, batch=batch)
        series[arch.name] = {
            m: cm.model_cost(net).inferences_per_second for m, net in nets.items()
        }
    for acc in electronic_baselines():
        series[acc.name] = {
            m: acc.model_cost(net, batch=electronic_batch).inferences_per_second
            for m, net in nets.items()
        }
    trident = series["trident"]

    def advantage(name: str) -> float:
        return float(
            np.mean([trident[m] / series[name][m] - 1.0 for m in PAPER_MODELS]) * 100.0
        )

    comparisons = [
        compare("fig6", "vs deap-cnn", PAPER.ips_improvement_vs_deap_pct,
                advantage("deap-cnn"), "%"),
        compare("fig6", "vs crosslight", PAPER.ips_improvement_vs_crosslight_pct,
                advantage("crosslight"), "%"),
        compare("fig6", "vs pixel", PAPER.ips_improvement_vs_pixel_pct,
                advantage("pixel"), "%"),
        compare("fig6", "vs agx-xavier", PAPER.ips_improvement_vs_xavier_pct,
                advantage("agx-xavier"), "%"),
        compare("fig6", "vs tb96-ai", PAPER.ips_improvement_vs_tb96_pct,
                advantage("tb96-ai"), "%"),
        compare("fig6", "vs google-coral", PAPER.ips_improvement_vs_coral_pct,
                advantage("google-coral"), "%"),
    ]
    return FigureReport(
        title="Fig 6: Edge Accelerators Inferences per Second",
        series=series,
        comparisons=comparisons,
    )
