"""Per-layer cost reports — the Maestro-style view of one model on one
architecture.

Used by the ``python -m repro layers`` command and by anyone debugging why
a model is fast or slow on a photonic configuration: per-layer tiles,
rounds, symbols, time, and the energy component split.
"""

from __future__ import annotations

from repro.baselines import photonic_baselines
from repro.dataflow.cost_model import PhotonicCostModel
from repro.dataflow.report import ModelCost
from repro.errors import ConfigError
from repro.eval.formatting import format_table
from repro.nn import build_model


def layer_cost_table(
    model: str,
    arch_name: str = "trident",
    batch: int = 128,
    budget_w: float = 30.0,
    top: int | None = None,
) -> tuple[ModelCost, str]:
    """Per-layer cost table for a zoo model on a photonic architecture.

    ``top`` keeps only the most expensive layers (by time) plus a summary
    row; None shows every compute layer.
    """
    archs = {a.name: a for a in photonic_baselines(budget_w)}
    if arch_name not in archs:
        raise ConfigError(
            f"unknown architecture {arch_name!r}; choose from {sorted(archs)}"
        )
    cost = PhotonicCostModel(archs[arch_name], batch=batch).model_cost(
        build_model(model)
    )
    layers = sorted(cost.layers, key=lambda l: -l.time_s)
    if top is not None:
        if top < 1:
            raise ConfigError("top must be positive")
        layers = layers[:top]
    rows = []
    for layer in layers:
        rows.append(
            [
                layer.name,
                layer.macs / 1e6,
                layer.tiles,
                layer.rounds,
                layer.time_s * 1e6,
                layer.energy_j * 1e6,
                layer.energy_breakdown.get("tuning", 0.0) * 1e6,
                layer.energy_breakdown.get("streaming", 0.0) * 1e6,
            ]
        )
    rows.append(
        [
            "TOTAL (all layers)",
            cost.total_macs / 1e6,
            sum(l.tiles for l in cost.layers),
            sum(l.rounds for l in cost.layers),
            cost.time_s * 1e6,
            cost.energy_j * 1e6,
            cost.energy_component("tuning") * 1e6,
            cost.energy_component("streaming") * 1e6,
        ]
    )
    text = format_table(
        ["layer", "MMACs", "tiles", "rounds", "time (us)", "energy (uJ)",
         "tuning (uJ)", "streaming (uJ)"],
        rows,
        title=f"{model} on {arch_name} (batch {batch}, {budget_w:.0f} W)",
    )
    return cost, text
