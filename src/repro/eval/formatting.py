"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; every row must have the
    same arity as the header.
    """
    if not headers:
        raise ConfigError("need at least one column")
    cells = [[_fmt(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigError(
                f"row arity {len(row)} != header arity {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    numeric = [
        all(isinstance(row[i], (int, float)) and not isinstance(row[i], bool) for row in rows)
        if rows
        else False
        for i in range(len(headers))
    ]

    def line(parts: Sequence[str], is_num_row: bool = True) -> str:
        out = []
        for i, part in enumerate(parts):
            if numeric[i] and is_num_row:
                out.append(part.rjust(widths[i]))
            else:
                out.append(part.ljust(widths[i]))
        return "  ".join(out).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = [line([str(h) for h in headers], is_num_row=False), sep]
    body.extend(line(row) for row in cells)
    prefix = f"{title}\n{sep}\n" if title else ""
    return prefix + "\n".join(body)
