"""Generators for the paper's Tables I-V.

Each generator recomputes the table from the library's models (never from
hard-coded results), returns the rows plus paper-vs-measured comparison
records, and renders ASCII text for the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import TridentConfig
from repro.arch.control import OperatingMode, table2_mapping
from repro.arch.pe import ProcessingElement
from repro.arch.power import PowerModel
from repro.baselines.electronic import agx_xavier_training, electronic_baselines
from repro.devices.tuning import tuning_comparison_table
from repro.eval.experiments import PAPER, ExperimentResult, compare
from repro.eval.formatting import format_table
from repro.nn import build_model
from repro.training.latency import TrainingCostModel


@dataclass
class TableReport:
    """A regenerated table plus its paper comparisons."""

    title: str
    headers: list[str]
    rows: list[list[object]]
    comparisons: list[ExperimentResult] = field(default_factory=list)

    @property
    def text(self) -> str:
        """Rendered ASCII table."""
        return format_table(self.headers, self.rows, title=self.title)

    def max_relative_error(self) -> float:
        """Worst |relative error| across the comparisons."""
        if not self.comparisons:
            return 0.0
        return max(c.within for c in self.comparisons)


# ---------------------------------------------------------------------------
# Table I — tuning method comparison
# ---------------------------------------------------------------------------
def table1_tuning() -> TableReport:
    """Table I: tuning method comparison."""
    rows = []
    for record in tuning_comparison_table():
        rows.append(
            [
                record["method"],
                record["write_energy_j"] * 1e12,  # pJ
                record["write_time_s"] * 1e9,  # ns
                record["hold_power_w"] * 1e3,  # mW
                record["bit_resolution"],
                record["volatile"],
            ]
        )
    by_method = {r[0]: r for r in rows}
    comparisons = [
        compare("table1", "thermal write energy", PAPER.thermal_write_energy_j * 1e12,
                by_method["thermal"][1], "pJ"),
        compare("table1", "thermal write time", PAPER.thermal_write_time_s * 1e9,
                by_method["thermal"][2], "ns"),
        compare("table1", "gst write energy", PAPER.gst_write_energy_j * 1e12,
                by_method["gst"][1], "pJ"),
        compare("table1", "gst write time", PAPER.gst_write_time_s * 1e9,
                by_method["gst"][2], "ns"),
        compare("table1", "electric write time", PAPER.electric_speed_s * 1e9,
                by_method["electric"][2], "ns"),
    ]
    return TableReport(
        title="Table I: Tuning Method Comparison",
        headers=["method", "write energy (pJ)", "write time (ns)",
                 "hold power (mW)", "bits", "volatile"],
        rows=rows,
        comparisons=comparisons,
    )


# ---------------------------------------------------------------------------
# Table II — PE hardware device mapping (verified numerically)
# ---------------------------------------------------------------------------
def table2_mapping_check(seed: int = 0) -> TableReport:
    """Regenerate Table II and *verify* each mode computes its product.

    A real (quantized) PE is driven in each of the three modes and its
    output compared against the exact linear algebra; the 'max error'
    column is the observed deviation (quantization-limited, ~1e-2).
    """
    rng = np.random.default_rng(seed)
    mapping = table2_mapping()
    n = 8
    errors: dict[OperatingMode, float] = {}

    # Inference: y = W x.
    pe = ProcessingElement()
    w = rng.uniform(-1, 1, (n, n))
    x = rng.uniform(-1, 1, n)
    pe.program_weights(w)
    y_hw = pe.forward(x, apply_activation=False)
    errors[OperatingMode.INFERENCE] = float(np.max(np.abs(y_hw - w @ x)))

    # Gradient vector: (W^T d) ⊙ f'(h).  LDSU bits were captured above.
    pe2 = ProcessingElement()
    w_next = rng.uniform(-1, 1, (n, n))
    delta = rng.uniform(-1, 1, n)
    h = rng.uniform(-1, 1, n)
    pe2.program_weights(rng.uniform(-1, 1, (n, n)))
    pe2.forward(np.zeros(n), apply_activation=False)  # benign capture
    padded = np.zeros(pe2.rows)
    padded[:n] = h
    pe2.ldsu.capture(padded)
    pe2.program_weights(w_next.T)
    g_hw = pe2.gradient_vector(delta)
    fprime = np.where(h > 0, 0.34, 0.0)
    errors[OperatingMode.GRADIENT_VECTOR] = float(
        np.max(np.abs(g_hw - (w_next.T @ delta) * fprime))
    )

    # Outer product: dW = d ⊗ y.
    pe3 = ProcessingElement()
    d = rng.uniform(-1, 1, n)
    y_prev = rng.uniform(-1, 1, n)
    dw_hw = pe3.outer_product(d, y_prev)
    errors[OperatingMode.OUTER_PRODUCT] = float(
        np.max(np.abs(dw_hw - np.outer(d, y_prev)))
    )

    rows = []
    for mode in OperatingMode:
        enc = mapping[mode]
        rows.append(
            [
                mode.value,
                enc["input_laser_sources"],
                enc["mrr_weight_bank"],
                enc["bpd_output"],
                enc["tia_eo_lasers"],
                errors[mode],
            ]
        )
    return TableReport(
        title="Table II: PE Hardware Device Mapping (numerically verified)",
        headers=["mode", "input lasers", "MRR weight bank", "BPD output",
                 "TIA / E-O", "max error"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table III — PE power breakdown
# ---------------------------------------------------------------------------
def table3_power(config: TridentConfig | None = None) -> TableReport:
    """Table III: per-PE power breakdown."""
    config = config or TridentConfig()
    model = PowerModel(config)
    rows = [
        [r["component"], r["power_w"] * 1e3, r["percentage"]]
        for r in model.breakdown.as_rows()
    ]
    comparisons = [
        compare("table3", "PE total power", PAPER.pe_total_power_w,
                model.breakdown.total_w, "W"),
        compare("table3", "GST tuning share", PAPER.gst_tuning_share_pct,
                model.post_tuning_drop_fraction * 100, "%"),
        compare("table3", "post-tuning PE power", PAPER.pe_post_tuning_power_w,
                config.pe_streaming_power_w, "W"),
        compare("table3", "PEs at 30 W", PAPER.n_pes,
                model.max_pes_for_budget(30.0), "PEs"),
    ]
    return TableReport(
        title="Table III: Trident Device Power Breakdown (per PE)",
        headers=["component", "power (mW)", "percentage"],
        rows=rows,
        comparisons=comparisons,
    )


# ---------------------------------------------------------------------------
# Table IV — Trident vs electronic accelerators
# ---------------------------------------------------------------------------
def table4_tops(config: TridentConfig | None = None) -> TableReport:
    """Table IV: Trident vs electronic accelerators."""
    config = config or TridentConfig()
    rows = []
    for acc in electronic_baselines():
        rows.append([acc.name, acc.peak_tops, acc.power_w, acc.tops_per_watt, acc.can_train])
    rows.append(
        ["trident", config.peak_tops, config.power_budget_w, config.tops_per_watt, True]
    )
    comparisons = [
        compare("table4", "trident TOPS", PAPER.trident_tops, config.peak_tops, "TOPS"),
        compare("table4", "trident TOPS/W (7.8/30)", PAPER.trident_tops / PAPER.power_budget_w,
                config.tops_per_watt, "TOPS/W"),
        compare("table4", "xavier TOPS", PAPER.xavier_tops, rows[0][1], "TOPS"),
        compare("table4", "tb96 TOPS", PAPER.tb96_tops, rows[1][1], "TOPS"),
        compare("table4", "coral TOPS", PAPER.coral_tops, rows[2][1], "TOPS"),
    ]
    return TableReport(
        title="Table IV: Performance of Trident vs. Electronic Accelerators",
        headers=["accelerator", "TOPS", "Watts", "TOPS per W", "training"],
        rows=rows,
        comparisons=comparisons,
    )


# ---------------------------------------------------------------------------
# Table V — time to train 50 000 images
# ---------------------------------------------------------------------------
def table5_training(batch: int = 32, n_samples: int = 50_000) -> TableReport:
    """Table V: time to train 50,000 images."""
    tcm = TrainingCostModel(batch=batch)
    paper = PAPER.training_table()
    rows = []
    comparisons = []
    for model_name, (paper_xavier, paper_trident) in paper.items():
        net = build_model(model_name)
        xavier_s = agx_xavier_training(model_name).training_time_s(net, n_samples, batch=batch)
        trident_s = tcm.training_time_s(net, n_samples)
        pct = (trident_s - xavier_s) / xavier_s * 100.0
        paper_pct = (paper_trident - paper_xavier) / paper_xavier * 100.0
        rows.append([model_name, xavier_s, trident_s, pct, paper_pct])
        comparisons.append(
            compare("table5", f"{model_name} xavier time", paper_xavier, xavier_s, "s")
        )
        comparisons.append(
            compare("table5", f"{model_name} trident time", paper_trident, trident_s, "s")
        )
    return TableReport(
        title="Table V: Time to Train 50,000 Images",
        headers=["model", "xavier (s)", "trident (s)", "pct change", "paper pct"],
        rows=rows,
        comparisons=comparisons,
    )
