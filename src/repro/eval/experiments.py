"""The paper's published numbers and paper-vs-measured comparison records.

Everything the paper commits to quantitatively lives in
:class:`PaperTargets`, so benches and tests compare against one source of
truth.  ``compare`` builds :class:`ExperimentResult` records; EXPERIMENTS.md
is generated from them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class PaperTargets:
    """Quantitative claims from the paper, by section/table/figure."""

    # --- Table I (tuning) -------------------------------------------------
    thermal_write_energy_j: float = 1.02e-9
    thermal_write_time_s: float = 0.6e-6
    electric_speed_s: float = 500e-9
    gst_write_energy_j: float = 660e-12
    gst_write_time_s: float = 300e-9

    # --- Table III (per-PE power) -----------------------------------------
    pe_total_power_w: float = 0.67
    gst_tuning_share_pct: float = 83.34
    pe_post_tuning_power_w: float = 0.11

    # --- Sec. IV (system) ----------------------------------------------------
    n_pes: int = 44
    mrrs_per_pe: int = 256
    chip_area_mm2: float = 604.6
    max_clock_hz: float = 1.37e9
    power_budget_w: float = 30.0

    # --- Table IV (TOPS) ----------------------------------------------------
    trident_tops: float = 7.8
    trident_tops_per_watt_paper: float = 0.29  # note: 7.8/30 = 0.26
    xavier_tops: float = 32.0
    tb96_tops: float = 3.0
    coral_tops: float = 4.0

    # --- Fig 4 (photonic energy, avg improvement %) --------------------------
    energy_improvement_vs_deap_pct: float = 16.4
    energy_improvement_vs_crosslight_pct: float = 43.5
    energy_improvement_vs_pixel_pct: float = 43.4

    # --- Fig 6 (inferences/s, avg improvement %) ------------------------------
    ips_improvement_vs_deap_pct: float = 27.9
    ips_improvement_vs_crosslight_pct: float = 150.2
    ips_improvement_vs_pixel_pct: float = 143.6
    ips_improvement_vs_xavier_pct: float = 107.7
    ips_improvement_vs_tb96_pct: float = 594.7
    ips_improvement_vs_coral_pct: float = 1413.1

    # --- Table V (training, seconds for 50 000 images) -----------------------
    training_xavier_s: tuple[tuple[str, float], ...] = (
        ("mobilenet_v2", 32.5),
        ("googlenet", 57.1),
        ("resnet50", 365.7),
        ("vgg16", 1293.8),
    )
    training_trident_s: tuple[tuple[str, float], ...] = (
        ("mobilenet_v2", 29.7),
        ("googlenet", 63.2),
        ("resnet50", 307.2),
        ("vgg16", 796.1),
    )

    # --- Fig 3 (GST activation) ------------------------------------------------
    activation_threshold_j: float = 430e-12
    activation_slope: float = 0.34

    def training_table(self) -> dict[str, tuple[float, float]]:
        """model -> (xavier_s, trident_s)."""
        xavier = dict(self.training_xavier_s)
        trident = dict(self.training_trident_s)
        return {m: (xavier[m], trident[m]) for m in xavier}


PAPER = PaperTargets()


@dataclass(frozen=True)
class ExperimentResult:
    """One paper-vs-measured data point."""

    experiment: str
    metric: str
    paper_value: float
    measured_value: float
    units: str = ""

    @property
    def relative_error(self) -> float:
        """(measured - paper) / |paper|."""
        if self.paper_value == 0:
            raise ConfigError(f"{self.metric}: paper value is zero")
        return (self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def within(self) -> float:
        """Absolute relative error (for tolerance checks)."""
        return abs(self.relative_error)

    def row(self) -> list[object]:
        """Render as a table row."""
        return [
            self.experiment,
            self.metric,
            self.paper_value,
            self.measured_value,
            f"{self.relative_error * 100:+.1f}%",
            self.units,
        ]


def compare(
    experiment: str, metric: str, paper_value: float, measured_value: float, units: str = ""
) -> ExperimentResult:
    """Build a comparison record."""
    return ExperimentResult(
        experiment=experiment,
        metric=metric,
        paper_value=paper_value,
        measured_value=measured_value,
        units=units,
    )
