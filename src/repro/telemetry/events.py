"""Structured, machine-parseable event records.

Where spans answer "where did the time go" and metrics answer "how many",
the event log answers "what happened": repairs, rollbacks, NaN aborts,
checkpoint writes, graceful degradation — one timestamped record each,
with the fields a post-mortem needs.  Records carry a monotonic sequence
number (the ordering authority) plus a wall-clock timestamp (for humans);
nothing from this log is ever written into checkpointed state, so the
bit-identical save→load/resume guarantees are untouched.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Event:
    """One structured occurrence."""

    seq: int
    kind: str
    #: Wall-clock UNIX timestamp at emission — export-only, never
    #: checkpointed (determinism contract).
    wall_time_s: float
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view (stable key order) for JSONL export."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "wall_time_s": self.wall_time_s,
            **self.fields,
        }


class EventLog:
    """Thread-safe append-only list of :class:`Event` records."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[Event] = []
        self._seq = 0

    def emit(self, kind: str, **fields) -> Event:
        """Record one event; returns the finished record."""
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                kind=kind,
                wall_time_s=time.time(),
                fields=fields,
            )
            self._records.append(event)
            return event

    @property
    def records(self) -> tuple[Event, ...]:
        """All events, in emission order."""
        with self._lock:
            return tuple(self._records)

    def of_kind(self, kind: str) -> tuple[Event, ...]:
        """Events matching one kind."""
        return tuple(e for e in self.records if e.kind == kind)

    def to_jsonl_lines(self) -> list[str]:
        """One compact JSON document per event."""
        return [json.dumps(e.as_dict(), sort_keys=True) for e in self.records]

    def write_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl_lines` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = "\n".join(self.to_jsonl_lines())
        path.write_text(text + "\n" if text else "", encoding="utf-8")
        return path


class NullEventLog:
    """Disabled log: ``emit`` does nothing and returns None."""

    enabled = False

    def emit(self, kind: str, **fields) -> None:
        """Discard the event."""
        return None

    @property
    def records(self) -> tuple:
        """Always empty."""
        return ()
