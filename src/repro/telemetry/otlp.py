"""OTLP-model export for spans and metrics — no OpenTelemetry required.

Builds plain dicts shaped like OTLP/JSON (the ``ExportTraceServiceRequest``
/ ``ExportMetricsServiceRequest`` protobuf JSON mapping), so any OTLP
collector's HTTP/JSON endpoint — or plain ``json.dumps`` — can consume
them without this repo depending on the ``opentelemetry`` packages.  The
import of the real SDK is gated: :func:`encode_protobuf` uses it when
present and raises a clean :class:`~repro.errors.ConfigError` when not.

Like the Chrome-trace exporter, the output is schema-checked in-repo:
:func:`validate_otlp` returns the list of structural problems a
collector would reject the payload for (empty list == valid), and the
test suite runs it over real session output.

Determinism: trace/span ids are derived from the service name and the
tracer's sequential span ids — not random — so the same run produces the
same payload byte-for-byte.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigError

#: OTLP enum values (protobuf JSON mapping uses the integers).
SPAN_KIND_INTERNAL = 1
AGGREGATION_TEMPORALITY_CUMULATIVE = 2

_SCOPE = {"name": "repro.telemetry", "version": "1"}


def _trace_id(service_name: str) -> str:
    """Deterministic 16-byte trace id for one exported session."""
    return hashlib.sha256(service_name.encode()).hexdigest()[:32]


def _span_id(span_id: int) -> str:
    """Deterministic non-zero 8-byte span id from the tracer's counter."""
    return format(int(span_id) + 1, "016x")


def _any_value(value) -> dict:
    """Python scalar/collection -> OTLP ``AnyValue``."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, (list, tuple)):
        return {"arrayValue": {"values": [_any_value(v) for v in value]}}
    if isinstance(value, dict):
        return {
            "kvlistValue": {
                "values": [
                    {"key": str(k), "value": _any_value(v)}
                    for k, v in value.items()
                ]
            }
        }
    return {"stringValue": str(value)}


def _attributes(mapping: dict) -> list[dict]:
    return [
        {"key": str(key), "value": _any_value(value)}
        for key, value in mapping.items()
    ]


def _resource(service_name: str) -> dict:
    return {"attributes": _attributes({"service.name": service_name})}


def _nanos(seconds: float) -> str:
    """OTLP encodes uint64 nanosecond timestamps as decimal strings."""
    return str(max(0, int(round(seconds * 1e9))))


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def spans_to_otlp(
    records, service_name: str = "repro", epoch_s: float = 0.0
) -> dict:
    """Finished :class:`~repro.telemetry.tracer.SpanRecord` list -> OTLP.

    ``epoch_s`` shifts the tracer's relative clock to an absolute one
    (pass a wall-clock epoch to line spans up with other services; the
    default keeps the run's own zero).
    """
    trace_id = _trace_id(service_name)
    spans = []
    for record in records:
        attrs = dict(record.attrs)
        attrs["thread"] = record.thread
        if record.counters is not None:
            attrs["counters"] = dict(record.counters)
        span = {
            "traceId": trace_id,
            "spanId": _span_id(record.span_id),
            "name": record.name,
            "kind": SPAN_KIND_INTERNAL,
            "startTimeUnixNano": _nanos(epoch_s + record.start_s),
            "endTimeUnixNano": _nanos(
                epoch_s + record.start_s + record.duration_s
            ),
            "attributes": _attributes(attrs),
        }
        if record.parent_id is not None:
            span["parentSpanId"] = _span_id(record.parent_id)
        spans.append(span)
    return {
        "resourceSpans": [
            {
                "resource": _resource(service_name),
                "scopeSpans": [{"scope": dict(_SCOPE), "spans": spans}],
            }
        ]
    }


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def _number_point(value: float, attributes: list[dict]) -> dict:
    point: dict = {"timeUnixNano": "0", "attributes": attributes}
    if isinstance(value, float) and not value.is_integer():
        point["asDouble"] = value
    else:
        point["asInt"] = str(int(value))
    return point


def metrics_to_otlp(registry, service_name: str = "repro") -> dict:
    """A :class:`~repro.telemetry.metrics.MetricsRegistry` -> OTLP.

    Counters become cumulative monotonic sums, gauges become gauges
    (their last value; timed samples stay in the snapshot exporter),
    histograms become cumulative histogram data points.
    """
    by_name: dict[str, list] = {}
    for instrument in registry.instruments():
        by_name.setdefault(instrument.name, []).append(instrument)
    metrics = []
    for name in sorted(by_name):
        family = by_name[name]
        first = family[0]
        metric: dict = {"name": name, "description": first.help, "unit": ""}
        if first.kind == "counter":
            metric["sum"] = {
                "dataPoints": [
                    _number_point(inst.value, _attributes(dict(inst.labels)))
                    for inst in family
                ],
                "aggregationTemporality": AGGREGATION_TEMPORALITY_CUMULATIVE,
                "isMonotonic": True,
            }
        elif first.kind == "gauge":
            metric["gauge"] = {
                "dataPoints": [
                    _number_point(inst.value, _attributes(dict(inst.labels)))
                    for inst in family
                ]
            }
        elif first.kind == "histogram":
            points = []
            for inst in family:
                bucket_counts, total_sum, total_count = inst.snapshot()
                overflow = total_count - sum(bucket_counts)
                points.append(
                    {
                        "timeUnixNano": "0",
                        "attributes": _attributes(dict(inst.labels)),
                        "count": str(total_count),
                        "sum": total_sum,
                        "bucketCounts": [
                            str(c) for c in bucket_counts + [overflow]
                        ],
                        "explicitBounds": list(inst.bounds),
                    }
                )
            metric["histogram"] = {
                "dataPoints": points,
                "aggregationTemporality": AGGREGATION_TEMPORALITY_CUMULATIVE,
            }
        else:  # pragma: no cover - registry only creates the three kinds
            raise ConfigError(f"unexportable instrument kind {first.kind!r}")
        metrics.append(metric)
    return {
        "resourceMetrics": [
            {
                "resource": _resource(service_name),
                "scopeMetrics": [{"scope": dict(_SCOPE), "metrics": metrics}],
            }
        ]
    }


# ----------------------------------------------------------------------
# Schema check
# ----------------------------------------------------------------------
def _check_attributes(attrs, where: str, problems: list[str]) -> None:
    if not isinstance(attrs, list):
        problems.append(f"{where}: attributes must be a list")
        return
    for j, kv in enumerate(attrs):
        if (
            not isinstance(kv, dict)
            or not isinstance(kv.get("key"), str)
            or not isinstance(kv.get("value"), dict)
            or len(kv["value"]) != 1
        ):
            problems.append(
                f"{where}.attributes[{j}]: need {{key, value: {{<oneof>}}}}"
            )


def _is_hex(value, width: int) -> bool:
    if not isinstance(value, str) or len(value) != width:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def _check_nano(value, where: str, key: str, problems: list[str]) -> None:
    if not isinstance(value, str) or not value.isdigit():
        problems.append(f"{where}: {key} must be a decimal-string uint64")


def validate_otlp(doc) -> list[str]:
    """Structural schema check for an OTLP-model document.

    Returns a list of problems (empty == valid).  Accepts span payloads
    (``resourceSpans``), metric payloads (``resourceMetrics``), or a
    combined document; checks the constraints an OTLP/JSON collector
    enforces: hex trace/span ids of the right width, decimal-string
    nanosecond timestamps with ``end >= start``, well-formed attribute
    key/value pairs, and exactly one data oneof per metric.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be a JSON object, got {type(doc).__name__}"]
    if "resourceSpans" not in doc and "resourceMetrics" not in doc:
        return ["need resourceSpans and/or resourceMetrics"]

    for r, rs in enumerate(doc.get("resourceSpans", [])):
        for s, scope in enumerate(rs.get("scopeSpans", [])):
            for i, span in enumerate(scope.get("spans", [])):
                where = f"resourceSpans[{r}].scopeSpans[{s}].spans[{i}]"
                if not isinstance(span, dict):
                    problems.append(f"{where}: not an object")
                    continue
                if not isinstance(span.get("name"), str) or not span["name"]:
                    problems.append(f"{where}: missing/empty name")
                if not _is_hex(span.get("traceId"), 32):
                    problems.append(f"{where}: traceId must be 32 hex chars")
                if not _is_hex(span.get("spanId"), 16):
                    problems.append(f"{where}: spanId must be 16 hex chars")
                if "parentSpanId" in span and not _is_hex(
                    span["parentSpanId"], 16
                ):
                    problems.append(
                        f"{where}: parentSpanId must be 16 hex chars"
                    )
                for key in ("startTimeUnixNano", "endTimeUnixNano"):
                    _check_nano(span.get(key), where, key, problems)
                start, end = span.get("startTimeUnixNano"), span.get(
                    "endTimeUnixNano"
                )
                if (
                    isinstance(start, str)
                    and isinstance(end, str)
                    and start.isdigit()
                    and end.isdigit()
                    and int(end) < int(start)
                ):
                    problems.append(f"{where}: span ends before it starts")
                _check_attributes(span.get("attributes", []), where, problems)

    for r, rm in enumerate(doc.get("resourceMetrics", [])):
        for s, scope in enumerate(rm.get("scopeMetrics", [])):
            for i, metric in enumerate(scope.get("metrics", [])):
                where = f"resourceMetrics[{r}].scopeMetrics[{s}].metrics[{i}]"
                if not isinstance(metric, dict):
                    problems.append(f"{where}: not an object")
                    continue
                if not isinstance(metric.get("name"), str) or not metric["name"]:
                    problems.append(f"{where}: missing/empty name")
                oneof = [
                    k for k in ("sum", "gauge", "histogram") if k in metric
                ]
                if len(oneof) != 1:
                    problems.append(
                        f"{where}: need exactly one of sum/gauge/histogram, "
                        f"got {oneof}"
                    )
                    continue
                data = metric[oneof[0]]
                points = data.get("dataPoints")
                if not isinstance(points, list):
                    problems.append(f"{where}.{oneof[0]}: dataPoints missing")
                    continue
                for j, point in enumerate(points):
                    pwhere = f"{where}.{oneof[0]}.dataPoints[{j}]"
                    if not isinstance(point, dict):
                        problems.append(f"{pwhere}: not an object")
                        continue
                    _check_attributes(
                        point.get("attributes", []), pwhere, problems
                    )
                    if oneof[0] == "histogram":
                        counts = point.get("bucketCounts", [])
                        bounds = point.get("explicitBounds", [])
                        if len(counts) != len(bounds) + 1:
                            problems.append(
                                f"{pwhere}: need len(bucketCounts) == "
                                "len(explicitBounds) + 1"
                            )
                    elif "asInt" not in point and "asDouble" not in point:
                        problems.append(f"{pwhere}: need asInt or asDouble")
    return problems


# ----------------------------------------------------------------------
# Gated protobuf encode
# ----------------------------------------------------------------------
def otlp_protobuf_available() -> bool:
    """True when the optional ``opentelemetry-proto`` package is importable."""
    try:
        import opentelemetry.proto  # noqa: F401
    except ImportError:
        return False
    return True


def encode_protobuf(doc: dict) -> bytes:
    """Encode an OTLP-model document to protobuf wire bytes.

    Requires the optional ``opentelemetry-proto`` package; everything
    else in this module works without it.  Raises
    :class:`~repro.errors.ConfigError` with an actionable message when
    the dependency is absent — callers wanting a hard-dependency-free
    path should ship the JSON mapping from :func:`spans_to_otlp` /
    :func:`metrics_to_otlp` directly.
    """
    if not otlp_protobuf_available():
        raise ConfigError(
            "protobuf OTLP encoding needs the optional 'opentelemetry-proto' "
            "package (pip install opentelemetry-proto); the JSON-mapping "
            "dicts from spans_to_otlp/metrics_to_otlp need no dependency"
        )
    from google.protobuf.json_format import ParseDict
    from opentelemetry.proto.collector.metrics.v1.metrics_service_pb2 import (
        ExportMetricsServiceRequest,
    )
    from opentelemetry.proto.collector.trace.v1.trace_service_pb2 import (
        ExportTraceServiceRequest,
    )

    if "resourceSpans" in doc:
        message = ParseDict(doc, ExportTraceServiceRequest())
    elif "resourceMetrics" in doc:
        message = ParseDict(doc, ExportMetricsServiceRequest())
    else:
        raise ConfigError("need resourceSpans and/or resourceMetrics")
    return message.SerializeToString()
