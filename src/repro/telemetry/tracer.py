"""Nestable, thread-safe span tracing with hardware-event attribution.

A :class:`Tracer` records *spans*: named, attributed regions of execution
(``tracer.span("forward_batch", layer=3)``) carrying wall-clock duration
and, when an accelerator is attached, the hardware-event deltas
(:class:`~repro.arch.accelerator.EventCounters`) the region generated.
Spans nest per thread — each thread keeps its own stack, so parentage is
always correct under concurrent use — and finished spans accumulate into
one shared, lock-guarded list.

Determinism contract: span IDs come from a plain counter behind a lock —
never from wall-clock time or random draws — so enabling tracing cannot
perturb any seeded RNG stream, and nothing a tracer produces is ever
written into checkpointed state.  Timestamps are ``time.perf_counter``
offsets from the tracer's construction (a *relative* timeline).

Exports:

- :meth:`Tracer.to_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (complete ``"ph": "X"`` events), loadable in ``chrome://tracing``
  and `Perfetto <https://ui.perfetto.dev>`_.
- :meth:`Tracer.to_jsonl_lines` — one JSON record per span, for ad-hoc
  machine parsing.
- :func:`validate_chrome_trace` — the structural schema check the CI
  smoke gate (``repro trace --smoke``) runs on emitted artifacts.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.telemetry.snapshot import HardwareDelta, HardwareSnapshot


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, timing, attributes, event deltas."""

    span_id: int
    parent_id: int | None
    name: str
    #: Start offset from the tracer's epoch [s] (perf_counter-based).
    start_s: float
    duration_s: float
    #: Small sequential thread index (stable within one tracer).
    thread: int
    #: JSON-able user attributes passed to :meth:`Tracer.span`.
    attrs: dict = field(default_factory=dict)
    #: Hardware event deltas (``EventCounters.as_dict()``) accumulated
    #: inside the span; None when no accelerator was attached.
    counters: dict | None = None

    def as_dict(self) -> dict:
        """Plain-dict view (stable key order) for JSONL export."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "attrs": dict(self.attrs),
            "counters": None if self.counters is None else dict(self.counters),
        }


class _SpanContext:
    """Context manager for one live span (returned by :meth:`Tracer.span`).

    After exit, :attr:`record` holds the finished :class:`SpanRecord` and
    :attr:`hardware` the full :class:`~repro.telemetry.snapshot.
    HardwareDelta` when the span was opened with ``detail=True``.
    """

    __slots__ = (
        "_tracer", "_name", "_attrs", "_acc", "_detail",
        "_snap", "_t0", "_span_id", "_parent_id",
        "record", "hardware",
    )

    def __init__(self, tracer: "Tracer", name: str, acc, detail: bool, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._acc = acc
        self._detail = detail
        self._snap: HardwareSnapshot | None = None
        self.record: SpanRecord | None = None
        self.hardware: HardwareDelta | None = None

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        self._span_id = tracer._next_id()
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        if self._acc is not None:
            self._snap = HardwareSnapshot.capture(self._acc, detail=self._detail)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        counters = None
        if self._snap is not None:
            delta = self._snap.delta(self._acc)
            counters = delta.counters.as_dict()
            if self._detail:
                self.hardware = delta
        attrs = dict(self._attrs)
        if exc_type is not None:
            attrs["error"] = exc_type.__name__
        self.record = SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self._name,
            start_s=self._t0 - tracer._epoch,
            duration_s=duration,
            thread=tracer._thread_index(),
            attrs=attrs,
            counters=counters,
        )
        tracer._append(self.record)
        return False


class _NullSpanContext:
    """Shared do-nothing span; the disabled-telemetry fast path."""

    __slots__ = ()
    record = None
    hardware = None

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Singleton no-op context — ``telemetry.trace_span`` returns this when
#: telemetry is disabled, so the hot-path cost is one function call.
NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects spans; thread-safe; exports Chrome trace / JSONL."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._id_counter = 0
        self._threads: dict[int, int] = {}
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- internals -----------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _thread_index(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._threads:
                self._threads[ident] = len(self._threads)
            return self._threads[ident]

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- public API ----------------------------------------------------
    def span(self, name: str, accelerator=None, detail: bool = False, **attrs):
        """Open a span.  Use as ``with tracer.span("name", key=val): ...``.

        With ``accelerator`` the span snapshots its
        :class:`~repro.arch.accelerator.EventCounters` on entry and
        attaches the delta on exit; ``detail=True`` additionally captures
        per-PE :class:`~repro.arch.weight_bank.BankStats` deltas (exposed
        as the context's ``hardware`` attribute — the
        :class:`~repro.arch.profiler.Profiler` path).
        """
        if not name:
            raise ConfigError("span name must be non-empty")
        return _SpanContext(self, name, accelerator, detail, attrs)

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """Finished spans, in completion order."""
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        """Drop all finished spans (the epoch is kept)."""
        with self._lock:
            self._records = []

    # -- analysis ------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of root-span wall time covered by named child spans.

        For every parentless span, computes the union of its direct
        children's intervals clipped to the root, and returns total
        covered time over total root time.  1.0 when roots have no gaps;
        1.0 (vacuously) when there are no root spans with duration.
        """
        records = self.records
        roots = [r for r in records if r.parent_id is None and r.duration_s > 0]
        if not roots:
            return 1.0
        children: dict[int, list[SpanRecord]] = {}
        for r in records:
            if r.parent_id is not None:
                children.setdefault(r.parent_id, []).append(r)
        covered = 0.0
        total = 0.0
        for root in roots:
            total += root.duration_s
            r0, r1 = root.start_s, root.start_s + root.duration_s
            intervals = sorted(
                (max(c.start_s, r0), min(c.start_s + c.duration_s, r1))
                for c in children.get(root.span_id, ())
            )
            cursor = r0
            for lo, hi in intervals:
                if hi <= cursor:
                    continue
                covered += hi - max(lo, cursor)
                cursor = hi
        return covered / total if total > 0 else 1.0

    # -- exports -------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON-object-format document."""
        events = []
        for r in self.records:
            args = dict(r.attrs)
            if r.counters is not None:
                args["counters"] = dict(r.counters)
            args["span_id"] = r.span_id
            if r.parent_id is not None:
                args["parent_id"] = r.parent_id
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": r.start_s * 1e6,
                    "dur": r.duration_s * 1e6,
                    "pid": 0,
                    "tid": r.thread,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write :meth:`to_chrome_trace` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return path

    def to_jsonl_lines(self) -> list[str]:
        """One compact JSON document per finished span."""
        return [json.dumps(r.as_dict(), sort_keys=True) for r in self.records]

    def write_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl_lines` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.to_jsonl_lines()) + "\n", encoding="utf-8")
        return path


class NullTracer:
    """Disabled tracer: every ``span()`` is the shared no-op context."""

    enabled = False

    def span(self, name: str, accelerator=None, detail: bool = False, **attrs):
        """Return the shared no-op span context."""
        return NULL_SPAN

    @property
    def records(self) -> tuple:
        """Always empty."""
        return ()

    def coverage(self) -> float:
        """Vacuously 1.0 (no spans to leave gaps)."""
        return 1.0


def validate_chrome_trace(doc) -> list[str]:
    """Structural schema check for a Chrome trace document.

    Returns a list of problems (empty == valid).  Checks the constraints
    Perfetto's JSON importer relies on: a ``traceEvents`` list of complete
    events, each with string ``name``/``ph`` and numeric, non-negative
    ``ts``/``dur``, integer ``pid``/``tid``, and a dict ``args``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing/empty name")
        if ev.get("ph") not in ("X", "B", "E", "i", "C", "M"):
            problems.append(f"{where}: unsupported phase {ev.get('ph')!r}")
        for key in ("ts",) + (("dur",) if ev.get("ph") == "X" else ()):
            value = ev.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: {key} must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems
