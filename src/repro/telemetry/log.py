"""The ``repro.*`` logging hierarchy.

Library rule (PEP 282 etiquette): modules log through standard
``logging.getLogger("repro.<subpackage>.<module>")`` loggers, and the
package root carries a :class:`logging.NullHandler` so importing the
library never prints anything or warns about missing handlers.  An
*application* — the CLI, a notebook — opts into output with
:func:`configure_cli_logging` (or its own ``logging`` setup).

Severity conventions across the package:

- ``DEBUG`` — per-action detail: individual repair retries, checkpoint
  writes, campaign cell starts.
- ``INFO`` — state changes worth a line in a run log: spare-row remaps,
  tile migrations, campaign progress, resume points.
- ``WARNING`` — degradation: rollbacks, tiles left unrepaired, corrupt
  checkpoint files skipped.
- ``ERROR`` — a run giving up: retry budget exhausted, training aborted.
"""

from __future__ import annotations

import logging

#: The package root logger every ``repro.*`` logger propagates into.
ROOT_LOGGER_NAME = "repro"

# Library default: silence unless the application configures handlers.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

_CLI_FORMAT = "%(levelname)s %(name)s: %(message)s"
_cli_handler: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (prefix added if missing)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def configure_cli_logging(verbosity: int = 0, debug: bool = False) -> int:
    """Attach a stderr handler to the ``repro`` root for CLI runs.

    ``verbosity`` counts ``-v`` flags: 0 → WARNING, 1 → INFO, >= 2 →
    DEBUG; ``debug`` forces DEBUG.  Idempotent — repeated calls reuse one
    handler, adjusting its level.  Returns the effective level.
    """
    global _cli_handler
    if debug or verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _cli_handler is None:
        _cli_handler = logging.StreamHandler()
        _cli_handler.setFormatter(logging.Formatter(_CLI_FORMAT))
        root.addHandler(_cli_handler)
    _cli_handler.setLevel(level)
    root.setLevel(level)
    return level


def reset_cli_logging() -> None:
    """Detach the CLI handler (tests use this to isolate configurations)."""
    global _cli_handler
    if _cli_handler is not None:
        logging.getLogger(ROOT_LOGGER_NAME).removeHandler(_cli_handler)
        _cli_handler = None
    logging.getLogger(ROOT_LOGGER_NAME).setLevel(logging.NOTSET)
