"""The opt-in telemetry session and its zero-overhead disabled path.

Telemetry is **off by default**.  The instrumentation hooks woven through
the functional and performance layers all route through the module-level
accessors here, and when no session is active they cost one global read
plus (for spans) one shared no-op context manager — no allocation, no
locking, no branches inside the hot loops themselves.  The overhead gate
(``benchmarks/bench_telemetry_overhead.py``) holds this to < 2% of the
batched forward path.

Enable explicitly::

    from repro import telemetry

    with telemetry.session() as t:
        acc.forward_batch(xs)
    t.tracer.write_chrome_trace("run.trace.json")
    print(t.metrics.to_prometheus())

or imperatively with :func:`enable` / :func:`disable`.  One session holds
the three sinks — :class:`~repro.telemetry.tracer.Tracer`,
:class:`~repro.telemetry.metrics.MetricsRegistry`, and
:class:`~repro.telemetry.events.EventLog` — and pre-registers the
well-known counters (rollbacks, checkpoints, repair tiers, …) so every
metrics dump exposes them even at zero.
"""

from __future__ import annotations

import contextlib
import threading

from repro.telemetry.events import EventLog, NullEventLog
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetrics,
    NULL_INSTRUMENT,
)
from repro.telemetry.tracer import NullTracer, Tracer, NULL_SPAN

#: Counters every session exposes from step zero, so dumps are complete
#: even before (or without) the corresponding activity.
WELL_KNOWN_COUNTERS = (
    ("repro_forward_batches_total", "Batched forward passes executed"),
    ("repro_forward_samples_total", "Samples forwarded (batched or streaming)"),
    ("repro_train_steps_total", "In-situ optimizer steps completed"),
    ("repro_checkpoints_written_total", "Checkpoints written by the runtime"),
    ("repro_rollbacks_total", "Divergence rollbacks performed"),
    ("repro_run_aborts_total", "Training runs aborted after retry exhaustion"),
    ("repro_repairs_total", "Successful repairs by ladder tier"),
    ("repro_tiles_unrepaired_total", "Tiles left degraded after the ladder"),
    ("repro_campaign_cells_total", "Fault-campaign sweep cells executed"),
    ("repro_requests_admitted_total", "Serving requests admitted to the queue"),
    ("repro_requests_completed_total", "Serving requests completed"),
    ("repro_requests_shed_total", "Serving requests shed, by reason"),
    ("repro_requests_retried_total", "Serving request retry attempts"),
    (
        "repro_breaker_transitions_total",
        "Serving circuit-breaker transitions, by target state",
    ),
    ("repro_chaos_injections_total", "Chaos injections applied, by kind"),
    (
        "repro_checkpoint_corrupt_skipped_total",
        "Corrupt checkpoint files skipped during store recovery",
    ),
    ("repro_sdc_detected_total", "ABFT checksum violations detected"),
    (
        "repro_sdc_escalations_total",
        "SDC incidents escalated to peer retry",
    ),
    ("repro_controller_ticks_total", "Fleet-controller evaluation ticks"),
    (
        "repro_controller_actuations_total",
        "Fleet-controller knob changes actually applied",
    ),
    ("repro_fleet_scale_ups_total", "Workers commissioned by autoscaling"),
    (
        "repro_fleet_scale_downs_total",
        "Workers drained and decommissioned by autoscaling",
    ),
    (
        "repro_fleet_degraded_transitions_total",
        "Degraded-mode ladder rung changes (either direction)",
    ),
)

#: Repair-ladder tiers pre-registered on ``repro_repairs_total``.
REPAIR_TIERS = ("retry", "spare", "migrate")

#: Shed reasons pre-registered on ``repro_requests_shed_total`` (the
#: serving layer's :class:`~repro.serving.ShedReason` values).
SHED_REASONS = (
    "queue_full",
    "priority_evicted",
    "deadline_unreachable",
    "deadline_expired",
    "retries_exhausted",
    "no_worker",
    "degraded_shed",
)

#: Breaker states pre-registered on ``repro_breaker_transitions_total``.
BREAKER_STATES = ("open", "half_open", "closed")

#: Injection kinds pre-registered on ``repro_chaos_injections_total``
#: (the chaos layer's :data:`repro.chaos.plan.INJECTION_KINDS`).
CHAOS_KINDS = (
    "worker_crash",
    "corrupt_output",
    "silent_corrupt",
    "stuck_burst",
    "drift_burst",
    "breaker_storm",
    "checkpoint_corrupt",
    "ledger_tear",
    "sabotage",
)


class TelemetrySession:
    """One enabled telemetry scope: tracer + metrics + event log."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        for name, help_text in WELL_KNOWN_COUNTERS:
            if name == "repro_repairs_total":
                for tier in REPAIR_TIERS:
                    self.metrics.counter(name, help_text, tier=tier)
            elif name == "repro_requests_shed_total":
                for reason in SHED_REASONS:
                    self.metrics.counter(name, help_text, reason=reason)
            elif name == "repro_breaker_transitions_total":
                for state in BREAKER_STATES:
                    self.metrics.counter(name, help_text, to=state)
            elif name == "repro_chaos_injections_total":
                for kind in CHAOS_KINDS:
                    self.metrics.counter(name, help_text, kind=kind)
            else:
                self.metrics.counter(name, help_text)


#: Inert placeholders handed out while telemetry is disabled.
NULL_TRACER = NullTracer()
NULL_METRICS = NullMetrics()
NULL_EVENTS = NullEventLog()

_lock = threading.Lock()
_active: TelemetrySession | None = None


def enable() -> TelemetrySession:
    """Start a fresh telemetry session (replacing any active one)."""
    global _active
    with _lock:
        _active = TelemetrySession()
        return _active


def disable() -> TelemetrySession | None:
    """Stop collection; returns the finished session (or None)."""
    global _active
    with _lock:
        finished, _active = _active, None
        return finished


def active() -> TelemetrySession | None:
    """The live session, or None when telemetry is disabled."""
    return _active


def enabled() -> bool:
    """True while a telemetry session is active."""
    return _active is not None


@contextlib.contextmanager
def session():
    """``with telemetry.session() as t:`` — enable, collect, disable."""
    t = enable()
    try:
        yield t
    finally:
        with _lock:
            global _active
            if _active is t:
                _active = None


# ---------------------------------------------------------------------------
# Hot-path accessors.  Instrumentation sites call these; when telemetry is
# disabled each is one global read returning a shared no-op object.
# ---------------------------------------------------------------------------
def trace_span(name: str, accelerator=None, detail: bool = False, **attrs):
    """Span on the active tracer, or the shared no-op context."""
    s = _active
    if s is None:
        return NULL_SPAN
    return s.tracer.span(name, accelerator=accelerator, detail=detail, **attrs)


def counter(name: str, help: str = "", **labels):
    """Counter on the active registry, or the shared no-op instrument."""
    s = _active
    if s is None:
        return NULL_INSTRUMENT
    return s.metrics.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels):
    """Gauge on the active registry, or the shared no-op instrument."""
    s = _active
    if s is None:
        return NULL_INSTRUMENT
    return s.metrics.gauge(name, help, **labels)


def histogram(name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels):
    """Histogram on the active registry, or the shared no-op instrument."""
    s = _active
    if s is None:
        return NULL_INSTRUMENT
    return s.metrics.histogram(name, help, buckets=buckets, **labels)


def emit_event(kind: str, **fields):
    """Event on the active log; silently dropped when disabled."""
    s = _active
    if s is None:
        return None
    return s.events.emit(kind, **fields)
