"""Tracing, metrics, and structured-event observability.

The measurement substrate for the whole stack: where time, energy, and
repair budget go — per layer, per tile, per step — without perturbing a
single numerical result.  Three sinks, one opt-in session:

- **Span tracer** (:mod:`repro.telemetry.tracer`): nestable, thread-safe
  spans carrying wall time plus hardware-event deltas, exportable to
  Chrome ``trace_event`` JSON (open in ``chrome://tracing`` or
  `Perfetto <https://ui.perfetto.dev>`_) and JSONL.
- **Metrics registry** (:mod:`repro.telemetry.metrics`): counters,
  gauges, fixed-bucket histograms; Prometheus text and JSON exporters.
  Spans and metrics also export to OTLP-model dicts
  (:mod:`repro.telemetry.otlp`, schema-checked, no OpenTelemetry
  dependency), and :mod:`repro.telemetry.rollup` provides the always-on
  windowed serving rollups the fleet controller reads.
- **Structured event log** (:mod:`repro.telemetry.events`): timestamped
  machine-parseable records for repairs, rollbacks, NaN aborts,
  checkpoints, and degradation.

Guarantees:

- **Opt-in, near-zero overhead when disabled**: no session → every hook
  is one global read returning a shared no-op
  (``benchmarks/bench_telemetry_overhead.py`` enforces < 2% on the
  batched forward path).
- **Non-perturbing**: hooks only *read* event counters and never touch
  an RNG; telemetry-enabled runs are bit-identical to disabled runs
  (outputs, weights, event counters — property-tested).
- **Checkpoint-safe**: span IDs come from a locked counter and no
  wall-clock value enters any checkpointed state, so the save→load and
  crash-resume bit-identity guarantees of :mod:`repro.runtime` hold with
  tracing on.

Entry points: ``python -m repro trace`` (run a workload, emit
``.trace.json`` + metrics dump), ``--metrics-out`` on ``repro train`` /
``repro faults``, and the :func:`session` context manager for library
use.  :mod:`repro.telemetry.log` wires the ``repro.*`` ``logging``
hierarchy (NullHandler default; the CLI's ``-v``/``--debug`` flags
attach a handler).
"""

from repro.telemetry.events import Event, EventLog, NullEventLog
from repro.telemetry.log import configure_cli_logging, get_logger, reset_cli_logging
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    parse_prometheus_text,
)
from repro.telemetry.otlp import (
    encode_protobuf,
    metrics_to_otlp,
    otlp_protobuf_available,
    spans_to_otlp,
    validate_otlp,
)
from repro.telemetry.rollup import RollupStats, ServingRollup
from repro.telemetry.session import (
    REPAIR_TIERS,
    WELL_KNOWN_COUNTERS,
    TelemetrySession,
    active,
    counter,
    disable,
    emit_event,
    enable,
    enabled,
    gauge,
    histogram,
    session,
    trace_span,
)
from repro.telemetry.snapshot import HardwareDelta, HardwareSnapshot
from repro.telemetry.tracer import (
    NullTracer,
    SpanRecord,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "HardwareDelta",
    "HardwareSnapshot",
    "Histogram",
    "MetricsRegistry",
    "NullEventLog",
    "NullMetrics",
    "NullTracer",
    "REPAIR_TIERS",
    "RollupStats",
    "ServingRollup",
    "SpanRecord",
    "TelemetrySession",
    "Tracer",
    "WELL_KNOWN_COUNTERS",
    "active",
    "configure_cli_logging",
    "counter",
    "disable",
    "emit_event",
    "enable",
    "enabled",
    "encode_protobuf",
    "gauge",
    "get_logger",
    "histogram",
    "metrics_to_otlp",
    "otlp_protobuf_available",
    "parse_prometheus_text",
    "reset_cli_logging",
    "session",
    "spans_to_otlp",
    "trace_span",
    "validate_chrome_trace",
    "validate_otlp",
]
