"""Counters, gauges, and fixed-bucket histograms with Prometheus export.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name,
labels)`` — asking twice returns the same instrument — and renders the
whole population as Prometheus text exposition format
(:meth:`~MetricsRegistry.to_prometheus`) or JSON
(:meth:`~MetricsRegistry.to_json`).  Instruments are deliberately simple:
no timestamps, no background threads, no randomness — updating a metric
can never perturb a seeded simulation.

Histograms use *fixed* bucket bounds chosen at creation (cumulative
``le`` semantics, ``+Inf`` implicit), so two runs observing the same
values render byte-identical dumps.

Lock granularity: the registry lock covers *lookup/creation only*.
Updates (``inc``/``set``/``observe``) take the instrument's own lock —
a few-instruction critical section with no cross-instrument contention —
so serving worker threads hammering disjoint instruments never serialize
against each other, and read-modify-write updates (counter adds,
histogram sum/count/bucket triples) stay atomic under concurrency.

:func:`parse_prometheus_text` is the self-check half: the CI smoke gate
parses every dump it emits, so a formatting regression fails loudly.
"""

from __future__ import annotations

import json
import math
import re
import threading
from pathlib import Path

from repro.errors import ConfigError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds — log-spaced to cover losses,
#: seconds, and joules alike.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 100.0
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ConfigError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels: dict) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ConfigError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value", "_lock")

    def __init__(self, name: str, labels: tuple, help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self.value += amount


#: Timed gauge samples kept per instrument (oldest dropped beyond this).
GAUGE_SAMPLE_LIMIT = 4096


class Gauge:
    """Last-write-wins value, optionally carrying timed samples.

    :meth:`set_at` records ``(t_s, value)`` pairs alongside the live
    value (bounded at :data:`GAUGE_SAMPLE_LIMIT`, oldest dropped), which
    is how live power-trace streaming lands in the metrics registry: the
    Prometheus export shows the latest value, the JSON export carries
    the whole sampled series.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value", "_samples", "_lock")

    def __init__(self, name: str, labels: tuple, help: str) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0
        self._samples: list[tuple[float, float]] = []
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        value = float(value)
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def set_at(self, value: float, t_s: float) -> None:
        """Set the value and record a ``(t_s, value)`` timed sample."""
        value, t_s = float(value), float(t_s)
        with self._lock:
            self.value = value
            self._samples.append((t_s, value))
            if len(self._samples) > GAUGE_SAMPLE_LIMIT:
                del self._samples[: len(self._samples) - GAUGE_SAMPLE_LIMIT]

    def samples(self) -> tuple[tuple[float, float], ...]:
        """Timed ``(t_s, value)`` samples recorded via :meth:`set_at`."""
        with self._lock:
            return tuple(self._samples)


class Histogram:
    """Fixed-bucket distribution (cumulative ``le`` buckets + sum/count)."""

    kind = "histogram"
    __slots__ = (
        "name", "labels", "help", "bounds", "bucket_counts", "sum", "count",
        "_lock",
    )

    def __init__(
        self, name: str, labels: tuple, help: str, buckets=DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(
                f"histogram {name} buckets must be strictly increasing, got {buckets}"
            )
        self.name = name
        self.labels = labels
        self.help = help
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        # Bucket search happens outside the lock (bounds are immutable);
        # the sum/count/bucket triple updates atomically inside it so a
        # concurrent export never sees a torn sample.
        index = None
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.sum += value
            self.count += 1
            # Per-bucket (non-cumulative) storage; the Prometheus exporter
            # accumulates into the format's cumulative ``le`` semantics.
            if index is not None:
                self.bucket_counts[index] += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """Consistent ``(bucket_counts, sum, count)`` under the lock."""
        with self._lock:
            return list(self.bucket_counts), self.sum, self.count


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_at(self, value: float, t_s: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Thread-safe get-or-create registry of instruments."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (name, labels) -> instrument, in creation order.
        self._instruments: dict[tuple, object] = {}

    def _get_or_create(self, cls, name, labels, help, **kwargs):
        key = (_check_name(name), _check_labels(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(key[0], key[1], help, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ConfigError(
                    f"metric {name} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        """Get or create a histogram with fixed bucket bounds."""
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    def instruments(self) -> list:
        """All registered instruments, in creation order."""
        with self._lock:
            return list(self._instruments.values())

    # -- exports -------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        by_name: dict[str, list] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: list[str] = []
        for name in sorted(by_name):
            family = by_name[name]
            first = family[0]
            if first.help:
                lines.append(f"# HELP {name} {first.help}")
            lines.append(f"# TYPE {name} {first.kind}")
            for inst in family:
                labels = _format_labels(inst.labels)
                if isinstance(inst, Histogram):
                    bucket_counts, total_sum, total_count = inst.snapshot()
                    cumulative = 0
                    for bound, count in zip(inst.bounds, bucket_counts):
                        cumulative += count
                        le = dict(inst.labels)
                        le["le"] = _format_value(bound)
                        lines.append(
                            f"{name}_bucket{_format_labels(_check_labels(le))} "
                            f"{cumulative}"
                        )
                    le = dict(inst.labels)
                    le["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket{_format_labels(_check_labels(le))} "
                        f"{total_count}"
                    )
                    lines.append(f"{name}_sum{labels} {_format_value(total_sum)}")
                    lines.append(f"{name}_count{labels} {total_count}")
                else:
                    lines.append(f"{name}{labels} {_format_value(inst.value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """JSON-shaped dump: one record per instrument."""
        out = []
        for inst in self.instruments():
            record = {
                "name": inst.name,
                "kind": inst.kind,
                "labels": dict(inst.labels),
                "help": inst.help,
            }
            if isinstance(inst, Histogram):
                bucket_counts, total_sum, total_count = inst.snapshot()
                record["buckets"] = list(inst.bounds)
                record["bucket_counts"] = bucket_counts
                record["sum"] = total_sum
                record["count"] = total_count
            else:
                record["value"] = inst.value
                if isinstance(inst, Gauge):
                    samples = inst.samples()
                    if samples:
                        record["samples"] = [[t, v] for t, v in samples]
            out.append(record)
        return {"metrics": out}

    def write_prometheus(self, path: str | Path) -> Path:
        """Write :meth:`to_prometheus` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_prometheus(), encoding="utf-8")
        return path

    def write_json(self, path: str | Path) -> Path:
        """Write :meth:`to_json` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2), encoding="utf-8")
        return path


class NullMetrics:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels
    ) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return NULL_INSTRUMENT


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse Prometheus exposition text into ``{sample_key: value}``.

    The sample key is ``name`` or ``name{label="v",...}`` exactly as
    rendered.  Raises :class:`ValueError` on any malformed line — the CI
    smoke gate uses this as a round-trip check on emitted dumps.
    """
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {raw!r}") from exc
        samples[match.group("name") + (match.group("labels") or "")] = value
    return samples
