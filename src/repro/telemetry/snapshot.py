"""The one delta-snapshot implementation for hardware event attribution.

Everything that measures "what did the hardware do inside this region" —
the span tracer's accelerator-attached spans and the
:class:`~repro.arch.profiler.Profiler` alike — goes through
:class:`HardwareSnapshot`: capture on entry, :meth:`~HardwareSnapshot.
delta` on exit.  Counters come from the accelerator's
:class:`~repro.arch.accelerator.EventCounters` and (in detail mode) each
PE's :class:`~repro.arch.weight_bank.BankStats`, so measurement adds no
bookkeeping to the hot paths themselves and never mutates accelerator
state — which is what keeps telemetry-enabled runs bit-identical to
disabled ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.weight_bank import BankStats


@dataclass(frozen=True)
class HardwareDelta:
    """Events accumulated between a snapshot and a later observation."""

    #: ``EventCounters`` delta (later minus snapshot).
    counters: object
    #: Per-PE ``BankStats`` deltas keyed by PE index; empty unless the
    #: snapshot was captured with ``detail=True``.  PEs allocated after
    #: the snapshot (a tile migration) diff against a zero baseline.
    per_pe: dict[int, BankStats]


class HardwareSnapshot:
    """Immutable capture of an accelerator's cumulative event state."""

    __slots__ = ("_counters", "_bank")

    def __init__(self, counters, bank: dict[int, BankStats] | None) -> None:
        self._counters = counters
        self._bank = bank

    @classmethod
    def capture(cls, accelerator, detail: bool = False) -> "HardwareSnapshot":
        """Snapshot ``accelerator.counters`` (and per-PE stats if ``detail``)."""
        bank = None
        if detail:
            bank = {
                i: pe.bank.stats.merge(BankStats())
                for i, pe in enumerate(accelerator.pes)
            }
        return cls(accelerator.counters.snapshot(), bank)

    def delta(self, accelerator) -> HardwareDelta:
        """Events the accelerator accumulated since this snapshot."""
        per_pe: dict[int, BankStats] = {}
        if self._bank is not None:
            for i, pe in enumerate(accelerator.pes):
                base = self._bank.get(i, BankStats())
                per_pe[i] = pe.bank.stats.diff(base)
        return HardwareDelta(
            counters=accelerator.counters.diff(self._counters),
            per_pe=per_pe,
        )
