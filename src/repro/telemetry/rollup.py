"""Always-on windowed serving rollups for closed-loop control.

The fleet controller needs live p99 / attainment / shed-rate / queue /
power signals, but it must **not** read the opt-in telemetry session:
control decisions routed through an opt-in sink would differ between
telemetry-on and telemetry-off runs, breaking the repo-wide guarantee
that enabling telemetry perturbs nothing.  :class:`ServingRollup` is the
dedicated always-on sink instead — fed directly by
:class:`~repro.serving.server.TridentServer` (``rollup=`` constructor
argument), pure Python, deterministic, and cheap enough to leave on for
every fleet run.

Samples are timestamped with the *virtual* clock and pruned against a
trailing window, so :meth:`ServingRollup.window_stats` is a pure
function of (events so far, now, window) — identical on replay.

Cost model: every aggregate is maintained **incrementally** — updated
when a sample is recorded and reversed when it ages out of the window —
so a controller tick reads the rollup in O(pruned samples), amortized
O(1) per sample over the run, instead of rescanning the whole window.
That is what keeps the control loop under the < 1%-of-serve-wall gate
(``benchmarks/bench_fleet_controller.py``) even when a large fleet
pushes thousands of completions through one tick window.  The one
slo-dependent counter (SLO-met completions) is re-armed by a single
scan if a caller switches grading targets mid-run; every other
aggregate is target-independent.

Latency p99 is read from a fixed geometric bucket ladder (upper bucket
bound, ~26% relative resolution) rather than an exact order statistic —
exact windowed quantiles would reintroduce the per-tick scan, and the
controller grades on attainment, not on the quantile itself.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left
from collections import deque

from repro.errors import ServingError

#: Geometric latency-bucket bounds for the windowed p99 estimate:
#: 10 buckets per decade from 10 ns to 10 ms.
P99_BOUNDS: tuple[float, ...] = tuple(
    1e-8 * 10.0 ** (i / 10.0) for i in range(61)
)


@dataclasses.dataclass(frozen=True)
class RollupStats:
    """One windowed reading of the serving signals the controller acts on."""

    #: Window the stats cover, ``(now - window_s, now]``.
    window_s: float
    completions: int
    sheds: int
    #: Completed-within-SLO fraction over *organic* terminations in the
    #: window — sheds count as misses, except ``degraded_shed``: those
    #: are the controller's own policy refusals, and grading them as SLO
    #: failures would make degraded mode self-sustaining (the ladder's
    #: exit threshold could never be met while its floor is active).
    #: 1.0 when nothing terminated organically.
    attainment: float
    #: Organic shed fraction over organic terminations in the window.
    shed_rate: float
    #: p99 latency over window completions, as the upper bound of its
    #: geometric bucket (see :data:`P99_BOUNDS`); ``inf`` when any
    #: request was organically shed (a shed request never met its latency
    #: target), 0.0 when the window is empty.
    p99_latency_s: float
    shed_by_priority: dict[int, int]
    shed_by_reason: dict[str, int]
    shed_by_tenant: dict[str, int]
    terminated_by_tenant: dict[str, int]
    #: Deepest queue observation in the window (0 when unobserved).
    max_queue_depth: int
    last_queue_depth: int
    #: Mean of power samples recorded in the window [W].
    mean_power_w: float
    #: Escalated silent-data-corruption incidents in the window — batches
    #: that failed ABFT attestation beyond local recovery.  Defaulted so
    #: pre-SDC constructions keep working.
    sdc_count: int = 0
    sdc_by_worker: dict[int, int] = dataclasses.field(default_factory=dict)

    def tenant_shed_rate(self, tenant: str) -> float:
        """Windowed shed fraction for one tenant (0.0 when silent)."""
        total = self.terminated_by_tenant.get(tenant, 0)
        if total == 0:
            return 0.0
        return self.shed_by_tenant.get(tenant, 0) / total

    def sdc_rate(self) -> float:
        """Escalated-SDC fraction over window completions + SDC failures.

        The denominator adds the SDC incidents themselves (an escalated
        batch never completes on that worker), so a worker producing
        *only* corrupt batches reads 1.0, not 0/0.
        """
        total = self.completions + self.sdc_count
        if total == 0:
            return 0.0
        return self.sdc_count / total


def _dict_inc(d: dict, key, amount: int = 1) -> None:
    d[key] = d.get(key, 0) + amount


def _dict_dec(d: dict, key) -> None:
    value = d.get(key, 0) - 1
    if value <= 0:
        d.pop(key, None)
    else:
        d[key] = value


class ServingRollup:
    """Trailing-window aggregation of completions, sheds, queue, power."""

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ServingError(f"rollup window must be positive, got {window_s}")
        self.window_s = float(window_s)
        # Raw samples, time-ordered, kept only until they age out.
        # (t, latency_s, deadline_met, priority, tenant)
        self._completions: deque = deque()
        # (t, reason, priority, tenant)
        self._sheds: deque = deque()
        self._power: deque = deque()  # (t, watts)
        # Incremental aggregates over the unpruned samples.
        self._n_completions = 0
        self._n_organic_sheds = 0
        self._n_sheds = 0
        self._latency_buckets = [0] * (len(P99_BOUNDS) + 1)
        self._shed_by_priority: dict[int, int] = {}
        self._shed_by_reason: dict[str, int] = {}
        self._shed_by_tenant: dict[str, int] = {}
        self._terminated_by_tenant: dict[str, int] = {}
        self._power_sum = 0.0
        self._sdc: deque = deque()  # (t, worker_id)
        self._n_sdc = 0
        self._sdc_by_worker: dict[int, int] = {}
        # SLO-met count is the one target-dependent aggregate: armed on
        # the first read and rebuilt (single scan) if the target changes.
        self._armed_slo: float | None = None
        self._met = 0
        # Sliding-window max of queue depth: monotonic deque of (t, depth)
        # with strictly decreasing depths; dominated samples can never be
        # the window max and are discarded at record time.
        self._queue_max: deque = deque()
        self._queue_last: tuple[float, int] | None = None

    # -- feed (called by the server / controller) ----------------------
    # Every record call prunes samples that have aged out of the
    # construction window — upkeep rides on the serve path (amortized
    # O(1) per sample), memory stays bounded even if nothing ever reads
    # the rollup, and the controller's read tick pays only for residue.
    def record_completion(
        self,
        t_s: float,
        latency_s: float,
        deadline_met: bool,
        priority: int = 0,
        tenant: str = "",
    ) -> None:
        """One served request, timestamped at its finish instant."""
        t_s, latency_s = float(t_s), float(latency_s)
        deadline_met = bool(deadline_met)
        self._prune(t_s - self.window_s)
        self._completions.append(
            (t_s, latency_s, deadline_met, int(priority), tenant)
        )
        self._n_completions += 1
        self._latency_buckets[bisect_left(P99_BOUNDS, latency_s)] += 1
        _dict_inc(self._terminated_by_tenant, tenant)
        if (
            self._armed_slo is not None
            and deadline_met
            and latency_s <= self._armed_slo
        ):
            self._met += 1

    def record_shed(
        self, t_s: float, reason: str, priority: int = 0, tenant: str = ""
    ) -> None:
        """One rejected request, timestamped at the shed decision."""
        reason = str(reason)
        t_s = float(t_s)
        self._prune(t_s - self.window_s)
        self._sheds.append((t_s, reason, int(priority), tenant))
        self._n_sheds += 1
        if reason != "degraded_shed":
            self._n_organic_sheds += 1
        _dict_inc(self._shed_by_priority, int(priority))
        _dict_inc(self._shed_by_reason, reason)
        _dict_inc(self._shed_by_tenant, tenant)
        _dict_inc(self._terminated_by_tenant, tenant)

    def record_queue_depth(self, t_s: float, depth: int) -> None:
        """Queue-depth observation (server records on admit/dispatch)."""
        t_s, depth = float(t_s), int(depth)
        self._queue_last = (t_s, depth)
        while self._queue_max and self._queue_max[-1][1] <= depth:
            self._queue_max.pop()
        self._queue_max.append((t_s, depth))

    def record_power(self, t_s: float, watts: float) -> None:
        """Fleet power-draw observation [W]."""
        watts = float(watts)
        t_s = float(t_s)
        self._prune(t_s - self.window_s)
        self._power.append((t_s, watts))
        self._power_sum += watts

    def record_sdc(self, t_s: float, worker_id: int = 0) -> None:
        """One escalated SDC incident (an ``IntegrityFault`` completion)."""
        t_s, worker_id = float(t_s), int(worker_id)
        self._prune(t_s - self.window_s)
        self._sdc.append((t_s, worker_id))
        self._n_sdc += 1
        _dict_inc(self._sdc_by_worker, worker_id)

    # -- read (called by the controller each tick) ---------------------
    def _prune(self, horizon: float) -> None:
        """Expire samples at or before ``horizon``, reversing aggregates."""
        completions = self._completions
        while completions and completions[0][0] <= horizon:
            _, latency, deadline_met, _priority, tenant = completions.popleft()
            self._n_completions -= 1
            self._latency_buckets[bisect_left(P99_BOUNDS, latency)] -= 1
            _dict_dec(self._terminated_by_tenant, tenant)
            if (
                self._armed_slo is not None
                and deadline_met
                and latency <= self._armed_slo
            ):
                self._met -= 1
        sheds = self._sheds
        while sheds and sheds[0][0] <= horizon:
            _, reason, priority, tenant = sheds.popleft()
            self._n_sheds -= 1
            if reason != "degraded_shed":
                self._n_organic_sheds -= 1
            _dict_dec(self._shed_by_priority, priority)
            _dict_dec(self._shed_by_reason, reason)
            _dict_dec(self._shed_by_tenant, tenant)
            _dict_dec(self._terminated_by_tenant, tenant)
        power = self._power
        while power and power[0][0] <= horizon:
            self._power_sum -= power.popleft()[1]
        sdc = self._sdc
        while sdc and sdc[0][0] <= horizon:
            _, worker_id = sdc.popleft()
            self._n_sdc -= 1
            _dict_dec(self._sdc_by_worker, worker_id)
        queue_max = self._queue_max
        while queue_max and queue_max[0][0] <= horizon:
            queue_max.popleft()

    def _arm(self, slo_latency_s: float) -> None:
        """(Re)build the SLO-met counter against a new grading target."""
        self._armed_slo = slo_latency_s
        self._met = sum(
            1
            for _, latency, deadline_met, _, _ in self._completions
            if deadline_met and latency <= slo_latency_s
        )

    def _p99_from_buckets(self) -> float:
        if self._n_completions == 0:
            return 0.0
        rank = 0.99 * self._n_completions
        cumulative = 0
        for index, count in enumerate(self._latency_buckets):
            cumulative += count
            if cumulative >= rank:
                if index >= len(P99_BOUNDS):
                    return float("inf")
                return P99_BOUNDS[index]
        return P99_BOUNDS[-1]  # pragma: no cover - rank <= total by def

    def window_stats(
        self, now_s: float, slo_latency_s: float, window_s: float | None = None
    ) -> RollupStats:
        """Aggregate the trailing window ending at ``now_s``.

        ``slo_latency_s`` is the attainment target to grade completions
        against — passed in (not stored) because the controller itself
        retunes the SLO and must grade against its *current* target.
        ``window_s`` may shrink the window per call but never exceed the
        construction window — record-time pruning has already expired
        anything older.
        """
        window = float(window_s) if window_s is not None else self.window_s
        if window > self.window_s:
            raise ServingError(
                f"per-call window {window:g}s exceeds the rollup's "
                f"construction window {self.window_s:g}s (older samples "
                "already expired)"
            )
        self._prune(now_s - window)
        if self._armed_slo != float(slo_latency_s):
            self._arm(float(slo_latency_s))
        terminated = self._n_completions + self._n_organic_sheds
        attainment = self._met / terminated if terminated else 1.0
        shed_rate = self._n_organic_sheds / terminated if terminated else 0.0
        if self._n_organic_sheds:
            p99 = float("inf")
        else:
            p99 = self._p99_from_buckets()
        last = self._queue_last
        last_depth = 0 if last is None or last[0] <= now_s - window else last[1]
        return RollupStats(
            window_s=window,
            completions=self._n_completions,
            sheds=self._n_sheds,
            attainment=attainment,
            shed_rate=shed_rate,
            p99_latency_s=p99,
            shed_by_priority=dict(self._shed_by_priority),
            shed_by_reason=dict(self._shed_by_reason),
            shed_by_tenant=dict(self._shed_by_tenant),
            terminated_by_tenant=dict(self._terminated_by_tenant),
            max_queue_depth=self._queue_max[0][1] if self._queue_max else 0,
            last_queue_depth=last_depth,
            mean_power_w=(
                self._power_sum / len(self._power) if self._power else 0.0
            ),
            sdc_count=self._n_sdc,
            sdc_by_worker=dict(self._sdc_by_worker),
        )
