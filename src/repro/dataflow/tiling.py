"""Weight-stationary tiling of layer GEMMs onto photonic weight banks.

A compute layer lowers to ``groups`` GEMMs of shape (M x K) @ (K x N)
(:class:`repro.nn.layers.GEMMShape`).  A J x N_bank photonic bank holds one
(J x N_bank) weight tile at a time; under the weight-stationary dataflow the
tile is programmed once and all N output positions (times the batch) stream
through it before the next tile is programmed (paper Sec. V-A: "weights are
pre-loaded, after which inference can be performed on many inputs without
re-tuning").

The schedule accounts for edge tiles exactly: programming energy is charged
per *occupied* cell, not per bank slot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.nn.layers import GEMMShape


@dataclass(frozen=True)
class TileSchedule:
    """Tiling of one layer's GEMM(s) onto banks of ``rows x cols``."""

    gemm: GEMMShape
    bank_rows: int
    bank_cols: int

    def __post_init__(self) -> None:
        if self.bank_rows < 1 or self.bank_cols < 1:
            raise ScheduleError("bank dimensions must be positive")

    # ------------------------------------------------------------------
    @property
    def tiles_m(self) -> int:
        """Tiles along the output-channel (row) dimension, per group."""
        return math.ceil(self.gemm.m / self.bank_rows)

    @property
    def tiles_k(self) -> int:
        """Tiles along the reduction (column) dimension, per group."""
        return math.ceil(self.gemm.k / self.bank_cols)

    @property
    def tiles_per_group(self) -> int:
        """Weight tiles per GEMM group."""
        return self.tiles_m * self.tiles_k

    @property
    def n_tiles(self) -> int:
        """Total weight tiles across all groups."""
        return self.tiles_per_group * self.gemm.groups

    @property
    def positions(self) -> int:
        """Output positions (GEMM N) streamed per tile residency."""
        return self.gemm.n

    @property
    def cells(self) -> int:
        """Exact weight cells programmed (== weight elements)."""
        return self.gemm.m * self.gemm.k * self.gemm.groups

    @property
    def symbols(self) -> int:
        """Analog symbols per single inference: every tile sees every
        output position once."""
        return self.n_tiles * self.positions

    @property
    def partial_sum_elements(self) -> int:
        """Partial results needing electronic accumulation per inference.

        When the reduction does not fit one bank (tiles_k > 1) every output
        element is touched (tiles_k - 1) extra times.
        """
        outputs = self.gemm.m * self.gemm.n * self.gemm.groups
        return outputs * (self.tiles_k - 1)

    @property
    def output_elements(self) -> int:
        """Final output elements per inference."""
        return self.gemm.m * self.gemm.n * self.gemm.groups

    @property
    def mean_occupancy(self) -> float:
        """Average fraction of bank cells used across tiles (edge effects)."""
        full = self.n_tiles * self.bank_rows * self.bank_cols
        return self.cells / full

    def rounds(self, n_pes: int) -> int:
        """Sequential rounds when tiles are spread over ``n_pes`` PEs."""
        if n_pes < 1:
            raise ScheduleError(f"n_pes must be positive, got {n_pes}")
        return math.ceil(self.n_tiles / n_pes)
