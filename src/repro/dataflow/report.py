"""Cost records produced by the dataflow analyses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError


@dataclass(frozen=True)
class LayerCost:
    """Per-layer, per-inference cost (batch effects already amortized)."""

    name: str
    macs: int
    time_s: float
    energy_j: float
    #: Component energies [J]: tuning / streaming / hold / conversion /
    #: memory — keys depend on the architecture.
    energy_breakdown: dict[str, float] = field(default_factory=dict)
    symbols: int = 0
    tiles: int = 0
    rounds: int = 0

    def __post_init__(self) -> None:
        if self.time_s < 0 or self.energy_j < 0:
            raise ScheduleError(f"{self.name}: negative cost")


@dataclass(frozen=True)
class ModelCost:
    """Whole-model inference cost for one accelerator."""

    model: str
    accelerator: str
    layers: tuple[LayerCost, ...]
    total_macs: int

    @property
    def time_s(self) -> float:
        """Latency of one inference [s]."""
        return sum(layer.time_s for layer in self.layers)

    @property
    def energy_j(self) -> float:
        """Energy of one inference [J]."""
        return sum(layer.energy_j for layer in self.layers)

    @property
    def inferences_per_second(self) -> float:
        """Steady-state throughput (Fig 6's metric)."""
        t = self.time_s
        if t <= 0:
            raise ScheduleError(f"{self.model}: non-positive inference time")
        return 1.0 / t

    @property
    def effective_tops(self) -> float:
        """Achieved tera-ops/s (2 ops per MAC)."""
        return 2.0 * self.total_macs * self.inferences_per_second / 1e12

    @property
    def energy_per_mac_j(self) -> float:
        """Average energy per MAC [J]."""
        if self.total_macs <= 0:
            raise ScheduleError(f"{self.model}: no MACs")
        return self.energy_j / self.total_macs

    def energy_component(self, key: str) -> float:
        """Sum one energy-breakdown component across layers [J]."""
        return sum(layer.energy_breakdown.get(key, 0.0) for layer in self.layers)

    @property
    def average_power_w(self) -> float:
        """Energy / time — sanity check against the power budget."""
        return self.energy_j / self.time_s
