"""Maestro-style analytical dataflow cost model (weight-stationary).

The paper performs "a per-layer analysis using Maestro to yield latency and
energy metrics" (Sec. IV).  This package is that analysis, rebuilt:

- :mod:`repro.dataflow.tiling` — how a layer's GEMM tiles onto J x N
  photonic weight banks across P PEs.
- :mod:`repro.dataflow.cost_model` — per-layer latency/energy roll-up for
  photonic architectures (Trident and the photonic baselines are parameter
  points of the same model).
- :mod:`repro.dataflow.roofline` — the electronic edge-accelerator model
  (compute-bound vs bandwidth-bound per layer).
- :mod:`repro.dataflow.report` — cost records and aggregation.
"""

from repro.dataflow.cost_model import (
    PhotonicArch,
    PhotonicCostModel,
    forward_batch_latency_s,
)
from repro.dataflow.power_trace import PowerTrace, power_trace, stream_power_trace
from repro.dataflow.report import LayerCost, ModelCost
from repro.dataflow.schedule_sim import (
    LayerSimResult,
    ModelSimResult,
    analytical_makespan_s,
    simulate_layer,
    simulate_model,
)
from repro.dataflow.roofline import ElectronicAccelerator
from repro.dataflow.tiling import TileSchedule

__all__ = [
    "analytical_makespan_s",
    "ElectronicAccelerator",
    "LayerSimResult",
    "ModelSimResult",
    "simulate_layer",
    "simulate_model",
    "forward_batch_latency_s",
    "LayerCost",
    "ModelCost",
    "PhotonicArch",
    "PhotonicCostModel",
    "power_trace",
    "PowerTrace",
    "stream_power_trace",
    "TileSchedule",
]
