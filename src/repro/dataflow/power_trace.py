"""Chip power traces reconstructed from simulated tile schedules.

Table III is a static budget; this module makes it dynamic.  From the
discrete-event tile schedule (:mod:`repro.dataflow.schedule_sim`) each PE
is, at any instant, either *writing* (drawing the full Table III power,
tuning slot included), *streaming* (post-tuning power — the paper's
0.67 W -> 0.11 W drop), or idle.  Sampling the event timeline yields the
chip's power-vs-time trace, which must stay under the 30 W budget at every
instant — an invariant the tests enforce rather than assume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.cost_model import PhotonicArch
from repro.dataflow.schedule_sim import LayerSimResult
from repro.errors import ConfigError
from repro.telemetry.metrics import NULL_INSTRUMENT
from repro.telemetry.session import gauge as _metric_gauge

#: The well-known gauge both modeled traces and the live functional path
#: stream power samples into (timed samples via ``Gauge.set_at``).
POWER_GAUGE = "repro_power_draw_w"


@dataclass(frozen=True)
class PowerTrace:
    """Sampled chip power over one layer's schedule."""

    times_s: np.ndarray
    power_w: np.ndarray
    write_power_pe_w: float
    stream_power_pe_w: float

    @property
    def peak_w(self) -> float:
        """Maximum instantaneous chip power [W]."""
        return float(self.power_w.max()) if self.power_w.size else 0.0

    @property
    def mean_w(self) -> float:
        """Average chip power over the trace [W]."""
        return float(self.power_w.mean()) if self.power_w.size else 0.0

    def energy_j(self) -> float:
        """Trapezoidal integral of the trace."""
        if self.times_s.size < 2:
            return 0.0
        return float(np.trapezoid(self.power_w, self.times_s))


def power_trace(
    sim: LayerSimResult,
    arch: PhotonicArch,
    n_samples: int = 2000,
) -> PowerTrace:
    """Sample chip power across a simulated layer's makespan.

    At sample time t, a PE draws the sizing (write) power if t falls in one
    of its write windows, the streaming power if in a streaming window, and
    nothing when idle.  Vectorized: one interval-containment test per event
    array, not per event.
    """
    if n_samples < 2:
        raise ConfigError("need at least two samples")
    if not sim.events:
        raise ConfigError("simulation has no events (run with keep_events=True)")
    t = np.linspace(0.0, sim.makespan_s, n_samples)
    starts = np.array([e.start_s for e in sim.events])
    write_ends = np.array([e.write_end_s for e in sim.events])
    ends = np.array([e.end_s for e in sim.events])

    # (samples, events) interval membership, summed over events.
    tt = t[:, None]
    writing = ((tt >= starts) & (tt < write_ends)).sum(axis=1)
    streaming = ((tt >= write_ends) & (tt < ends)).sum(axis=1)
    power = writing * arch.sizing_power_pe_w + streaming * arch.streaming_power_pe_w
    return PowerTrace(
        times_s=t,
        power_w=power.astype(np.float64),
        write_power_pe_w=arch.sizing_power_pe_w,
        stream_power_pe_w=arch.streaming_power_pe_w,
    )


def stream_power_trace(
    trace: PowerTrace, t_offset_s: float = 0.0, gauge_name: str = POWER_GAUGE
) -> int:
    """Replay a modeled power trace into the active telemetry session.

    Each sampled instant lands as a timed gauge update
    (:meth:`~repro.telemetry.metrics.Gauge.set_at`), so a modeled
    schedule's power draw shows up in the same ``repro_power_draw_w``
    series the live functional path feeds — watchable as it streams,
    not reconstructed post-hoc.  Returns the number of samples streamed
    (0 when telemetry is disabled).
    """
    gauge = _metric_gauge(
        gauge_name, "Chip power draw over hardware time [W]"
    )
    if gauge is NULL_INSTRUMENT:
        return 0
    for t, p in zip(trace.times_s, trace.power_w):
        gauge.set_at(float(p), float(t) + t_offset_s)
    return int(trace.times_s.size)
