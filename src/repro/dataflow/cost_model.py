"""Per-layer latency/energy roll-up for photonic accelerators.

One model covers Trident and the three photonic baselines: they are
parameter points of :class:`PhotonicArch` (tuning technology, symbol rate,
PE count at the 30 W budget, ADC/DAC presence, per-symbol extras).  The
paper's methodology (Sec. IV): apply the Table III device parameters to all
four architectures, scale each to 30 W, run the per-layer weight-stationary
analysis.

Cost structure per compute layer (batch ``B`` amortizes weight tuning —
"weights are pre-loaded, after which inference can be performed on many
inputs without re-tuning", Sec. V-A):

- **time**: ``rounds x (t_write + B x positions / f_symbol) / B``, where
  rounds spread the layer's weight tiles over the PEs; plus any DRAM
  transfer time not hidden by compute.
- **tuning energy**: programmed cells x per-cell write energy / B.
- **streaming energy**: one per-PE-symbol quantum (streaming power /
  symbol rate) per symbol, plus any per-symbol extras (VCSEL, MZM).
- **hold energy** (optional, off by default to match the paper's
  accounting): volatile tuning pays heater power over the streaming time.
  The ablation bench turns this on to show honest thermal-volatility cost.
- **conversion energy**: ADC per partial output sample and DAC per
  re-encoded output for digital-activation architectures; zero for
  Trident's photonic activation (its LDSU + reset power is already inside
  the streaming power, per Table III).
- **memory energy**: weight-stationary traffic (inputs re-streamed per
  row-tile, partial sums, output write-back, weight fetch) priced by the
  cache model; digital-activation architectures pay an extra output
  round-trip between layers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.cache import CacheModel
from repro.arch.config import TridentConfig
from repro.dataflow.report import LayerCost, ModelCost
from repro.dataflow.tiling import TileSchedule
from repro.errors import ConfigError, ScheduleError
from repro.nn.graph import INPUT, Network
from repro.nn.layers import TensorShape
from repro.telemetry.session import (
    active as _telemetry_active,
    trace_span as _trace_span,
)


@dataclass(frozen=True)
class PhotonicArch:
    """Architecture parameter point for the photonic cost model."""

    name: str
    n_pes: int
    symbol_rate_hz: float
    write_energy_per_cell_j: float
    write_time_s: float
    #: Per-PE power while streaming symbols [W] (post-tuning).
    streaming_power_pe_w: float
    #: Per-PE worst-case power used for the 30 W sizing [W].
    sizing_power_pe_w: float
    bank_rows: int = 16
    bank_cols: int = 16
    #: Volatile-tuning hold power per weight cell [W] (thermal: 1.7 mW).
    hold_power_per_cell_w: float = 0.0
    #: True when activation happens digitally via ADC + memory round-trip.
    digital_activation: bool = False
    #: ADC energy per converted output sample [J].
    adc_energy_per_sample_j: float = 0.0
    #: DAC / E-O re-encode energy per output element [J].
    dac_energy_per_sample_j: float = 0.0
    #: Additional per-symbol per-PE energy [J] (CrossLight VCSEL summation,
    #: PIXEL MZM accumulation).
    extra_symbol_energy_j: float = 0.0
    #: Usable weight resolution [bits] (thermal crosstalk: 6).
    weight_bits: int = 8

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ConfigError(f"{self.name}: n_pes must be positive")
        if self.symbol_rate_hz <= 0 or self.write_time_s <= 0:
            raise ConfigError(f"{self.name}: rates/times must be positive")
        for field_name in (
            "write_energy_per_cell_j",
            "streaming_power_pe_w",
            "sizing_power_pe_w",
            "hold_power_per_cell_w",
            "adc_energy_per_sample_j",
            "dac_energy_per_sample_j",
            "extra_symbol_energy_j",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{self.name}: {field_name} must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def trident(cls, config: TridentConfig | None = None) -> "PhotonicArch":
        """Trident's parameter point, straight from the config (Table III)."""
        config = config or TridentConfig()
        return cls(
            name="trident",
            n_pes=config.n_pes,
            symbol_rate_hz=config.symbol_rate_hz,
            write_energy_per_cell_j=config.tuning.write_energy_j,
            write_time_s=config.tuning.write_time_s,
            streaming_power_pe_w=config.pe_streaming_power_w,
            sizing_power_pe_w=config.pe_total_power_w,
            bank_rows=config.bank_rows,
            bank_cols=config.bank_cols,
            weight_bits=config.weight_bits,
        )

    @property
    def symbol_energy_j(self) -> float:
        """Per-PE energy of one streamed symbol [J]."""
        return self.streaming_power_pe_w / self.symbol_rate_hz + self.extra_symbol_energy_j

    @property
    def peak_tops(self) -> float:
        """Peak throughput with weights resident [TOPS]."""
        return (
            self.n_pes * self.bank_rows * self.bank_cols * 2.0 * self.symbol_rate_hz / 1e12
        )

    def scaled_to_budget(self, budget_w: float) -> "PhotonicArch":
        """Resize the PE count to a power budget (paper: 30 W)."""
        n = int(budget_w // self.sizing_power_pe_w)
        if n < 1:
            raise ConfigError(
                f"{self.name}: budget {budget_w} W below one PE "
                f"({self.sizing_power_pe_w:.3f} W)"
            )
        return replace(self, n_pes=n)


class PhotonicCostModel:
    """Weight-stationary analytical cost model for one architecture."""

    def __init__(
        self,
        arch: PhotonicArch,
        cache: CacheModel | None = None,
        batch: int = 128,
        charge_hold_power: bool = False,
        bytes_per_element: int = 1,
    ) -> None:
        if batch < 1:
            raise ConfigError(f"batch must be positive, got {batch}")
        if bytes_per_element < 1:
            raise ConfigError("bytes_per_element must be positive")
        self.arch = arch
        self.cache = cache or CacheModel()
        self.batch = batch
        self.charge_hold_power = charge_hold_power
        self.bytes_per_element = bytes_per_element

    # ------------------------------------------------------------------
    def layer_cost(
        self,
        name: str,
        schedule: TileSchedule,
        input_shape: TensorShape,
        fused_activation: bool,
    ) -> LayerCost:
        """Per-inference cost of one compute layer."""
        arch = self.arch
        B = self.batch
        rounds = schedule.rounds(arch.n_pes)

        # --- latency ----------------------------------------------------
        round_time = arch.write_time_s + B * schedule.positions / arch.symbol_rate_hz
        compute_time = rounds * round_time / B

        # --- tuning -------------------------------------------------------
        tuning_j = schedule.cells * arch.write_energy_per_cell_j / B

        # --- streaming ------------------------------------------------------
        streaming_j = schedule.symbols * arch.symbol_energy_j

        # --- volatile hold (off by default; see module docstring) -----------
        hold_j = 0.0
        if self.charge_hold_power and arch.hold_power_per_cell_w > 0:
            stream_time_per_tile = schedule.positions / arch.symbol_rate_hz
            cells_per_tile = schedule.cells / schedule.n_tiles
            hold_j = (
                arch.hold_power_per_cell_w
                * cells_per_tile
                * stream_time_per_tile
                * schedule.n_tiles
            )

        # --- conversions ------------------------------------------------------
        conversion_j = 0.0
        if arch.digital_activation:
            samples = schedule.output_elements * schedule.tiles_k
            conversion_j = (
                samples * arch.adc_energy_per_sample_j
                + schedule.output_elements * arch.dac_energy_per_sample_j
            )

        # --- memory traffic --------------------------------------------------
        bpe = self.bytes_per_element
        ifmap_bytes = input_shape.bytes(bpe)
        # Inputs are re-streamed once per row-tile (weight-stationary).
        input_traffic = self.cache.access(ifmap_bytes, times=schedule.tiles_m)
        # Partial sums: the working set is one output stripe; each extra
        # reduction tile reads and rewrites it once.
        out_bytes = schedule.output_elements * bpe
        partial_traffic = (
            self.cache.access(out_bytes, times=2 * (schedule.tiles_k - 1))
            if schedule.tiles_k > 1
            else None
        )
        # Outputs written once; digital activation adds a read-modify-write
        # round-trip (the ADC -> memory -> activation -> DAC path Trident
        # eliminates, Sec. III-C).
        out_bytes = schedule.output_elements * bpe
        out_times = 3 if arch.digital_activation and fused_activation else 1
        output_traffic = self.cache.access(out_bytes, times=out_times)
        # Weights fetched from backing store once per batch.
        weight_traffic = self.cache.access(schedule.cells * bpe, times=1)

        memory_j = (
            input_traffic.energy_j
            + (partial_traffic.energy_j if partial_traffic else 0.0)
            + output_traffic.energy_j
            + weight_traffic.energy_j / B
        )
        dram_time = (
            input_traffic.transfer_time_s
            + (partial_traffic.transfer_time_s if partial_traffic else 0.0)
            + output_traffic.transfer_time_s
            + weight_traffic.transfer_time_s / B
        )

        breakdown = {
            "tuning": tuning_j,
            "streaming": streaming_j,
            "hold": hold_j,
            "conversion": conversion_j,
            "memory": memory_j,
        }
        return LayerCost(
            name=name,
            macs=schedule.gemm.macs,
            time_s=max(compute_time, dram_time),
            energy_j=sum(breakdown.values()),
            energy_breakdown=breakdown,
            symbols=schedule.symbols,
            tiles=schedule.n_tiles,
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    def model_cost(self, network: Network) -> ModelCost:
        """Whole-network inference cost (compute layers; memory-only for
        pool/add/concat is folded into the neighbouring layers' traffic)."""
        stats = network.stats()
        layers: list[LayerCost] = []
        with _trace_span(
            "model_cost", model=network.name, arch=self.arch.name
        ):
            for record in stats.layers:
                if record.gemm is None:
                    continue
                sources = network.inputs_of(record.name)
                src = sources[0]
                input_shape = (
                    network.input_shape if src == INPUT else network.shape_of(src)
                )
                schedule = TileSchedule(
                    gemm=record.gemm,
                    bank_rows=self.arch.bank_rows,
                    bank_cols=self.arch.bank_cols,
                )
                layers.append(
                    self.layer_cost(
                        record.name, schedule, input_shape, record.fused_activation
                    )
                )
        if not layers:
            raise ScheduleError(f"{network.name}: no compute layers to cost")
        cost = ModelCost(
            model=network.name,
            accelerator=self.arch.name,
            layers=tuple(layers),
            total_macs=stats.total_macs,
        )
        session = _telemetry_active()
        if session is not None:
            # Export the *modeled* totals as gauges so a trace run carries
            # the analytical predictions next to the measured events.
            metrics = session.metrics
            for layer in layers:
                labels = {"model": network.name, "arch": self.arch.name,
                          "layer": layer.name}
                metrics.gauge(
                    "repro_modeled_layer_time_seconds",
                    "Analytical per-inference latency of one layer",
                    **labels,
                ).set(layer.time_s)
                metrics.gauge(
                    "repro_modeled_layer_energy_joules",
                    "Analytical per-inference energy of one layer",
                    **labels,
                ).set(layer.energy_j)
        return cost


# ---------------------------------------------------------------------------
# Serving-path latency estimate
# ---------------------------------------------------------------------------
def forward_batch_latency_s(
    arch: PhotonicArch,
    layer_reduction_tiles: "list[int] | tuple[int, ...]",
    batch: int,
    overhead_s: float = 0.0,
) -> float:
    """Per-batch latency estimate for a weight-stationary serving dispatch.

    The serving micro-batcher sizes batches against a latency SLO using
    this estimate: weights are already programmed (no write time), each
    layer streams its B-sample slab through its row tiles in parallel
    (they live on distinct PEs) while column *reduction* tiles serialize
    electronically — the same per-layer ``tiles_k`` term the functional
    engine's :meth:`~repro.arch.TridentAccelerator.pipeline_latency_s`
    charges, scaled by the batch.  ``overhead_s`` is the fixed
    per-dispatch cost (control-unit setup, DAC staging) that makes
    coalescing worthwhile in the first place.

    ``layer_reduction_tiles`` holds each mapped layer's column-tile count
    (``ceil(in_dim / bank_cols)``).
    """
    if batch < 1:
        raise ConfigError(f"batch must be positive, got {batch}")
    if overhead_s < 0:
        raise ConfigError(f"overhead must be non-negative, got {overhead_s}")
    if not layer_reduction_tiles:
        raise ConfigError("need at least one layer to estimate latency")
    if any(t < 1 for t in layer_reduction_tiles):
        raise ConfigError(
            f"reduction tile counts must be positive, got {layer_reduction_tiles}"
        )
    symbols = batch * sum(int(t) for t in layer_reduction_tiles)
    return overhead_s + symbols / arch.symbol_rate_hz
