"""Discrete-event tile-schedule simulator.

The analytical cost model (:mod:`repro.dataflow.cost_model`) uses closed
forms — ``rounds x (t_write + B x positions / f)`` — that silently assume
greedy list scheduling of identical tiles.  This module actually *runs*
that schedule: tiles are dispatched to the earliest-free PE, each occupying
it for its write + streaming duration, and the makespan and event-level
energy are measured from the resulting timeline.

Purpose: validation (tests assert the closed forms match the simulation
exactly for the uniform-tile case) and extensibility (non-uniform tiles,
stragglers, or PE heterogeneity can be studied by perturbing the events).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.dataflow.cost_model import PhotonicArch
from repro.dataflow.tiling import TileSchedule
from repro.errors import ConfigError, ScheduleError
from repro.nn.graph import Network
from repro.telemetry.session import trace_span as _trace_span


@dataclass(frozen=True)
class TileEvent:
    """One tile's residency on one PE."""

    pe: int
    tile: int
    start_s: float
    write_end_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Total residency time (write + stream) [s]."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class LayerSimResult:
    """Simulated execution of one layer's tile set."""

    name: str
    makespan_s: float
    events: tuple[TileEvent, ...]
    tuning_energy_j: float
    streaming_energy_j: float

    @property
    def n_tiles(self) -> int:
        """Number of tile residencies executed."""
        return len(self.events)

    def pe_utilization(self, n_pes: int) -> float:
        """Busy time over (PEs x makespan)."""
        busy = sum(e.duration_s for e in self.events)
        if self.makespan_s <= 0:
            return 1.0
        return busy / (n_pes * self.makespan_s)


def simulate_layer(
    name: str,
    schedule: TileSchedule,
    arch: PhotonicArch,
    batch: int = 1,
    keep_events: bool = True,
) -> LayerSimResult:
    """Greedy list-scheduling simulation of one layer's tiles.

    Every tile occupies a PE for ``t_write + batch x positions / f``;
    tiles dispatch in index order to the earliest-free PE (a heap).
    Edge tiles are charged their *actual* cell counts for tuning energy.
    """
    if batch < 1:
        raise ConfigError(f"batch must be positive, got {batch}")
    n_tiles = schedule.n_tiles
    stream_s = batch * schedule.positions / arch.symbol_rate_hz
    duration = arch.write_time_s + stream_s

    # Earliest-free-PE heap: (free_time, pe_index).
    heap = [(0.0, pe) for pe in range(arch.n_pes)]
    heapq.heapify(heap)
    events: list[TileEvent] = []
    makespan = 0.0
    for tile in range(n_tiles):
        free_at, pe = heapq.heappop(heap)
        start = free_at
        end = start + duration
        makespan = max(makespan, end)
        if keep_events:
            events.append(
                TileEvent(
                    pe=pe,
                    tile=tile,
                    start_s=start,
                    write_end_s=start + arch.write_time_s,
                    end_s=end,
                )
            )
        heapq.heappush(heap, (end, pe))

    tuning = schedule.cells * arch.write_energy_per_cell_j
    streaming = schedule.symbols * batch * arch.symbol_energy_j
    return LayerSimResult(
        name=name,
        makespan_s=makespan,
        events=tuple(events),
        tuning_energy_j=tuning,
        streaming_energy_j=streaming,
    )


@dataclass(frozen=True)
class ModelSimResult:
    """Simulated sequential execution of a network's compute layers."""

    model: str
    layers: tuple[LayerSimResult, ...]

    @property
    def makespan_s(self) -> float:
        """Total sequential makespan over all layers [s]."""
        return sum(layer.makespan_s for layer in self.layers)

    @property
    def tuning_energy_j(self) -> float:
        """Total programming energy across layers [J]."""
        return sum(layer.tuning_energy_j for layer in self.layers)

    @property
    def streaming_energy_j(self) -> float:
        """Total streaming energy across layers [J]."""
        return sum(layer.streaming_energy_j for layer in self.layers)

    def to_chrome_trace(self) -> dict:
        """The modeled tile timeline as a Chrome ``trace_event`` document.

        The clock is the *simulated* device clock, not wall time: each
        tile residency becomes two complete events on its PE's track — a
        ``write`` slice and a ``stream`` slice — with layers laid out
        sequentially (layer k starts where layer k-1's makespan ended).
        Requires the simulation to have kept events
        (``keep_events=True``); layers simulated without events
        contribute nothing but still advance the clock.
        """
        events: list[dict] = []
        offset = 0.0
        for index, layer in enumerate(self.layers):
            for ev in layer.events:
                common = {
                    "cat": "schedule",
                    "ph": "X",
                    "pid": 0,
                    "tid": ev.pe,
                    "args": {"layer": layer.name, "tile": ev.tile},
                }
                events.append(
                    {
                        "name": f"write {layer.name}/{ev.tile}",
                        "ts": (offset + ev.start_s) * 1e6,
                        "dur": (ev.write_end_s - ev.start_s) * 1e6,
                        **common,
                    }
                )
                events.append(
                    {
                        "name": f"stream {layer.name}/{ev.tile}",
                        "ts": (offset + ev.write_end_s) * 1e6,
                        "dur": (ev.end_s - ev.write_end_s) * 1e6,
                        **common,
                    }
                )
            offset += layer.makespan_s
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def simulate_model(
    network: Network,
    arch: PhotonicArch | None = None,
    batch: int = 1,
    keep_events: bool = False,
) -> ModelSimResult:
    """Simulate every compute layer sequentially (dependency order)."""
    arch = arch or PhotonicArch.trident()
    results = []
    with _trace_span("simulate_model", model=network.name, arch=arch.name):
        for record in network.stats().layers:
            if record.gemm is None:
                continue
            schedule = TileSchedule(record.gemm, arch.bank_rows, arch.bank_cols)
            with _trace_span(
                "simulate_layer", layer=record.name, tiles=schedule.n_tiles
            ):
                results.append(
                    simulate_layer(record.name, schedule, arch, batch, keep_events)
                )
    if not results:
        raise ScheduleError(f"{network.name}: no compute layers to simulate")
    return ModelSimResult(model=network.name, layers=tuple(results))


def analytical_makespan_s(
    schedule: TileSchedule, arch: PhotonicArch, batch: int = 1
) -> float:
    """The cost model's closed form, for comparison with the simulation."""
    round_time = arch.write_time_s + batch * schedule.positions / arch.symbol_rate_hz
    return schedule.rounds(arch.n_pes) * round_time
