"""Electronic edge-accelerator roofline model.

The paper compares Trident against three commercial edge SoCs via their
spec-sheet numbers (Table IV) and published benchmark behaviour.  This
module models each as a per-layer roofline: a layer takes the larger of its
compute time (at the device's sustained fraction of peak TOPS) and its
memory time (activation + weight traffic over the external bandwidth).

The roofline reproduces the qualitative behaviour the paper leans on: dense
convolutions (GoogleNet, VGG) run near the compute roof, while depthwise
layers (MobileNetV2) are bandwidth-bound — which is why Xavier's GoogleNet
throughput is disproportionately good and why Trident's advantage is widest
on memory-heavy models.

``compute_utilization`` is the sustained/peak ratio; edge NPUs typically
sustain 15-40 % of peak on real CNNs (Seshadri et al., the paper's ref
[29]).  Values here are calibrated against published per-model fps numbers;
EXPERIMENTS.md records the resulting paper-vs-measured deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.report import LayerCost, ModelCost
from repro.errors import ConfigError, ScheduleError
from repro.nn.graph import INPUT, Network


@dataclass(frozen=True)
class ElectronicAccelerator:
    """Spec-sheet + roofline model of an edge AI accelerator."""

    name: str
    peak_tops: float
    power_w: float
    dram_bandwidth_bytes_per_s: float
    compute_utilization: float
    can_train: bool
    #: Average energy per int8 op [J] at the device's TOPS/W rating.
    energy_per_op_j: float = 0.0
    #: Forward : (forward+backward+update) op ratio used for the paper's
    #: "estimate training throughput from inference throughput" method.
    training_expansion: float = 3.0

    def __post_init__(self) -> None:
        if self.peak_tops <= 0 or self.power_w <= 0:
            raise ConfigError(f"{self.name}: peak TOPS and power must be positive")
        if not 0.0 < self.compute_utilization <= 1.0:
            raise ConfigError(
                f"{self.name}: utilization must be in (0, 1], "
                f"got {self.compute_utilization}"
            )
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.training_expansion < 1.0:
            raise ConfigError(f"{self.name}: training expansion must be >= 1")

    # ------------------------------------------------------------------
    @property
    def tops_per_watt(self) -> float:
        """Table IV's efficiency metric (peak TOPS / board power)."""
        return self.peak_tops / self.power_w

    @property
    def sustained_ops_per_s(self) -> float:
        """Sustained op rate: peak x utilization [ops/s]."""
        return self.peak_tops * 1e12 * self.compute_utilization

    def _effective_energy_per_op(self) -> float:
        if self.energy_per_op_j > 0:
            return self.energy_per_op_j
        # Default: the board's power spread over its sustained op rate.
        return self.power_w / self.sustained_ops_per_s

    # ------------------------------------------------------------------
    def model_cost(self, network: Network, batch: int = 1) -> ModelCost:
        """Per-inference latency/energy over the layer graph."""
        if batch < 1:
            raise ConfigError(f"batch must be positive, got {batch}")
        stats = network.stats()
        layers: list[LayerCost] = []
        e_op = self._effective_energy_per_op()
        for record in stats.layers:
            if record.gemm is None:
                continue
            src = network.inputs_of(record.name)[0]
            in_shape = network.input_shape if src == INPUT else network.shape_of(src)
            ops = 2 * record.macs
            compute_time = ops / self.sustained_ops_per_s
            # int8 traffic: read inputs + write outputs each inference,
            # stream weights once per batch.
            traffic_bytes = (
                in_shape.elements + record.output.elements + record.params / batch
            )
            memory_time = traffic_bytes / self.dram_bandwidth_bytes_per_s
            time_s = max(compute_time, memory_time)
            energy = ops * e_op
            layers.append(
                LayerCost(
                    name=record.name,
                    macs=record.macs,
                    time_s=time_s,
                    energy_j=energy,
                    energy_breakdown={"compute": energy},
                )
            )
        if not layers:
            raise ScheduleError(f"{network.name}: no compute layers to cost")
        return ModelCost(
            model=network.name,
            accelerator=self.name,
            layers=tuple(layers),
            total_macs=stats.total_macs,
        )

    def training_time_s(self, network: Network, n_samples: int, batch: int = 32) -> float:
        """Time to train ``n_samples`` images, via the paper's method:
        training throughput = inference throughput / training expansion."""
        if not self.can_train:
            raise ConfigError(f"{self.name} cannot train (inference-only device)")
        if n_samples < 1:
            raise ConfigError("n_samples must be positive")
        inference = self.model_cost(network, batch=batch)
        return n_samples * inference.time_s * self.training_expansion
