"""Physical constants and unit helpers.

All quantities inside the library are SI (seconds, joules, watts, meters,
hertz) unless a name explicitly says otherwise.  The helpers below exist so
that device parameters quoted from the paper ("660 pJ", "300 ns", "1.6 nm")
can be written in the units the paper uses while remaining SI internally.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants
# ---------------------------------------------------------------------------

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602_176_634e-19

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380_649e-23

#: Planck constant [J*s].
PLANCK = 6.626_070_15e-34

#: Room temperature [K] used in thermal-noise estimates.
ROOM_TEMPERATURE = 300.0

# ---------------------------------------------------------------------------
# Unit multipliers (multiply a number in the named unit to obtain SI)
# ---------------------------------------------------------------------------

NM = 1e-9
UM = 1e-6
MM = 1e-3

PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

FJ = 1e-15
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6

UW = 1e-6
MW = 1e-3

GHZ = 1e9
MHZ = 1e6
KHZ = 1e3

MM2 = 1e-6  # mm^2 in m^2
UM2 = 1e-12  # um^2 in m^2

KB = 1024
MB = 1024 * 1024

# ---------------------------------------------------------------------------
# Telecom band helpers
# ---------------------------------------------------------------------------

#: Canonical C-band reference wavelength used throughout the models [m].
C_BAND_CENTER = 1550.0 * NM

#: Wavelength the paper measures the GST activation cell at (Fig 3) [m].
ACTIVATION_WAVELENGTH = 1553.4 * NM

#: Minimum WDM channel spacing required by the paper (Sec III-A) [m].
MIN_WDM_SPACING = 1.6 * NM


def wavelength_to_frequency(wavelength_m: float) -> float:
    """Convert a vacuum wavelength [m] to optical frequency [Hz]."""
    if wavelength_m <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m}")
    return SPEED_OF_LIGHT / wavelength_m


def frequency_to_wavelength(frequency_hz: float) -> float:
    """Convert an optical frequency [Hz] to vacuum wavelength [m]."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert optical power in dBm to watts."""
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert optical power in watts to dBm."""
    if watts <= 0:
        raise ValueError(f"power must be positive, got {watts}")
    return 10.0 * math.log10(watts / 1e-3)
