"""Noise-aware (hardware-in-the-loop-free) training.

The standard industrial alternative to in-situ training: keep training in
the digital domain, but *inject the hardware's imperfections* into the
forward pass — quantize weights to the GST grid and perturb them with
programming-noise-scale jitter — while applying gradient updates to the
clean shadow weights (straight-through).  The resulting network is robust
to deployment without ever touching the hardware.

This gives the mismatch experiment its third arm:

1. clean offline training  -> deploy  (suffers the mismatch)
2. noise-aware training    -> deploy  (recovers most of it)
3. in-situ training on hardware       (absorbs it by construction)

The paper argues for (3); (2) is the fair strawman a reviewer would ask
about, and quantifying the residual gap is part of reproducing the
argument honestly.

Measured finding (see tests): at the scales this library trains
functionally, noise-aware training preserves clean accuracy and is at
best marginally more robust than clean training under programming noise —
because the dominant deployment mismatch is *detection* (readout) noise,
which weight-side injection cannot address.  In-situ training, which sees
the detection noise during its own forward passes, remains the only arm
that tracks the digital ceiling — strengthening the paper's argument.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.quantization import UniformQuantizer
from repro.nn.reference import ACTIVATIONS, DigitalMLP, cross_entropy_loss


class NoiseAwareMLP:
    """DigitalMLP trained with hardware-effect injection (straight-through).

    Each forward pass sees weights that are (a) normalized per layer,
    (b) quantized to ``bits``, (c) jittered by ``programming_noise_levels``
    on the level grid; gradients flow to the clean weights.
    """

    def __init__(
        self,
        dims: list[int],
        bits: int = 8,
        programming_noise_levels: float = 1.0,
        activation: str = "gst",
        seed: int = 0,
    ) -> None:
        if bits < 2:
            raise ConfigError(f"bits must be >= 2, got {bits}")
        if programming_noise_levels < 0:
            raise ConfigError("programming noise must be non-negative")
        self.mlp = DigitalMLP(dims, activation=activation, seed=seed)
        self.quantizer = UniformQuantizer.from_bits(bits)
        self.programming_noise_levels = programming_noise_levels
        self._rng = np.random.default_rng(seed + 101)
        self._act, self._act_grad = ACTIVATIONS[activation]

    # ------------------------------------------------------------------
    def _hardware_view(self, w: np.ndarray) -> np.ndarray:
        """One random hardware realization of a weight matrix."""
        scale = max(1.0, float(np.max(np.abs(w))))
        levels = self.quantizer.quantize(w / scale).astype(np.float64)
        if self.programming_noise_levels > 0:
            levels = levels + self._rng.standard_normal(w.shape) * (
                self.programming_noise_levels
            )
            levels = np.clip(levels, 0, self.quantizer.levels - 1)
        return self.quantizer.dequantize(np.rint(levels).astype(np.int64)) * scale

    def _forward_noisy(self, x: np.ndarray):
        a = np.atleast_2d(np.asarray(x, dtype=np.float64))
        inputs, logits, views = [], [], []
        n_layers = self.mlp.n_layers
        for k, w in enumerate(self.mlp.weights):
            view = self._hardware_view(w)
            views.append(view)
            inputs.append(a)
            h = a @ view.T
            logits.append(h)
            a = self._act(h) if k < n_layers - 1 else h
        return a, inputs, logits, views

    # ------------------------------------------------------------------
    def train_step(self, x: np.ndarray, labels: np.ndarray, lr: float = 0.05) -> float:
        """SGD step: noisy forward, straight-through backward."""
        out, inputs, logits, views = self._forward_noisy(x)
        loss, grad = cross_entropy_loss(out, labels)
        delta = grad
        n_layers = self.mlp.n_layers
        for k in reversed(range(n_layers)):
            self.mlp.weights[k] -= lr * (delta.T @ inputs[k])
            if k > 0:
                delta = (delta @ views[k]) * self._act_grad(logits[k - 1])
        return loss

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Clean-weight accuracy (deployment measures its own)."""
        return self.mlp.accuracy(x, labels)

    @property
    def weights(self) -> list[np.ndarray]:
        """The clean full-precision shadow weights."""
        return self.mlp.weights
