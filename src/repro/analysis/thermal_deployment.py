"""Deploying a network on *thermally tuned* banks: accuracy consequences.

Connects :mod:`repro.devices.thermal_crosstalk` to the NN level.  A
thermally tuned weight is a resonance shift driven by a heater whose power
leaks to neighbouring rings, so the realized weight of ring i depends on
what its row-mates are programmed to — a pattern-dependent error that
cannot be calibrated once, on top of the 6-bit quantization thermal banks
are limited to.  GST banks (attenuation-tuned, 8-bit) have neither term.

The deployment model, per weight-bank row (one heater strip):

    drive_i   = (w_i + 1) / 2              (heater power encodes the shift)
    drive'    = C @ drive                  (thermal coupling matrix)
    w'_i      = clip(2 drive'_i - 1)       (realized weight)

followed by quantization at the technology's bit width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.thermal_crosstalk import ThermalCrosstalkModel
from repro.errors import ConfigError
from repro.nn.quantization import UniformQuantizer
from repro.nn.reference import DigitalMLP
from repro.analysis.variation import make_reference_task


def thermally_deployed_weights(
    weights: np.ndarray,
    model: ThermalCrosstalkModel,
    bits: int = 6,
) -> np.ndarray:
    """Realized weights on a thermal bank (crosstalk + quantization).

    ``weights`` is a (rows, cols) normalized matrix in [-1, 1]; the thermal
    coupling acts along each row's heater strip (cols must match the
    model's ring count).  Vectorized: one matmul for the whole matrix.
    """
    w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    if w.shape[1] != model.n_rings:
        raise ConfigError(
            f"weights have {w.shape[1]} columns but the thermal model has "
            f"{model.n_rings} rings per row"
        )
    if np.any(np.abs(w) > 1 + 1e-12):
        raise ConfigError("weights must lie in [-1, 1]")
    quantizer = UniformQuantizer.from_bits(bits)
    drives = (np.clip(w, -1, 1) + 1.0) / 2.0
    realized = np.clip(2.0 * (drives @ model.coupling_matrix().T) - 1.0, -1.0, 1.0)
    return quantizer.roundtrip(realized)


@dataclass(frozen=True)
class ThermalDeploymentPoint:
    """Accuracy of one tuning technology / coupling configuration."""

    label: str
    adjacent_coupling: float
    bits: int
    accuracy: float
    worst_weight_error: float


def thermal_vs_gst_deployment(
    couplings: tuple[float, ...] = (0.0035, 0.01, 0.03),
    seed: int = 5,
) -> list[ThermalDeploymentPoint]:
    """Deploy the reference network on GST vs thermal banks.

    Returns the GST (8-bit, crosstalk-free) point followed by thermal
    points at increasing adjacent-heater coupling — the NN-level version
    of the paper's Sec. II-B resolution argument.
    """
    if not couplings:
        raise ConfigError("need at least one coupling value")
    dims, mlp, test = make_reference_task(seed)
    points = []

    # GST: 8-bit quantization only.
    q8 = UniformQuantizer.from_bits(8)
    gst_net = DigitalMLP(dims, activation="gst", seed=0)
    gst_weights = []
    worst = 0.0
    for w in mlp.weights:
        scale = max(1.0, float(np.max(np.abs(w))))
        realized = q8.roundtrip(w / scale)
        worst = max(worst, float(np.max(np.abs(realized - w / scale))))
        gst_weights.append(realized * scale)
    gst_net.weights = gst_weights
    points.append(
        ThermalDeploymentPoint(
            label="gst",
            adjacent_coupling=0.0,
            bits=8,
            accuracy=gst_net.accuracy(test.x, test.y),
            worst_weight_error=worst,
        )
    )

    for coupling in couplings:
        worst = 0.0
        deployed = []
        for w in mlp.weights:
            scale = max(1.0, float(np.max(np.abs(w))))
            norm = w / scale
            model = ThermalCrosstalkModel(
                n_rings=norm.shape[1], adjacent_coupling=coupling
            )
            realized = thermally_deployed_weights(norm, model, bits=6)
            worst = max(worst, float(np.max(np.abs(realized - norm))))
            deployed.append(realized * scale)
        net = DigitalMLP(dims, activation="gst", seed=0)
        net.weights = deployed
        points.append(
            ThermalDeploymentPoint(
                label=f"thermal@{coupling:g}",
                adjacent_coupling=coupling,
                bits=6,
                accuracy=net.accuracy(test.x, test.y),
                worst_weight_error=worst,
            )
        )
    return points
