"""Monte Carlo accuracy under device variation.

The functional accelerator exposes two imperfection knobs: programming
noise (GST level placement error) and detection noise (shot/thermal/RIN).
This analysis trains a reference network digitally, deploys it across many
random device instances, and reports the accuracy distribution per
variation level — the quantitative version of the paper's claim that
analog imperfections degrade offline-trained deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.accelerator import TridentAccelerator
from repro.devices.noise import NoiseModel
from repro.errors import ConfigError
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.reference import DigitalMLP


@dataclass(frozen=True)
class VariationPoint:
    """Accuracy distribution at one variation level."""

    programming_noise_levels: float
    detection_noise_std: float
    mean_accuracy: float
    std_accuracy: float
    worst_accuracy: float
    n_trials: int


def make_reference_task(seed: int = 5):
    """Standard task + digitally trained reference network."""
    dims = [10, 14, 3]
    data = make_blobs(n_samples=400, n_features=10, n_classes=3, spread=2.0, seed=seed)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    train, test = data.split(0.8, seed=1)
    mlp = DigitalMLP(dims, activation="gst", seed=7)
    for epoch in range(8):
        for xb, yb in train.batches(16, seed=epoch):
            mlp.train_step(xb, yb, lr=0.4)
    return dims, mlp, test


def deploy_accuracy(
    dims: list[int],
    weights: list[np.ndarray],
    test: Dataset,
    programming_noise_levels: float,
    detection_noise_std: float,
    seed: int,
) -> float:
    """Accuracy of one random hardware instance running the weights."""
    noise = NoiseModel(
        enabled=(programming_noise_levels > 0 or detection_noise_std > 0),
        thermal_noise_std=detection_noise_std,
        shot_noise_coeff=detection_noise_std / 2,
        rin_coeff=detection_noise_std / 4,
        seed=seed,
    )
    acc = TridentAccelerator(
        noise=noise, programming_noise_levels=programming_noise_levels
    )
    acc.map_mlp(dims)
    acc.set_weights([w.copy() for w in weights])
    pred = np.argmax(acc.forward_batch(test.x), axis=1)
    return float(np.mean(pred == test.y))


def variation_sweep(
    programming_levels: tuple[float, ...] = (0.0, 1.0, 3.0, 8.0),
    detection_stds: tuple[float, ...] = (0.0, 0.05, 0.15),
    n_trials: int = 5,
    seed: int = 5,
) -> list[VariationPoint]:
    """Grid of variation levels x Monte Carlo trials."""
    if n_trials < 1:
        raise ConfigError("need at least one trial")
    dims, mlp, test = make_reference_task(seed)
    points = []
    for prog in programming_levels:
        for det in detection_stds:
            accs = [
                deploy_accuracy(dims, mlp.weights, test, prog, det, seed=100 + t)
                for t in range(n_trials)
            ]
            points.append(
                VariationPoint(
                    programming_noise_levels=prog,
                    detection_noise_std=det,
                    mean_accuracy=float(np.mean(accs)),
                    std_accuracy=float(np.std(accs)),
                    worst_accuracy=float(np.min(accs)),
                    n_trials=n_trials,
                )
            )
    return points
