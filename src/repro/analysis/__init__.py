"""Extended analyses beyond the paper's evaluation.

- :mod:`repro.analysis.variation` — Monte Carlo accuracy under device
  variation (programming error + detection noise).
- :mod:`repro.analysis.endurance` — PCM wear-out: how long weight cells and
  activation cells last under inference/training workloads.
- :mod:`repro.analysis.sensitivity` — elasticity of the headline metrics to
  each device parameter.
- :mod:`repro.analysis.precision` — accuracy vs weight bit-resolution (the
  paper's 8-bit-training argument, quantified).
"""

from repro.analysis.aging import AgingPoint, aged_accuracy, aging_sweep
from repro.analysis.endurance import EnduranceReport, endurance_report
from repro.analysis.precision import PrecisionPoint, precision_sweep
from repro.analysis.sensitivity import SensitivityRecord, parameter_sensitivity
from repro.analysis.robust_training import NoiseAwareMLP
from repro.analysis.thermal_deployment import (
    ThermalDeploymentPoint,
    thermal_vs_gst_deployment,
    thermally_deployed_weights,
)
from repro.analysis.variation import VariationPoint, variation_sweep

__all__ = [
    "aged_accuracy",
    "AgingPoint",
    "aging_sweep",
    "endurance_report",
    "EnduranceReport",
    "parameter_sensitivity",
    "precision_sweep",
    "PrecisionPoint",
    "SensitivityRecord",
    "thermal_vs_gst_deployment",
    "ThermalDeploymentPoint",
    "thermally_deployed_weights",
    "NoiseAwareMLP",
    "variation_sweep",
    "VariationPoint",
]
