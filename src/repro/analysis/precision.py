"""Accuracy vs weight bit-resolution.

Quantifies the paper's Sec. II-B argument: thermally tuned banks resolve
only 6 bits, "meaning that training is not possible" [34], while GST's 255
levels (8 bits) suffice.  Two measurements per bit width:

- **deployment**: train digitally, quantize the weights to b bits, measure
  inference accuracy (cheap, mirrors the thermal-bank deployment path);
- **in-situ training**: train on hardware whose banks quantize to b bits —
  the harder test, since every gradient step must survive the coarse grid
  (small updates round to zero below a resolution-dependent threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.arch.accelerator import TridentAccelerator
from repro.arch.config import TridentConfig
from repro.devices.tuning import GSTTuning
from repro.errors import ConfigError
from repro.nn.datasets import Dataset, make_blobs, standardize
from repro.nn.quantization import quantize_tensor
from repro.nn.reference import DigitalMLP
from repro.training.insitu import InSituTrainer
from repro.training.trainer import train_classifier

DIMS = [10, 14, 3]


@dataclass(frozen=True)
class PrecisionPoint:
    """Accuracy at one weight bit-width."""

    bits: int
    deployed_accuracy: float
    insitu_accuracy: float
    digital_accuracy: float

    @property
    def deployment_drop(self) -> float:
        """Accuracy lost by quantized deployment vs the digital ceiling."""
        return self.digital_accuracy - self.deployed_accuracy

    @property
    def training_drop(self) -> float:
        """Accuracy lost by in-situ training vs the digital ceiling."""
        return self.digital_accuracy - self.insitu_accuracy


def _task(seed: int):
    data = make_blobs(n_samples=400, n_features=10, n_classes=3, spread=2.0, seed=seed)
    data = Dataset(x=np.clip(standardize(data.x) / 3, -1, 1), y=data.y)
    return data.split(0.8, seed=1)


def _bank_config(bits: int) -> TridentConfig:
    """Trident config whose banks quantize to ``bits`` (tuning swap)."""
    tuning = replace(GSTTuning(), bit_resolution=bits)
    return TridentConfig(tuning=tuning, weight_bits=bits)


def precision_sweep(
    bits_list: tuple[int, ...] = (3, 4, 6, 8),
    epochs: int = 8,
    lr: float = 0.4,
    seed: int = 5,
) -> list[PrecisionPoint]:
    """Deployment + in-situ accuracy across weight bit widths."""
    if not bits_list:
        raise ConfigError("need at least one bit width")
    train, test = _task(seed)

    digital = DigitalMLP(DIMS, activation="gst", seed=7)
    for epoch in range(epochs):
        for xb, yb in train.batches(16, seed=epoch):
            digital.train_step(xb, yb, lr=lr)
    digital_acc = digital.accuracy(test.x, test.y)

    points = []
    for bits in bits_list:
        if bits < 2:
            raise ConfigError(f"bits must be >= 2, got {bits}")
        # Deployment path: post-training quantization.
        quantized = DigitalMLP(DIMS, activation="gst", seed=7)
        quantized.weights = [quantize_tensor(w, bits).values for w in digital.weights]
        deployed_acc = quantized.accuracy(test.x, test.y)

        # In-situ path: banks at b-bit resolution.
        acc = TridentAccelerator(config=_bank_config(bits))
        acc.map_mlp(DIMS)
        acc.set_weights(
            [w.copy() for w in DigitalMLP(DIMS, activation="gst", seed=7).weights]
        )
        trainer = InSituTrainer(acc, lr=lr)
        history = train_classifier(trainer, train, test, epochs=epochs, batch_size=16)

        points.append(
            PrecisionPoint(
                bits=bits,
                deployed_accuracy=deployed_acc,
                insitu_accuracy=history.final_test_accuracy,
                digital_accuracy=digital_acc,
            )
        )
    return points
