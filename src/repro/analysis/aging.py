"""Network accuracy vs GST weight age (retention drift at temperature).

Connects the device-level retention model to the NN level: deploy a trained
network, let its programmed GST states age at an operating temperature, and
measure accuracy as the weights creep toward crystalline.  A refresh
(reprogramming from the control unit's digital shadow) restores accuracy
exactly — quantifying the maintenance loop behind "non-volatile".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.drift import RetentionModel
from repro.devices.pcm_mrr import build_calibration
from repro.errors import ConfigError
from repro.nn.datasets import Dataset
from repro.nn.reference import DigitalMLP
from repro.analysis.variation import make_reference_task


@dataclass(frozen=True)
class AgingPoint:
    """Accuracy after one aging duration."""

    age_s: float
    temperature_c: float
    accuracy: float
    worst_weight_drift: float


def aged_accuracy(
    dims: list[int],
    weights: list[np.ndarray],
    test: Dataset,
    age_s: float,
    temperature_c: float,
    model: RetentionModel | None = None,
) -> tuple[float, float]:
    """(accuracy, worst weight drift) after aging the deployed weights.

    Weights are normalized per layer before programming (as the control
    unit does), aged on the GST grid, and evaluated digitally with the
    drifted values — isolating the retention effect from read noise.
    """
    if age_s < 0:
        raise ConfigError("age must be non-negative")
    model = model or RetentionModel()
    calibration = build_calibration()
    t_k = temperature_c + 273.15
    aged_net = DigitalMLP(dims, activation="gst", seed=0)
    worst = 0.0
    aged_weights = []
    for w in weights:
        scale = max(1.0, float(np.max(np.abs(w))))
        norm = w / scale
        aged_norm = model.aged_weights(norm, age_s, t_k, calibration)
        worst = max(worst, float(np.max(np.abs(aged_norm - norm))))
        aged_weights.append(aged_norm * scale)
    aged_net.weights = aged_weights
    return aged_net.accuracy(test.x, test.y), worst


def aging_sweep(
    ages_s: tuple[float, ...] = (0.0, 3e5, 1e6, 3e6, 1e7, 3e7),
    temperature_c: float = 85.0,
    seed: int = 5,
    model: RetentionModel | None = None,
) -> list[AgingPoint]:
    """Accuracy decay curve at one operating temperature.

    Uses the shared reference task/trained network from the variation
    analysis, so results are directly comparable.
    """
    if not ages_s:
        raise ConfigError("need at least one age")
    dims, mlp, test = make_reference_task(seed)
    points = []
    for age in sorted(ages_s):
        acc, drift = aged_accuracy(dims, mlp.weights, test, age, temperature_c, model)
        points.append(
            AgingPoint(
                age_s=age,
                temperature_c=temperature_c,
                accuracy=acc,
                worst_weight_drift=drift,
            )
        )
    return points
