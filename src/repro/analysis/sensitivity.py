"""Parameter-sensitivity analysis of the headline metrics.

Perturbs each device/architecture parameter by +/- a fraction and reports
the elasticity of per-inference energy and throughput: which knobs actually
matter.  Confirms the paper's emphasis quantitatively — tuning-related
parameters dominate energy; the symbol rate dominates latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.errors import ConfigError
from repro.nn import build_model
from repro.nn.graph import Network

#: Parameters swept (all fields of PhotonicArch with continuous effect).
SWEEPABLE: tuple[str, ...] = (
    "symbol_rate_hz",
    "write_energy_per_cell_j",
    "write_time_s",
    "streaming_power_pe_w",
)


@dataclass(frozen=True)
class SensitivityRecord:
    """Effect of one parameter's +/- perturbation."""

    parameter: str
    delta_fraction: float
    energy_elasticity: float  # d(log energy) / d(log param)
    latency_elasticity: float  # d(log latency) / d(log param)


def _cost(arch: PhotonicArch, network: Network, batch: int):
    c = PhotonicCostModel(arch, batch=batch).model_cost(network)
    return c.energy_j, c.time_s


def parameter_sensitivity(
    model: str | Network = "resnet50",
    arch: PhotonicArch | None = None,
    delta: float = 0.2,
    batch: int = 8,
) -> list[SensitivityRecord]:
    """Central-difference elasticities for each sweepable parameter.

    Small batch keeps tuning effects visible (single-stream edge use).
    """
    if not 0 < delta < 1:
        raise ConfigError(f"delta must be in (0, 1), got {delta}")
    arch = arch or PhotonicArch.trident()
    network = build_model(model) if isinstance(model, str) else model

    records = []
    for name in SWEEPABLE:
        base_value = getattr(arch, name)
        lo = replace(arch, **{name: base_value * (1 - delta)})
        hi = replace(arch, **{name: base_value * (1 + delta)})
        e_lo, t_lo = _cost(lo, network, batch)
        e_hi, t_hi = _cost(hi, network, batch)
        # Central-difference log-log slope.
        import math

        dlogp = math.log((1 + delta) / (1 - delta))
        records.append(
            SensitivityRecord(
                parameter=name,
                delta_fraction=delta,
                energy_elasticity=math.log(e_hi / e_lo) / dlogp,
                latency_elasticity=math.log(t_hi / t_lo) / dlogp,
            )
        )
    return sorted(records, key=lambda r: -abs(r.energy_elasticity))
