"""PCM wear-out analysis.

The paper notes (Sec. III-C) that "the number of operation cycles is
eventually limited by the endurance of the PCM cells" and argues a
trillion-cycle rating makes this a non-issue.  This analysis quantifies it
per workload, for both PCM populations:

- **weight cells** switch when banks are (re)programmed: once per tile
  residency during inference tile-swapping, and ~3x per batch during
  training (gradient retune, outer-product operands, weight update);
- **activation cells** switch on *every firing event* — once per
  above-threshold output element — and must be recrystallized each time.

The activation population turns out to be the hot one: it cycles orders of
magnitude faster than the weight banks, and the trillion-cycle budget buys
hours-to-days of full-rate inference, not years.  EXPERIMENTS.md discusses
this as an extension finding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.cost_model import PhotonicArch, PhotonicCostModel
from repro.dataflow.tiling import TileSchedule
from repro.devices.gst import DEFAULT_ENDURANCE_CYCLES
from repro.errors import ConfigError
from repro.nn.graph import Network

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class EnduranceReport:
    """Wear-out figures for one model on one architecture."""

    model: str
    #: Mean weight-cell writes per inference (tile swapping).
    weight_writes_per_inference: float
    #: Mean firings per activation cell per inference.
    activation_firings_per_inference: float
    #: Inferences until the average weight cell hits its endurance rating.
    weight_lifetime_inferences: float
    #: Inferences until the average activation cell hits its rating.
    activation_lifetime_inferences: float
    #: Wall-clock lifetimes at the architecture's own throughput [s].
    weight_lifetime_s: float
    activation_lifetime_s: float
    endurance_cycles: int

    @property
    def weight_lifetime_years(self) -> float:
        """Weight-cell lifetime in years at the modeled throughput."""
        return self.weight_lifetime_s / SECONDS_PER_YEAR

    @property
    def activation_lifetime_hours(self) -> float:
        """Activation-cell lifetime in hours at the modeled throughput."""
        return self.activation_lifetime_s / 3600.0

    @property
    def limiting_population(self) -> str:
        """Which PCM population wears out first."""
        return (
            "activation"
            if self.activation_lifetime_s < self.weight_lifetime_s
            else "weight"
        )


def endurance_report(
    network: Network,
    arch: PhotonicArch | None = None,
    batch: int = 128,
    endurance_cycles: int = DEFAULT_ENDURANCE_CYCLES,
    firing_probability: float = 0.5,
) -> EnduranceReport:
    """Wear-out analysis for steady-state inference on ``network``.

    ``firing_probability`` is the fraction of outputs above the activation
    threshold (ReLU nets typically sit near 0.5).
    """
    if endurance_cycles <= 0:
        raise ConfigError("endurance must be positive")
    if not 0 < firing_probability <= 1:
        raise ConfigError("firing probability must be in (0, 1]")
    arch = arch or PhotonicArch.trident()
    cost = PhotonicCostModel(arch, batch=batch).model_cost(network)

    total_weight_cells = arch.n_pes * arch.bank_rows * arch.bank_cols
    total_activation_cells = arch.n_pes * arch.bank_rows

    # Weight writes per inference: every tile's cells reprogrammed once per
    # batch residency.
    stats = network.stats()
    cells_written = 0
    fired_outputs = 0.0
    for record in stats.layers:
        if record.gemm is None:
            continue
        schedule = TileSchedule(record.gemm, arch.bank_rows, arch.bank_cols)
        cells_written += schedule.cells
        if record.fused_activation:
            fired_outputs += schedule.output_elements * firing_probability

    weight_writes_per_inf = cells_written / batch / total_weight_cells
    act_firings_per_inf = fired_outputs / total_activation_cells

    weight_lifetime_inf = (
        endurance_cycles / weight_writes_per_inf if weight_writes_per_inf > 0 else float("inf")
    )
    act_lifetime_inf = (
        endurance_cycles / act_firings_per_inf if act_firings_per_inf > 0 else float("inf")
    )
    ips = cost.inferences_per_second
    return EnduranceReport(
        model=network.name,
        weight_writes_per_inference=weight_writes_per_inf,
        activation_firings_per_inference=act_firings_per_inf,
        weight_lifetime_inferences=weight_lifetime_inf,
        activation_lifetime_inferences=act_lifetime_inf,
        weight_lifetime_s=weight_lifetime_inf / ips,
        activation_lifetime_s=act_lifetime_inf / ips,
        endurance_cycles=endurance_cycles,
    )
