"""DAG network descriptor.

A :class:`Network` is a directed acyclic graph of :class:`LayerSpec` nodes.
It exists to answer the questions the dataflow analysis asks — per-layer
shapes, GEMMs, MACs, parameters — for arbitrary topologies (plain chains,
ResNet residuals, Inception branches).

Nodes are added in any order and reference their inputs by name; ``"input"``
is the implicit source.  Shape inference walks the graph once in topological
order and caches per-node results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError
from repro.nn.layers import GEMMShape, LayerSpec, TensorShape

INPUT = "input"


@dataclass(frozen=True)
class LayerStats:
    """Resolved per-layer analysis record."""

    name: str
    kind: str
    output: TensorShape
    macs: int
    params: int
    gemm: GEMMShape | None
    fused_activation: bool


@dataclass(frozen=True)
class NetworkStats:
    """Whole-network totals."""

    name: str
    layers: tuple[LayerStats, ...]
    total_macs: int
    total_params: int
    n_weight_layers: int

    @property
    def total_activations(self) -> int:
        """Total activation elements produced by fused-activation layers."""
        return sum(s.output.elements for s in self.layers if s.fused_activation)


class Network:
    """A named DAG of layer descriptors."""

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        if not name:
            raise ShapeError("network name must be non-empty")
        self.name = name
        self.input_shape = input_shape
        self._layers: dict[str, LayerSpec] = {}
        self._inputs: dict[str, list[str]] = {}
        self._order: list[str] = []
        self._shapes: dict[str, TensorShape] | None = None

    # ------------------------------------------------------------------
    def add(self, layer: LayerSpec, inputs: str | list[str] = "") -> str:
        """Add a layer; ``inputs`` defaults to the previously added node.

        Returns the layer name, convenient for wiring branches.
        """
        if layer.name in self._layers or layer.name == INPUT:
            raise ShapeError(f"duplicate layer name {layer.name!r}")
        if isinstance(inputs, str):
            if inputs:
                sources = [inputs]
            elif self._order:
                sources = [self._order[-1]]
            else:
                sources = [INPUT]
        else:
            sources = list(inputs)
        if not sources:
            raise ShapeError(f"{layer.name}: needs at least one input")
        for src in sources:
            if src != INPUT and src not in self._layers:
                raise ShapeError(
                    f"{layer.name}: unknown input {src!r} (add inputs first)"
                )
        self._layers[layer.name] = layer
        self._inputs[layer.name] = sources
        self._order.append(layer.name)
        self._shapes = None
        return layer.name

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def layer(self, name: str) -> LayerSpec:
        """Look a layer up by name."""
        try:
            return self._layers[name]
        except KeyError:
            raise ShapeError(f"no layer named {name!r}") from None

    @property
    def layer_names(self) -> list[str]:
        """Layer names in insertion (topological) order."""
        return list(self._order)

    def inputs_of(self, name: str) -> list[str]:
        """Names of a node's inputs."""
        return list(self._inputs[name])

    # ------------------------------------------------------------------
    def _resolve_shapes(self) -> dict[str, TensorShape]:
        if self._shapes is not None:
            return self._shapes
        shapes: dict[str, TensorShape] = {INPUT: self.input_shape}
        # Insertion order is topological because add() requires inputs to
        # pre-exist; verify anyway so corrupted graphs fail loudly.
        for name in self._order:
            ins = []
            for src in self._inputs[name]:
                if src not in shapes:
                    raise ShapeError(
                        f"{name}: input {src!r} not resolved — graph is not "
                        "in dependency order"
                    )
                ins.append(shapes[src])
            shapes[name] = self._layers[name].output_shape(ins)
        self._shapes = shapes
        return shapes

    def shape_of(self, name: str) -> TensorShape:
        """Resolved output shape of a node (or the input)."""
        return self._resolve_shapes()[name]

    @property
    def output_shape(self) -> TensorShape:
        """Shape of the final node's output."""
        if not self._order:
            return self.input_shape
        return self.shape_of(self._order[-1])

    # ------------------------------------------------------------------
    def stats(self) -> NetworkStats:
        """Full per-layer + total analysis (one shape walk, cached)."""
        shapes = self._resolve_shapes()
        records: list[LayerStats] = []
        total_macs = 0
        total_params = 0
        n_weight = 0
        for name in self._order:
            layer = self._layers[name]
            ins = [shapes[src] for src in self._inputs[name]]
            macs = layer.macs(ins)
            params = layer.params(ins)
            records.append(
                LayerStats(
                    name=name,
                    kind=type(layer).__name__,
                    output=shapes[name],
                    macs=macs,
                    params=params,
                    gemm=layer.gemm(ins),
                    fused_activation=layer.fused_activation,
                )
            )
            total_macs += macs
            total_params += params
            if layer.has_weights:
                n_weight += 1
        return NetworkStats(
            name=self.name,
            layers=tuple(records),
            total_macs=total_macs,
            total_params=total_params,
            n_weight_layers=n_weight,
        )

    def compute_layers(self) -> list[LayerStats]:
        """Only the layers that occupy weight banks (conv/dense)."""
        return [s for s in self.stats().layers if s.gemm is not None]
