"""Neural-network substrate: layer descriptors, model zoo, reference math.

- :mod:`repro.nn.layers` — shape/MAC/parameter accounting per layer kind.
- :mod:`repro.nn.graph` — DAG network descriptor (residual + inception).
- :mod:`repro.nn.models` — AlexNet, VGG-16, GoogleNet, ResNet-50,
  MobileNetV2 exactly as the paper evaluates them (224 x 224 x 3 inputs).
- :mod:`repro.nn.reference` — NumPy forward/backward (the digital baseline
  the photonic functional sim is validated against).
- :mod:`repro.nn.quantization` — 8-bit / 6-bit weight quantizers.
- :mod:`repro.nn.datasets` — synthetic tasks for in-situ training runs.
"""

from repro.nn.graph import LayerStats, Network, NetworkStats
from repro.nn.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    LayerSpec,
    Pool,
    TensorShape,
)
from repro.nn.models import (
    MODEL_BUILDERS,
    alexnet,
    build_model,
    googlenet,
    mobilenet_v2,
    resnet50,
    vgg16,
)

__all__ = [
    "Activation",
    "Add",
    "alexnet",
    "BatchNorm",
    "build_model",
    "Concat",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "GlobalAvgPool",
    "googlenet",
    "LayerSpec",
    "LayerStats",
    "mobilenet_v2",
    "MODEL_BUILDERS",
    "Network",
    "NetworkStats",
    "Pool",
    "resnet50",
    "TensorShape",
    "vgg16",
]
