"""Layer descriptors with shape, MAC, and parameter accounting.

These are *descriptors*, not executable layers: they carry exactly the
information the Maestro-style dataflow analysis consumes — output shape,
multiply-accumulate count, parameter count, and (for the compute layers)
the GEMM the layer lowers to under a weight-stationary dataflow.
Executable math lives in :mod:`repro.nn.reference`.

Shape convention: feature maps are (height, width, channels); dense
activations are (1, 1, features).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class TensorShape:
    """A (H, W, C) activation shape."""

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        if self.height < 1 or self.width < 1 or self.channels < 1:
            raise ShapeError(f"all dimensions must be positive, got {self}")

    @property
    def elements(self) -> int:
        """Total element count H x W x C."""
        return self.height * self.width * self.channels

    def bytes(self, bytes_per_element: int = 1) -> int:
        """Footprint in bytes at the given precision (default int8)."""
        return self.elements * bytes_per_element


@dataclass(frozen=True)
class GEMMShape:
    """The matrix multiply a compute layer lowers to.

    ``(M x K) @ (K x N)``: M = output channels/features (weight rows),
    K = reduction size (R*S*C per group), N = output spatial positions.
    ``groups`` independent GEMMs of this shape run per layer (1 for normal
    conv/dense; C for depthwise conv).
    """

    m: int
    k: int
    n: int
    groups: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.groups) < 1:
            raise ShapeError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulates: m x k x n x groups."""
        return self.m * self.k * self.n * self.groups


class LayerSpec:
    """Base layer descriptor."""

    #: Whether the layer owns weights that occupy photonic banks.
    has_weights = False
    #: Whether an activation function follows (fused, for cost accounting).
    fused_activation = False

    def __init__(self, name: str) -> None:
        if not name:
            raise ShapeError("layer name must be non-empty")
        self.name = name

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        """Shape produced from the given input shapes."""
        raise NotImplementedError

    def macs(self, inputs: list[TensorShape]) -> int:
        """Multiply-accumulate operations for one inference."""
        return 0

    def params(self, inputs: list[TensorShape]) -> int:
        """Trainable parameter count."""
        return 0

    def gemm(self, inputs: list[TensorShape]) -> GEMMShape | None:
        """Weight-stationary GEMM lowering, if this is a compute layer."""
        return None

    def _single(self, inputs: list[TensorShape]) -> TensorShape:
        if len(inputs) != 1:
            raise ShapeError(f"{self.name}: expected 1 input, got {len(inputs)}")
        return inputs[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ShapeError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


class Conv2D(LayerSpec):
    """Standard 2-D convolution (optionally grouped)."""

    has_weights = True

    def __init__(
        self,
        name: str,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        fused_activation: bool = True,
        bias: bool = True,
    ) -> None:
        super().__init__(name)
        if out_channels < 1 or kernel < 1 or stride < 1 or groups < 1:
            raise ShapeError(f"{name}: conv parameters must be positive")
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = kernel // 2 if padding is None else padding
        self.groups = groups
        self.fused_activation = fused_activation
        self.bias = bias
        if self.padding < 0:
            raise ShapeError(f"{name}: padding must be non-negative")

    def _check_groups(self, c_in: int) -> None:
        if c_in % self.groups or self.out_channels % self.groups:
            raise ShapeError(
                f"{self.name}: groups={self.groups} must divide both "
                f"in_channels={c_in} and out_channels={self.out_channels}"
            )

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        s = self._single(inputs)
        self._check_groups(s.channels)
        return TensorShape(
            _conv_out(s.height, self.kernel, self.stride, self.padding),
            _conv_out(s.width, self.kernel, self.stride, self.padding),
            self.out_channels,
        )

    def gemm(self, inputs: list[TensorShape]) -> GEMMShape:
        s = self._single(inputs)
        self._check_groups(s.channels)
        out = self.output_shape(inputs)
        return GEMMShape(
            m=self.out_channels // self.groups,
            k=self.kernel * self.kernel * (s.channels // self.groups),
            n=out.height * out.width,
            groups=self.groups,
        )

    def macs(self, inputs: list[TensorShape]) -> int:
        return self.gemm(inputs).macs

    def params(self, inputs: list[TensorShape]) -> int:
        s = self._single(inputs)
        self._check_groups(s.channels)
        weights = (
            self.out_channels * (s.channels // self.groups) * self.kernel * self.kernel
        )
        return weights + (self.out_channels if self.bias else 0)


class DepthwiseConv2D(Conv2D):
    """Depthwise convolution: groups == channels, one filter per channel."""

    def __init__(
        self,
        name: str,
        kernel: int,
        stride: int = 1,
        padding: int | None = None,
        fused_activation: bool = True,
    ) -> None:
        # out_channels/groups are bound at shape time (they equal C_in).
        super().__init__(
            name,
            out_channels=1,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=1,
            fused_activation=fused_activation,
        )

    def _bind(self, s: TensorShape) -> Conv2D:
        return Conv2D(
            self.name,
            out_channels=s.channels,
            kernel=self.kernel,
            stride=self.stride,
            padding=self.padding,
            groups=s.channels,
            fused_activation=self.fused_activation,
        )

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        s = self._single(inputs)
        return self._bind(s).output_shape(inputs)

    def gemm(self, inputs: list[TensorShape]) -> GEMMShape:
        s = self._single(inputs)
        return self._bind(s).gemm(inputs)

    def macs(self, inputs: list[TensorShape]) -> int:
        return self.gemm(inputs).macs

    def params(self, inputs: list[TensorShape]) -> int:
        s = self._single(inputs)
        return self._bind(s).params(inputs)


class Dense(LayerSpec):
    """Fully connected layer over a flattened input."""

    has_weights = True

    def __init__(
        self, name: str, out_features: int, fused_activation: bool = True, bias: bool = True
    ) -> None:
        super().__init__(name)
        if out_features < 1:
            raise ShapeError(f"{name}: out_features must be positive")
        self.out_features = out_features
        self.fused_activation = fused_activation
        self.bias = bias

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        self._single(inputs)
        return TensorShape(1, 1, self.out_features)

    def gemm(self, inputs: list[TensorShape]) -> GEMMShape:
        s = self._single(inputs)
        return GEMMShape(m=self.out_features, k=s.elements, n=1)

    def macs(self, inputs: list[TensorShape]) -> int:
        return self.gemm(inputs).macs

    def params(self, inputs: list[TensorShape]) -> int:
        s = self._single(inputs)
        return self.out_features * s.elements + (self.out_features if self.bias else 0)


class Pool(LayerSpec):
    """Max or average pooling."""

    def __init__(
        self, name: str, kernel: int, stride: int | None = None, padding: int = 0, mode: str = "max"
    ) -> None:
        super().__init__(name)
        if kernel < 1:
            raise ShapeError(f"{name}: kernel must be positive")
        if mode not in ("max", "avg"):
            raise ShapeError(f"{name}: mode must be 'max' or 'avg', got {mode!r}")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding
        self.mode = mode

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        s = self._single(inputs)
        return TensorShape(
            _conv_out(s.height, self.kernel, self.stride, self.padding),
            _conv_out(s.width, self.kernel, self.stride, self.padding),
            s.channels,
        )


class GlobalAvgPool(LayerSpec):
    """Spatial global average: (H, W, C) -> (1, 1, C)."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        s = self._single(inputs)
        return TensorShape(1, 1, s.channels)


class Activation(LayerSpec):
    """Standalone activation marker (kind records ReLU/GST semantics)."""

    def __init__(self, name: str, kind: str = "relu") -> None:
        super().__init__(name)
        self.kind = kind

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        return self._single(inputs)


class BatchNorm(LayerSpec):
    """Batch normalization, folded into the preceding conv at inference."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        return self._single(inputs)

    def params(self, inputs: list[TensorShape]) -> int:
        return 2 * self._single(inputs).channels


class Add(LayerSpec):
    """Elementwise residual addition of two same-shape branches."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        if len(inputs) < 2:
            raise ShapeError(f"{self.name}: Add needs >= 2 inputs")
        first = inputs[0]
        for other in inputs[1:]:
            if other != first:
                raise ShapeError(
                    f"{self.name}: cannot add shapes {first} and {other}"
                )
        return first


class Concat(LayerSpec):
    """Channel concatenation of branches with matching spatial dims."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        if len(inputs) < 2:
            raise ShapeError(f"{self.name}: Concat needs >= 2 inputs")
        h, w = inputs[0].height, inputs[0].width
        channels = 0
        for s in inputs:
            if (s.height, s.width) != (h, w):
                raise ShapeError(
                    f"{self.name}: spatial mismatch {s} vs ({h}, {w})"
                )
            channels += s.channels
        return TensorShape(h, w, channels)
