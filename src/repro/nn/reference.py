"""Digital reference implementations (pure NumPy).

This is the "train a digital model" baseline the paper argues against
(Sec. I) and the ground truth the photonic functional simulator is validated
to: dense forward/backward, the ReLU and GST activations, losses, an SGD
MLP, and an im2col convolution used to validate the conv -> GEMM lowering.

Everything is batch-vectorized: activations are (batch, features) and a
forward pass is one matmul per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError

GST_SLOPE = 0.34


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------
def relu(x: np.ndarray) -> np.ndarray:
    """max(0, x)."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """1 above zero, 0 below."""
    return (x > 0.0).astype(np.float64)


def gst_activation(x: np.ndarray, slope: float = GST_SLOPE) -> np.ndarray:
    """The GST cell's transfer: slope * max(0, x) (paper Fig 3)."""
    return slope * np.maximum(x, 0.0)


def gst_derivative(x: np.ndarray, slope: float = GST_SLOPE) -> np.ndarray:
    """Two-valued derivative: slope above threshold, 0 below."""
    return np.where(x > 0.0, slope, 0.0)


ACTIVATIONS: dict[str, tuple] = {
    "relu": (relu, relu_grad),
    "gst": (gst_activation, gst_derivative),
    "identity": (lambda x: x, lambda x: np.ones_like(x)),
}


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean-squared error and its gradient w.r.t. pred."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ShapeError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy (labels are integer class ids) + gradient."""
    logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
    labels = np.atleast_1d(np.asarray(labels))
    if labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"{labels.shape[0]} labels for {logits.shape[0]} logit rows"
        )
    probs = softmax(logits)
    batch = logits.shape[0]
    picked = probs[np.arange(batch), labels]
    loss = float(-np.mean(np.log(np.maximum(picked, 1e-30))))
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


# ---------------------------------------------------------------------------
# Dense MLP with explicit backprop (Eqs. 1-3 of the paper)
# ---------------------------------------------------------------------------
@dataclass
class MLPGradients:
    """Weight gradients, one array per layer."""

    weights: list[np.ndarray] = field(default_factory=list)


class DigitalMLP:
    """Bias-free fully connected network trained with plain backprop.

    Bias-free because Trident's weight banks implement pure matrix-vector
    products; this keeps the digital baseline architecturally identical to
    what the photonic hardware trains.
    """

    def __init__(
        self,
        dims: list[int],
        activation: str = "gst",
        seed: int = 0,
        weight_scale: float | None = None,
    ) -> None:
        if len(dims) < 2:
            raise ShapeError("need at least input and output widths")
        if activation not in ACTIVATIONS:
            raise ShapeError(
                f"unknown activation {activation!r}; choose from {sorted(ACTIVATIONS)}"
            )
        self.dims = list(dims)
        self.activation = activation
        self._act, self._act_grad = ACTIVATIONS[activation]
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        for n_in, n_out in zip(dims[:-1], dims[1:]):
            scale = weight_scale if weight_scale is not None else np.sqrt(2.0 / n_in)
            self.weights.append(rng.normal(0.0, scale, size=(n_out, n_in)))

    @property
    def n_layers(self) -> int:
        """Number of weight layers."""
        return len(self.weights)

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, return_intermediates: bool = False
    ):
        """Batched forward pass; activation on all layers except the last.

        ``x`` is (batch, n_in).  Returns logits (batch, n_out), plus the
        per-layer (inputs, pre-activations) when requested.
        """
        a = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if a.shape[1] != self.dims[0]:
            raise ShapeError(f"input width {a.shape[1]} != {self.dims[0]}")
        inputs: list[np.ndarray] = []
        logits: list[np.ndarray] = []
        for k, w in enumerate(self.weights):
            inputs.append(a)
            h = a @ w.T
            logits.append(h)
            a = self._act(h) if k < self.n_layers - 1 else h
        if return_intermediates:
            return a, inputs, logits
        return a

    def gradients(self, x: np.ndarray, grad_output: np.ndarray) -> MLPGradients:
        """Backprop a loss gradient to per-layer weight gradients.

        Implements the paper's Eqs. (2)-(3): delta_h propagates through
        W^T and the activation derivative; dW = delta_h^T y_{k-1}.
        """
        _, inputs, logits = self.forward(x, return_intermediates=True)
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        grads = [np.zeros_like(w) for w in self.weights]
        delta = grad_output  # (batch, n_out) — dL/dh for the last layer
        for k in reversed(range(self.n_layers)):
            grads[k] = delta.T @ inputs[k]
            if k > 0:
                delta = (delta @ self.weights[k]) * self._act_grad(logits[k - 1])
        return MLPGradients(weights=grads)

    def train_step(
        self, x: np.ndarray, labels: np.ndarray, lr: float = 0.05
    ) -> float:
        """One SGD step on softmax cross-entropy; returns the loss."""
        logits = self.forward(x)
        loss, grad = cross_entropy_loss(logits, labels)
        grads = self.gradients(x, grad)
        for w, g in zip(self.weights, grads.weights):
            w -= lr * g
        return loss

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(self.forward(x), axis=-1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a batch."""
        return float(np.mean(self.predict(x) == np.asarray(labels)))


# ---------------------------------------------------------------------------
# im2col convolution (validates the conv -> GEMM lowering)
# ---------------------------------------------------------------------------
def im2col(
    image: np.ndarray, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold (H, W, C) into (out_h * out_w, kernel * kernel * C) patches."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 3:
        raise ShapeError(f"expected (H, W, C), got shape {img.shape}")
    if padding:
        img = np.pad(img, ((padding, padding), (padding, padding), (0, 0)))
    h, w, c = img.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ShapeError("convolution output collapsed")
    # Strided sliding-window view, then one reshape copy (guide: views, not
    # per-patch Python loops).
    s0, s1, s2 = img.strides
    windows = np.lib.stride_tricks.as_strided(
        img,
        shape=(out_h, out_w, kernel, kernel, c),
        strides=(s0 * stride, s1 * stride, s0, s1, s2),
        writeable=False,
    )
    return windows.reshape(out_h * out_w, kernel * kernel * c)


def conv2d_reference(
    image: np.ndarray,
    filters: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct conv via im2col GEMM: (H, W, C) x (K, R, R, C) -> (oh, ow, K)."""
    filters = np.asarray(filters, dtype=np.float64)
    if filters.ndim != 4 or filters.shape[1] != filters.shape[2]:
        raise ShapeError(f"filters must be (K, R, R, C), got {filters.shape}")
    k_out, r, _, c = filters.shape
    if image.shape[2] != c:
        raise ShapeError(
            f"channel mismatch: image C={image.shape[2]}, filters C={c}"
        )
    cols = im2col(image, r, stride, padding)
    out = cols @ filters.reshape(k_out, r * r * c).T
    h_pad = image.shape[0] + 2 * padding
    out_h = (h_pad - r) // stride + 1
    return out.reshape(out_h, -1, k_out)
