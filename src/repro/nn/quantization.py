"""Weight quantization onto PCM level grids.

GST cells resolve 255 levels (8-bit); thermally tuned MRRs resolve only 6
bits (paper Sec. II-B).  The symmetric per-tensor scheme here mirrors what
the accelerator's control unit does before programming a bank: scale the
tensor to unit max, snap to the level grid, remember the scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProgrammingError


@dataclass(frozen=True)
class UniformQuantizer:
    """Symmetric uniform quantizer over [-1, 1] with ``levels`` steps."""

    levels: int = 255

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ProgrammingError(f"need >= 2 levels, got {self.levels}")

    @classmethod
    def from_bits(cls, bits: int) -> "UniformQuantizer":
        """Quantizer with 2**bits - 1 levels (255 for 8-bit GST)."""
        if bits < 1:
            raise ProgrammingError(f"bits must be positive, got {bits}")
        return cls(levels=(1 << bits) - 1)

    @property
    def step(self) -> float:
        """Level pitch in weight units."""
        return 2.0 / (self.levels - 1)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Snap values in [-1, 1] onto integer levels [0, levels-1]."""
        v = np.asarray(values, dtype=np.float64)
        if np.any(np.abs(v) > 1.0 + 1e-9):
            raise ProgrammingError("values must lie in [-1, 1]; scale first")
        return np.rint((np.clip(v, -1.0, 1.0) + 1.0) / 2.0 * (self.levels - 1)).astype(
            np.int64
        )

    def dequantize(self, levels: np.ndarray) -> np.ndarray:
        """Map integer levels back to weight values in [-1, 1]."""
        lv = np.asarray(levels, dtype=np.float64)
        if np.any(lv < 0) or np.any(lv > self.levels - 1):
            raise ProgrammingError(
                f"levels must lie in [0, {self.levels - 1}]"
            )
        return lv / (self.levels - 1) * 2.0 - 1.0

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """quantize + dequantize in one call."""
        return self.dequantize(self.quantize(values))

    def max_error(self) -> float:
        """Worst-case representation error (half a step)."""
        return self.step / 2.0


@dataclass(frozen=True)
class QuantizedTensor:
    """A quantized tensor with its restore scale."""

    levels: np.ndarray
    scale: float
    quantizer: UniformQuantizer

    @property
    def values(self) -> np.ndarray:
        """Dequantized real values."""
        return self.quantizer.dequantize(self.levels) * self.scale


def quantize_tensor(
    values: np.ndarray, bits: int = 8
) -> QuantizedTensor:
    """Symmetric per-tensor quantization: scale to unit max, snap to grid."""
    v = np.asarray(values, dtype=np.float64)
    q = UniformQuantizer.from_bits(bits)
    peak = float(np.max(np.abs(v))) if v.size else 0.0
    scale = peak if peak > 0 else 1.0
    return QuantizedTensor(levels=q.quantize(v / scale), scale=scale, quantizer=q)


def quantization_snr_db(values: np.ndarray, bits: int = 8) -> float:
    """Signal-to-quantization-noise ratio of round-tripping a tensor."""
    v = np.asarray(values, dtype=np.float64)
    if not v.size or not np.any(v):
        raise ProgrammingError("need a non-zero tensor for SNR")
    restored = quantize_tensor(v, bits).values
    noise = v - restored
    signal_power = float(np.mean(v * v))
    noise_power = float(np.mean(noise * noise))
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)
