"""Model zoo: the five CNNs the paper evaluates (Sec. IV).

AlexNet, VGG-16, GoogleNet (Inception v1), ResNet-50, and MobileNetV2, each
with a 224 x 224 x 3 input and ReLU activations — the configuration the
paper analyzes with Maestro.  The builders construct :class:`Network` DAGs
from the published layer tables; totals (MACs / parameters) are asserted
against the literature in the test suite.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ShapeError
from repro.nn.graph import Network
from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    Pool,
    TensorShape,
)

IMAGENET_INPUT = TensorShape(224, 224, 3)


# ---------------------------------------------------------------------------
# AlexNet
# ---------------------------------------------------------------------------
def alexnet(input_shape: TensorShape = IMAGENET_INPUT, n_classes: int = 1000) -> Network:
    """Classic AlexNet (5 conv + 3 fc), ~61 M parameters, ~0.7 G MACs."""
    net = Network("alexnet", input_shape)
    net.add(Conv2D("conv1", 96, kernel=11, stride=4, padding=2))
    net.add(Pool("pool1", kernel=3, stride=2))
    net.add(Conv2D("conv2", 256, kernel=5, padding=2))
    net.add(Pool("pool2", kernel=3, stride=2))
    net.add(Conv2D("conv3", 384, kernel=3))
    net.add(Conv2D("conv4", 384, kernel=3))
    net.add(Conv2D("conv5", 256, kernel=3))
    net.add(Pool("pool3", kernel=3, stride=2))
    net.add(Dense("fc6", 4096))
    net.add(Dense("fc7", 4096))
    net.add(Dense("fc8", n_classes, fused_activation=False))
    return net


# ---------------------------------------------------------------------------
# VGG-16
# ---------------------------------------------------------------------------
def vgg16(input_shape: TensorShape = IMAGENET_INPUT, n_classes: int = 1000) -> Network:
    """VGG-16 (13 conv + 3 fc), ~138 M parameters, ~15.5 G MACs."""
    net = Network("vgg16", input_shape)
    block = 0
    for n_convs, channels in ((2, 64), (2, 128), (3, 256), (3, 512), (3, 512)):
        block += 1
        for i in range(1, n_convs + 1):
            net.add(Conv2D(f"conv{block}_{i}", channels, kernel=3))
        net.add(Pool(f"pool{block}", kernel=2, stride=2))
    net.add(Dense("fc1", 4096))
    net.add(Dense("fc2", 4096))
    net.add(Dense("fc3", n_classes, fused_activation=False))
    return net


# ---------------------------------------------------------------------------
# GoogleNet (Inception v1)
# ---------------------------------------------------------------------------
def _inception(
    net: Network,
    name: str,
    source: str,
    c1: int,
    c3r: int,
    c3: int,
    c5r: int,
    c5: int,
    pool_proj: int,
) -> str:
    """One Inception module; returns the concat node's name."""
    b1 = net.add(Conv2D(f"{name}_1x1", c1, kernel=1), source)
    r3 = net.add(Conv2D(f"{name}_3x3red", c3r, kernel=1), source)
    b3 = net.add(Conv2D(f"{name}_3x3", c3, kernel=3), r3)
    r5 = net.add(Conv2D(f"{name}_5x5red", c5r, kernel=1), source)
    b5 = net.add(Conv2D(f"{name}_5x5", c5, kernel=5), r5)
    pool = net.add(Pool(f"{name}_pool", kernel=3, stride=1, padding=1), source)
    bp = net.add(Conv2D(f"{name}_poolproj", pool_proj, kernel=1), pool)
    return net.add(Concat(f"{name}_concat"), [b1, b3, b5, bp])


#: Inception module configurations: (1x1, 3x3red, 3x3, 5x5red, 5x5, pool_proj).
GOOGLENET_INCEPTIONS: dict[str, tuple[int, int, int, int, int, int]] = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def googlenet(input_shape: TensorShape = IMAGENET_INPUT, n_classes: int = 1000) -> Network:
    """GoogleNet / Inception v1, ~6 M parameters, ~1.6 G MACs."""
    net = Network("googlenet", input_shape)
    net.add(Conv2D("conv1", 64, kernel=7, stride=2, padding=3))
    net.add(Pool("pool1", kernel=3, stride=2, padding=1))
    net.add(Conv2D("conv2_red", 64, kernel=1))
    net.add(Conv2D("conv2", 192, kernel=3))
    last = net.add(Pool("pool2", kernel=3, stride=2, padding=1))
    for stage, pool_after in (("3a", False), ("3b", True), ("4a", False), ("4b", False),
                              ("4c", False), ("4d", False), ("4e", True), ("5a", False),
                              ("5b", False)):
        last = _inception(net, f"inception{stage}", last, *GOOGLENET_INCEPTIONS[stage])
        if pool_after:
            last = net.add(Pool(f"pool_{stage}", kernel=3, stride=2, padding=1), last)
    net.add(GlobalAvgPool("gap"), last)
    net.add(Dense("fc", n_classes, fused_activation=False))
    return net


# ---------------------------------------------------------------------------
# ResNet-50
# ---------------------------------------------------------------------------
def _bottleneck(
    net: Network,
    name: str,
    source: str,
    mid_channels: int,
    out_channels: int,
    stride: int,
    project: bool,
) -> str:
    """One ResNet bottleneck (1x1 -> 3x3 -> 1x1 + shortcut)."""
    a = net.add(Conv2D(f"{name}_a", mid_channels, kernel=1), source)
    b = net.add(Conv2D(f"{name}_b", mid_channels, kernel=3, stride=stride), a)
    c = net.add(
        Conv2D(f"{name}_c", out_channels, kernel=1, fused_activation=False), b
    )
    if project:
        shortcut = net.add(
            Conv2D(f"{name}_proj", out_channels, kernel=1, stride=stride,
                   fused_activation=False),
            source,
        )
    else:
        shortcut = source
    return net.add(Add(f"{name}_add"), [c, shortcut])


#: Stage layout: (blocks, mid_channels, out_channels, first_stride).
RESNET50_STAGES: tuple[tuple[int, int, int, int], ...] = (
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
)


def resnet50(input_shape: TensorShape = IMAGENET_INPUT, n_classes: int = 1000) -> Network:
    """ResNet-50, ~25.6 M parameters, ~4.1 G MACs."""
    net = Network("resnet50", input_shape)
    net.add(Conv2D("conv1", 64, kernel=7, stride=2, padding=3))
    last = net.add(Pool("pool1", kernel=3, stride=2, padding=1))
    for stage_idx, (blocks, mid, out, first_stride) in enumerate(RESNET50_STAGES, start=2):
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            last = _bottleneck(
                net,
                f"res{stage_idx}_{block}",
                last,
                mid_channels=mid,
                out_channels=out,
                stride=stride,
                project=(block == 0),
            )
    net.add(GlobalAvgPool("gap"), last)
    net.add(Dense("fc", n_classes, fused_activation=False))
    return net


# ---------------------------------------------------------------------------
# MobileNetV2
# ---------------------------------------------------------------------------
#: Inverted-residual stages: (expansion, out_channels, repeats, first_stride).
MOBILENETV2_STAGES: tuple[tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def mobilenet_v2(input_shape: TensorShape = IMAGENET_INPUT, n_classes: int = 1000) -> Network:
    """MobileNetV2, ~3.5 M parameters, ~0.3 G MACs."""
    net = Network("mobilenet_v2", input_shape)
    last = net.add(Conv2D("conv_stem", 32, kernel=3, stride=2))
    in_channels = 32
    block_id = 0
    for expansion, out_channels, repeats, first_stride in MOBILENETV2_STAGES:
        for r in range(repeats):
            stride = first_stride if r == 0 else 1
            name = f"block{block_id}"
            source = last
            hidden = in_channels * expansion
            if expansion != 1:
                last = net.add(Conv2D(f"{name}_expand", hidden, kernel=1), last)
            last = net.add(DepthwiseConv2D(f"{name}_dw", kernel=3, stride=stride), last)
            last = net.add(
                Conv2D(f"{name}_project", out_channels, kernel=1,
                       fused_activation=False),
                last,
            )
            if stride == 1 and in_channels == out_channels:
                last = net.add(Add(f"{name}_add"), [last, source])
            in_channels = out_channels
            block_id += 1
    net.add(Conv2D("conv_head", 1280, kernel=1), last)
    net.add(GlobalAvgPool("gap"))
    net.add(Dense("fc", n_classes, fused_activation=False))
    return net


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
MODEL_BUILDERS: dict[str, Callable[..., Network]] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "googlenet": googlenet,
    "resnet50": resnet50,
    "mobilenet_v2": mobilenet_v2,
}

#: The presentation order the paper's figures use.
PAPER_MODELS: tuple[str, ...] = (
    "googlenet",
    "mobilenet_v2",
    "vgg16",
    "alexnet",
    "resnet50",
)


def build_model(name: str, **kwargs) -> Network:
    """Build a zoo model by name (see :data:`MODEL_BUILDERS`)."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ShapeError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(**kwargs)
