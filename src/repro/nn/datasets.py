"""Synthetic datasets for in-situ training experiments.

The paper trains on 50 000 images; offline image corpora are not available
here, so these generators provide classification tasks of controllable
difficulty that exercise the identical training code path (DESIGN.md's
substitution table).  All generators take an explicit seed and return
float64 features + integer labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class Dataset:
    """Features (n, d) and integer labels (n,)."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.ndim != 2 or self.y.ndim != 1:
            raise ConfigError(
                f"x must be 2-D and y 1-D, got {self.x.shape} / {self.y.shape}"
            )
        if self.x.shape[0] != self.y.shape[0]:
            raise ConfigError("x and y must have matching lengths")

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return self.x.shape[0]

    @property
    def n_features(self) -> int:
        """Feature dimensionality."""
        return self.x.shape[1]

    @property
    def n_classes(self) -> int:
        """Number of distinct labels."""
        return int(self.y.max()) + 1 if self.y.size else 0

    def split(self, train_fraction: float = 0.8, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.n_samples)
        cut = int(round(self.n_samples * train_fraction))
        if cut == 0 or cut == self.n_samples:
            raise ConfigError("split produced an empty partition")
        tr, te = order[:cut], order[cut:]
        return Dataset(self.x[tr], self.y[tr]), Dataset(self.x[te], self.y[te])

    def batches(self, batch_size: int, seed: int = 0):
        """Yield shuffled (x, y) minibatches covering the dataset once."""
        if batch_size < 1:
            raise ConfigError(f"batch_size must be positive, got {batch_size}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(self.n_samples)
        for start in range(0, self.n_samples, batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]


def standardize(x: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per feature (constant features pass through)."""
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std = np.where(std > 0, std, 1.0)
    return (x - mean) / std


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """(n,) integer labels -> (n, n_classes) one-hot floats."""
    y = np.asarray(labels)
    if y.size and (y.min() < 0 or y.max() >= n_classes):
        raise ConfigError(f"labels out of range for {n_classes} classes")
    out = np.zeros((y.shape[0], n_classes), dtype=np.float64)
    out[np.arange(y.shape[0]), y] = 1.0
    return out


def make_blobs(
    n_samples: int = 400,
    n_features: int = 8,
    n_classes: int = 4,
    spread: float = 0.6,
    seed: int = 0,
) -> Dataset:
    """Gaussian clusters, one per class, centers on a scaled hypercube."""
    if n_samples < n_classes or n_classes < 2:
        raise ConfigError("need >= 2 classes and at least one sample each")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-2.0, 2.0, size=(n_classes, n_features))
    y = rng.integers(0, n_classes, size=n_samples)
    x = centers[y] + rng.normal(0.0, spread, size=(n_samples, n_features))
    return Dataset(x=x, y=y)


def make_moons(n_samples: int = 400, noise: float = 0.1, seed: int = 0) -> Dataset:
    """Two interleaved half circles in 2-D (binary)."""
    if n_samples < 4:
        raise ConfigError("need at least 4 samples")
    rng = np.random.default_rng(seed)
    n0 = n_samples // 2
    n1 = n_samples - n0
    t0 = rng.uniform(0.0, np.pi, n0)
    t1 = rng.uniform(0.0, np.pi, n1)
    x0 = np.stack([np.cos(t0), np.sin(t0)], axis=1)
    x1 = np.stack([1.0 - np.cos(t1), 0.5 - np.sin(t1)], axis=1)
    x = np.concatenate([x0, x1]) + rng.normal(0.0, noise, size=(n_samples, 2))
    y = np.concatenate([np.zeros(n0, dtype=np.int64), np.ones(n1, dtype=np.int64)])
    return Dataset(x=x, y=y)


def make_teacher(
    n_samples: int = 500,
    n_features: int = 12,
    n_classes: int = 3,
    hidden: int = 16,
    seed: int = 0,
) -> Dataset:
    """Labels produced by a random two-layer teacher network.

    Harder than blobs: the decision boundary is a genuine composition of a
    linear map and a ReLU, i.e. exactly the function family the photonic
    hardware trains.
    """
    if n_classes < 2 or hidden < 1:
        raise ConfigError("need >= 2 classes and a positive hidden width")
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, size=(n_samples, n_features))
    w1 = rng.normal(0.0, 1.0, size=(hidden, n_features)) / np.sqrt(n_features)
    w2 = rng.normal(0.0, 1.0, size=(n_classes, hidden)) / np.sqrt(hidden)
    logits = np.maximum(x @ w1.T, 0.0) @ w2.T
    return Dataset(x=x, y=np.argmax(logits, axis=1))


def make_shapes(
    n_samples: int = 300,
    size: int = 8,
    noise: float = 0.15,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Tiny image-classification task for the functional CNN path.

    Three classes of ``size x size x 1`` images in [0, 1]: vertical
    stripes, horizontal stripes, and a checkerboard, each corrupted by
    additive noise and a random phase shift.  Returns (images, labels)
    with images shaped (n, size, size, 1).
    """
    if n_samples < 3:
        raise ConfigError("need at least 3 samples")
    if size < 4:
        raise ConfigError("size must be at least 4")
    if noise < 0:
        raise ConfigError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=n_samples)
    idx = np.arange(size)
    images = np.empty((n_samples, size, size, 1), dtype=np.float64)
    for i, label in enumerate(labels):
        phase = int(rng.integers(0, 2))
        if label == 0:  # vertical stripes
            pattern = ((idx[None, :] + phase) % 2).astype(float)
            img = np.broadcast_to(pattern, (size, size)).copy()
        elif label == 1:  # horizontal stripes
            pattern = ((idx[:, None] + phase) % 2).astype(float)
            img = np.broadcast_to(pattern, (size, size)).copy()
        else:  # checkerboard
            img = ((idx[:, None] + idx[None, :] + phase) % 2).astype(float)
        img = img + rng.normal(0.0, noise, size=(size, size))
        images[i, :, :, 0] = np.clip(img, 0.0, 1.0)
    return images, labels
