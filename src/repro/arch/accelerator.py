"""The Trident accelerator: PE chain, layer mapping, functional execution.

This module is the *functional* top level: real numbers flow through the
quantized, noisy photonic models.  Networks whose layers fit a single PE
(the in-situ training scenario) map one PE per layer, exactly as the paper
describes ("by assigning one PE to each layer of a NN"); larger dense layers
are tiled across a PE's bank with electronic partial-sum accumulation.  The
CNN-scale energy/latency analysis lives in :mod:`repro.dataflow` — same
device parameters, analytical roll-up.

Analog range management: every vector entering a bank is normalized into
[-1, 1] (the E/O encoder's range) and every weight matrix is normalized to
unit max before quantization; the control unit tracks the scales and
restores them after detection.  Because the GST activation is positively
homogeneous (slope * max(0, h)), normalization commutes with it and the
chain stays exact up to quantization + noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import TridentConfig
from repro.arch.control import ControlUnit, OperatingMode, RangeNormalizer
from repro.arch.pe import ProcessingElement
from repro.arch.weight_bank import BankStats, WeightBank
from repro.devices.noise import NoiseModel
from repro.devices.photodetector import BalancedPhotodetector
from repro.errors import MappingError, ShapeError


@dataclass
class EventCounters:
    """Aggregated hardware events for a functional run."""

    bank_writes: int = 0
    cells_written: int = 0
    symbols: int = 0
    activation_events: int = 0
    mode_switches: int = 0

    def snapshot(self) -> "EventCounters":
        """Copy of the current counters (for before/after deltas)."""
        return EventCounters(
            bank_writes=self.bank_writes,
            cells_written=self.cells_written,
            symbols=self.symbols,
            activation_events=self.activation_events,
            mode_switches=self.mode_switches,
        )


@dataclass
class MappedLayer:
    """A dense layer mapped onto PE bank tiles."""

    index: int
    out_dim: int
    in_dim: int
    apply_activation: bool
    #: (row_start, row_stop, col_start, col_stop, pe_index) per tile.
    tiles: list[tuple[int, int, int, int, int]]
    #: Digital shadow of the true weights (the control unit's copy).
    weights: np.ndarray | None = None
    #: Scale dividing the true weights into [-1, 1].
    weight_scale: float = 1.0
    #: Forward-pass bookkeeping for training.
    last_input: np.ndarray | None = None
    last_logits: np.ndarray | None = None


class TridentAccelerator:
    """Functional Trident instance."""

    def __init__(
        self,
        config: TridentConfig | None = None,
        noise: NoiseModel | None = None,
        programming_noise_levels: float = 0.0,
    ) -> None:
        self.config = config or TridentConfig()
        self.noise = noise or NoiseModel.ideal()
        if programming_noise_levels < 0:
            raise MappingError("programming noise must be non-negative")
        self.programming_noise_levels = programming_noise_levels
        self.control = ControlUnit()
        self.pes: list[ProcessingElement] = []
        self.layers: list[MappedLayer] = []
        self.counters = EventCounters()

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def _new_pe(self) -> ProcessingElement:
        pe = ProcessingElement(
            bank=WeightBank(
                rows=self.config.bank_rows,
                cols=self.config.bank_cols,
                tuning=self.config.tuning,
                noise=self.noise,
                programming_noise_levels=self.programming_noise_levels,
            ),
            bpd=BalancedPhotodetector(noise=self.noise),
        )
        self.pes.append(pe)
        return pe

    def map_mlp(self, dims: list[int], activate_last: bool = False) -> None:
        """Map a fully connected network given its layer widths.

        ``dims = [n_in, n_h1, ..., n_out]`` creates len(dims)-1 layers.
        Each layer gets ceil(out/J) x ceil(in/N) tiles, one PE per tile
        (the paper's one-PE-per-layer mapping is the single-tile case).
        """
        if len(dims) < 2:
            raise MappingError("an MLP needs at least input and output widths")
        if any(d < 1 for d in dims):
            raise MappingError(f"layer widths must be positive, got {dims}")
        self.pes = []
        self.layers = []
        self.counters = EventCounters()
        J, N = self.config.bank_rows, self.config.bank_cols
        total_tiles = 0
        for k, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
            tiles = []
            for r0 in range(0, n_out, J):
                for c0 in range(0, n_in, N):
                    pe_index = len(self.pes)
                    self._new_pe()
                    tiles.append((r0, min(r0 + J, n_out), c0, min(c0 + N, n_in), pe_index))
            total_tiles += len(tiles)
            last = k == len(dims) - 2
            self.layers.append(
                MappedLayer(
                    index=k,
                    out_dim=n_out,
                    in_dim=n_in,
                    apply_activation=(not last) or activate_last,
                    tiles=tiles,
                )
            )
        if total_tiles > self.config.n_pes:
            raise MappingError(
                f"network needs {total_tiles} PE tiles but the configuration "
                f"has {self.config.n_pes} PEs; enlarge the config or shrink "
                "the network (the CNN-scale path is repro.dataflow)"
            )

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Program true-valued weight matrices (one per mapped layer)."""
        if len(weights) != len(self.layers):
            raise MappingError(
                f"got {len(weights)} weight matrices for {len(self.layers)} layers"
            )
        for layer, w in zip(self.layers, weights):
            self._program_layer(layer, np.asarray(w, dtype=np.float64))

    def _program_layer(self, layer: MappedLayer, weights: np.ndarray) -> None:
        if weights.shape != (layer.out_dim, layer.in_dim):
            raise ShapeError(
                f"layer {layer.index} expects weights "
                f"({layer.out_dim}, {layer.in_dim}), got {weights.shape}"
            )
        peak = float(np.max(np.abs(weights))) if weights.size else 0.0
        scale = peak if peak > 1.0 else 1.0
        norm = weights / scale
        for r0, r1, c0, c1, pe_index in layer.tiles:
            self.pes[pe_index].program_weights(norm[r0:r1, c0:c1])
            self.counters.bank_writes += 1
            self.counters.cells_written += (r1 - r0) * (c1 - c0)
        layer.weights = weights.copy()
        layer.weight_scale = scale

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, record: bool = False) -> np.ndarray:
        """Run one input vector through the mapped network.

        Returns the final-layer output in true (denormalized) units.  With
        ``record`` the per-layer inputs/logits are kept for a training step.
        """
        if not self.layers:
            raise MappingError("map a network before calling forward()")
        if self.control.set_mode(OperatingMode.INFERENCE):
            self.counters.mode_switches += 1
        value = np.asarray(x, dtype=np.float64)
        if value.shape != (self.layers[0].in_dim,):
            raise ShapeError(
                f"input shape {value.shape} != ({self.layers[0].in_dim},)"
            )
        for layer in self.layers:
            if layer.weights is None:
                raise MappingError(f"layer {layer.index} has no programmed weights")
            if record:
                layer.last_input = value.copy()
            enc = RangeNormalizer.normalize(value)
            logits_norm = np.zeros(layer.out_dim, dtype=np.float64)
            single_tile = len(layer.tiles) == 1
            for r0, r1, c0, c1, pe_index in layer.tiles:
                pe = self.pes[pe_index]
                part = pe.forward(
                    enc.values[c0:c1],
                    apply_activation=False,
                    capture_derivative=single_tile,
                )
                logits_norm[r0:r1] += part
                self.counters.symbols += 1
            logits = logits_norm * enc.scale * layer.weight_scale
            if record:
                layer.last_logits = logits.copy()
            if layer.apply_activation:
                # Positive homogeneity lets the cell act on true-scaled
                # logits via its normalized transfer; count firing events
                # on the first tile's cell.
                cell = self.pes[layer.tiles[0][4]].activation
                before = cell.firing_events
                value = cell.fire(logits)
                self.counters.activation_events += cell.firing_events - before
            else:
                value = logits
        return value

    def forward_batch(self, xs: np.ndarray) -> np.ndarray:
        """Forward a (B, n_in) batch.

        When every layer fits a single PE tile the batch streams through
        each bank as one vectorized ``matmat`` call (one symbol per sample
        per layer — the physical streaming mode); tiled networks fall back
        to the per-sample path.  Both paths produce identical results for
        noise-free hardware; with noise enabled they differ only in draw
        order.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2:
            raise ShapeError(f"expected a 2-D batch, got shape {xs.shape}")
        if not self.layers:
            raise MappingError("map a network before calling forward_batch()")
        if any(len(layer.tiles) != 1 for layer in self.layers):
            return np.stack([self.forward(row) for row in xs])
        if xs.shape[1] != self.layers[0].in_dim:
            raise ShapeError(
                f"batch width {xs.shape[1]} != ({self.layers[0].in_dim},)"
            )
        if self.control.set_mode(OperatingMode.INFERENCE):
            self.counters.mode_switches += 1
        batch = xs.shape[0]
        value = xs.T  # (features, batch)
        for layer in self.layers:
            if layer.weights is None:
                raise MappingError(f"layer {layer.index} has no programmed weights")
            # Per-sample encode scales (the E/O stage normalizes each
            # sample independently).
            scales = np.maximum(np.max(np.abs(value), axis=0), 1.0)
            pe = self.pes[layer.tiles[0][4]]
            diff = pe.bank.matmat(value / scales)
            logits = pe.bpd.detect_normalized(diff) * scales * layer.weight_scale
            self.counters.symbols += batch
            if layer.apply_activation:
                cell = pe.activation
                before = cell.firing_events
                value = cell.fire(logits)
                self.counters.activation_events += cell.firing_events - before
            else:
                value = logits
        return value.T

    # ------------------------------------------------------------------
    # Cost accounting (functional runs)
    # ------------------------------------------------------------------
    def energy_estimate_j(self) -> float:
        """Energy of everything executed so far, from Table III components.

        Bank writes cost their pulse energy (write power x write time ==
        cells x 660 pJ — the device- and system-level views agree); each
        streamed symbol costs the per-PE streaming power over one symbol
        period; activation firings cost the reset energy.
        """
        stats = self.bank_stats()
        symbol_energy = self.config.pe_streaming_power_w / self.config.symbol_rate_hz
        reset = sum(pe.activation.reset_energy_spent_j for pe in self.pes)
        return stats.write_energy_j + stats.symbols * symbol_energy + reset

    def time_estimate_s(self) -> float:
        """Serialized wall-clock estimate: writes + symbol streaming."""
        stats = self.bank_stats()
        return (
            stats.write_events * self.config.tuning.write_time()
            + stats.symbols / self.config.symbol_rate_hz
        )

    def bank_stats(self) -> BankStats:
        """Merged programming/usage counters across all PEs."""
        merged = BankStats()
        for pe in self.pes:
            merged = merged.merge(pe.bank.stats)
        return merged

    # ------------------------------------------------------------------
    # Layer pipelining (paper Fig 1: PE-to-PE optical forwarding)
    # ------------------------------------------------------------------
    def pipeline_latency_s(self) -> float:
        """Single-sample latency with layers chained optically.

        One PE per layer: a sample's layer-k output re-encodes onto fresh
        wavelengths and feeds PE k+1 directly — no memory round-trip.  The
        latency is one symbol period per single-tile layer (plus one per
        reduction tile when a layer spans several PEs, since electronic
        partial accumulation must complete first).
        """
        if not self.layers:
            raise MappingError("map a network before estimating latency")
        total_symbols = 0
        J, N = self.config.bank_rows, self.config.bank_cols
        for layer in self.layers:
            tiles_k = -(-layer.in_dim // N)
            total_symbols += tiles_k
        return total_symbols / self.config.symbol_rate_hz

    def pipeline_throughput(self) -> float:
        """Steady-state samples/s with every PE stage busy.

        The chain is a pipeline: a new sample enters each symbol period as
        long as every layer owns its own PE tiles (the mapper guarantees
        this), so throughput is one sample per slowest-stage symbol count.
        """
        if not self.layers:
            raise MappingError("map a network before estimating throughput")
        N = self.config.bank_cols
        slowest = max(-(-layer.in_dim // N) for layer in self.layers)
        return self.config.symbol_rate_hz / slowest
