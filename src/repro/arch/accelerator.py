"""The Trident accelerator: PE chain, layer mapping, functional execution.

This module is the *functional* top level: real numbers flow through the
quantized, noisy photonic models.  Networks whose layers fit a single PE
(the in-situ training scenario) map one PE per layer, exactly as the paper
describes ("by assigning one PE to each layer of a NN"); larger dense layers
are tiled across a PE's bank with electronic partial-sum accumulation.  The
CNN-scale energy/latency analysis lives in :mod:`repro.dataflow` — same
device parameters, analytical roll-up.

Analog range management: every vector entering a bank is normalized into
[-1, 1] (the E/O encoder's range) and weight matrices are rescaled into
[-1, 1] *only when their peak magnitude exceeds 1* — a sub-unit-peak matrix
is programmed as-is (scale 1).  The control unit tracks the scales and
restores them after detection.  Consequence for precision: a layer's
effective quantization step in true-weight units is ``weight_step *
weight_scale``, so small-magnitude layers keep the full-range step
(2 / (levels - 1)) and use only a fraction of the level grid, rather than
being stretched to unit max for a finer step.  Because the GST activation
is positively homogeneous (slope * max(0, h)), normalization commutes with
it and the chain stays exact up to quantization + noise.

Event accounting rule: ``counters.symbols`` counts streamed input vectors
*per bank* — one symbol per tile a sample's vector enters, in every
execution path — so it always equals the PEs' merged ``BankStats.symbols``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import TridentConfig
from repro.arch.control import ControlUnit, OperatingMode, RangeNormalizer
from repro.arch.pe import ProcessingElement
from repro.arch.weight_bank import BankStats, WeightBank
from repro.devices.noise import NoiseModel
from repro.devices.photodetector import BalancedPhotodetector
from repro.devices.program_verify import ProgramVerifyConfig, ProgramVerifyWriter
from repro.errors import MappingError, RepairError, ShapeError
from repro.telemetry.metrics import NULL_INSTRUMENT
from repro.telemetry.session import (
    counter as _metric_counter,
    gauge as _metric_gauge,
    trace_span as _trace_span,
)


@dataclass
class EventCounters:
    """Aggregated hardware events for a functional run."""

    bank_writes: int = 0
    cells_written: int = 0
    symbols: int = 0
    activation_events: int = 0
    mode_switches: int = 0

    def snapshot(self) -> "EventCounters":
        """Copy of the current counters (for before/after deltas)."""
        return EventCounters(
            bank_writes=self.bank_writes,
            cells_written=self.cells_written,
            symbols=self.symbols,
            activation_events=self.activation_events,
            mode_switches=self.mode_switches,
        )

    def diff(self, earlier: "EventCounters") -> "EventCounters":
        """Counters accumulated since ``earlier`` (self - earlier)."""
        return EventCounters(
            bank_writes=self.bank_writes - earlier.bank_writes,
            cells_written=self.cells_written - earlier.cells_written,
            symbols=self.symbols - earlier.symbols,
            activation_events=self.activation_events - earlier.activation_events,
            mode_switches=self.mode_switches - earlier.mode_switches,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order) for reports and profiling."""
        return {
            "bank_writes": self.bank_writes,
            "cells_written": self.cells_written,
            "symbols": self.symbols,
            "activation_events": self.activation_events,
            "mode_switches": self.mode_switches,
        }


@dataclass
class MappedLayer:
    """A dense layer mapped onto PE bank tiles."""

    index: int
    out_dim: int
    in_dim: int
    apply_activation: bool
    #: (row_start, row_stop, col_start, col_stop, pe_index) per tile.
    tiles: list[tuple[int, int, int, int, int]]
    #: Digital shadow of the true weights (the control unit's copy).
    weights: np.ndarray | None = None
    #: Scale dividing the true weights into [-1, 1].
    weight_scale: float = 1.0
    #: Forward-pass bookkeeping for training (per-sample path).
    last_input: np.ndarray | None = None
    last_logits: np.ndarray | None = None
    #: Forward-pass bookkeeping for batched training: (B, in_dim) inputs and
    #: (B, out_dim) true-unit logits of the last recorded forward_batch.
    last_input_batch: np.ndarray | None = None
    last_logits_batch: np.ndarray | None = None
    #: Encoded (in_dim, B) slab + per-sample scales of the last recorded
    #: batch — the E/O output, cached so the integrity checksum rows can
    #: re-stream it without re-encoding.  Derivable, never checkpointed.
    last_enc_batch: np.ndarray | None = None
    last_enc_scales: np.ndarray | None = None
    #: Per-sample ``||x||_1`` of the last recorded batch, computed as a
    #: byproduct of the E/O peak scan (same buffer) for the integrity
    #: verifier's residual normalization.  Derivable, never checkpointed.
    last_l1_batch: np.ndarray | None = None


class TridentAccelerator:
    """Functional Trident instance."""

    def __init__(
        self,
        config: TridentConfig | None = None,
        noise: NoiseModel | None = None,
        programming_noise_levels: float = 0.0,
        seed: int = 0,
        program_verify: ProgramVerifyConfig | None = None,
    ) -> None:
        self.config = config or TridentConfig()
        self.noise = noise or NoiseModel.ideal()
        if programming_noise_levels < 0:
            raise MappingError("programming noise must be non-negative")
        self.programming_noise_levels = programming_noise_levels
        self.control = ControlUnit()
        self.pes: list[ProcessingElement] = []
        self.layers: list[MappedLayer] = []
        self.counters = EventCounters()
        #: One seeded generator for everything stochastic the accelerator
        #: owns (verify writes, fault injection through
        #: :meth:`inject_stuck_faults`) — repeated runs with the same seed
        #: are bit-identical.
        self.rng = np.random.default_rng(seed)
        #: When set, every persistent weight write goes through an
        #: iterative program-and-verify loop whose readback feeds fault
        #: detection (transient-operand writes during training stay
        #: open-loop).  None keeps the nominal single-pulse model.
        self.program_verify = program_verify
        self._verify_writer = (
            ProgramVerifyWriter(program_verify, rng=self.rng)
            if program_verify is not None
            else None
        )
        self._write_listeners: list = []

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def _new_pe(self) -> ProcessingElement:
        pe = ProcessingElement(
            bank=WeightBank(
                rows=self.config.bank_rows,
                cols=self.config.bank_cols,
                tuning=self.config.tuning,
                noise=self.noise,
                programming_noise_levels=self.programming_noise_levels,
                spare_rows=self.config.spare_rows,
                convergence_floor=self.config.convergence_floor,
            ),
            bpd=BalancedPhotodetector(noise=self.noise),
        )
        self.pes.append(pe)
        return pe

    def map_mlp(self, dims: list[int], activate_last: bool = False) -> None:
        """Map a fully connected network given its layer widths.

        ``dims = [n_in, n_h1, ..., n_out]`` creates len(dims)-1 layers.
        Each layer gets ceil(out/J) x ceil(in/N) tiles, one PE per tile
        (the paper's one-PE-per-layer mapping is the single-tile case).
        """
        if len(dims) < 2:
            raise MappingError("an MLP needs at least input and output widths")
        if any(d < 1 for d in dims):
            raise MappingError(f"layer widths must be positive, got {dims}")
        self.pes = []
        self.layers = []
        self.counters = EventCounters()
        J, N = self.config.bank_rows, self.config.bank_cols
        total_tiles = 0
        for k, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
            tiles = []
            for r0 in range(0, n_out, J):
                for c0 in range(0, n_in, N):
                    pe_index = len(self.pes)
                    self._new_pe()
                    tiles.append((r0, min(r0 + J, n_out), c0, min(c0 + N, n_in), pe_index))
            total_tiles += len(tiles)
            last = k == len(dims) - 2
            self.layers.append(
                MappedLayer(
                    index=k,
                    out_dim=n_out,
                    in_dim=n_in,
                    apply_activation=(not last) or activate_last,
                    tiles=tiles,
                )
            )
        if total_tiles > self.config.n_pes:
            raise MappingError(
                f"network needs {total_tiles} PE tiles but the configuration "
                f"has {self.config.n_pes} PEs; enlarge the config or shrink "
                "the network (the CNN-scale path is repro.dataflow)"
            )

    def set_weights(
        self,
        weights: list[np.ndarray],
        weight_scales: "list[float] | None" = None,
    ) -> None:
        """Program true-valued weight matrices (one per mapped layer).

        ``weight_scales`` overrides the per-layer analog scale instead of
        deriving it from each matrix's own peak.  A sharded deployment
        needs this: a row slice of a wide layer must quantize with the
        *full* matrix's scale, or its levels (and outputs) would diverge
        from the single-accelerator reference by the ratio of the peaks.
        """
        if len(weights) != len(self.layers):
            raise MappingError(
                f"got {len(weights)} weight matrices for {len(self.layers)} layers"
            )
        if weight_scales is not None and len(weight_scales) != len(self.layers):
            raise MappingError(
                f"got {len(weight_scales)} weight scales for "
                f"{len(self.layers)} layers"
            )
        for k, (layer, w) in enumerate(zip(self.layers, weights)):
            scale = None if weight_scales is None else weight_scales[k]
            self._program_layer(
                layer, np.asarray(w, dtype=np.float64), scale_override=scale
            )

    def _program_layer(
        self,
        layer: MappedLayer,
        weights: np.ndarray,
        scale_override: "float | None" = None,
    ) -> None:
        if weights.shape != (layer.out_dim, layer.in_dim):
            raise ShapeError(
                f"layer {layer.index} expects weights "
                f"({layer.out_dim}, {layer.in_dim}), got {weights.shape}"
            )
        # Rescale only over-range matrices; a sub-unit-peak matrix keeps
        # scale 1 and therefore the full-range quantization step (module
        # docstring, "Analog range management").
        peak = float(np.max(np.abs(weights))) if weights.size else 0.0
        scale = peak if peak > 1.0 else 1.0
        if scale_override is not None:
            if not scale_override >= max(peak, 1.0):
                raise MappingError(
                    f"layer {layer.index} scale override {scale_override} is "
                    f"below the matrix peak {peak} (or below 1.0); programmed "
                    "levels would clip out of the analog range"
                )
            scale = float(scale_override)
        layer.weights = weights.copy()
        layer.weight_scale = scale
        for tile_index in range(len(layer.tiles)):
            self.reprogram_tile(layer.index, tile_index)

    def reprogram_tile(
        self, layer_index: int, tile_index: int, writer=None
    ):
        """(Re)write one mapped tile's weight block into its bank.

        Programs the tile from the layer's digital weight shadow — the
        unit of work for deployment, repair retries, and post-remap
        rewrites alike, so every repair action pays the same write
        accounting as a deployment write (no free writes).  When the
        accelerator has a verify writer (or an explicit ``writer`` is
        passed, e.g. a retry-escalated one) the write runs program-and-
        verify and registered write listeners see the readback; otherwise
        it is a nominal single-pulse write.  Returns the
        ProgramVerifyResult or None for nominal writes.
        """
        layer = self.layers[layer_index]
        if layer.weights is None:
            raise MappingError(
                f"layer {layer_index} has no programmed weights to rewrite"
            )
        r0, r1, c0, c1, pe_index = layer.tiles[tile_index]
        block = layer.weights[r0:r1, c0:c1] / layer.weight_scale
        pe = self.pes[pe_index]
        use_writer = writer if writer is not None else self._verify_writer
        result = None
        with _trace_span(
            "reprogram_tile",
            accelerator=self,
            layer=layer_index,
            tile=tile_index,
            pe=pe_index,
        ):
            if use_writer is not None:
                _, result = pe.bank.program_verified(block, use_writer)
                for listener in self._write_listeners:
                    listener(pe_index, layer_index, tile_index, pe.bank, result)
            else:
                pe.program_weights(block)
            self.counters.bank_writes += 1
            self.counters.cells_written += (r1 - r0) * (c1 - c0)
        return result

    def migrate_tile(self, layer_index: int, tile_index: int) -> int:
        """Move a tile from its (degraded) PE onto a freshly allocated PE.

        The repair mechanism of last resort: the control unit re-routes
        the tile's optical path to a new PE within the configured PE
        budget and the old PE is retired from this tile.  The tile is left
        unprogrammed on the new bank — callers must
        :meth:`reprogram_tile`, which charges the migration's write cost.
        Returns the new PE index; raises
        :class:`~repro.errors.RepairError` when the PE budget is
        exhausted.
        """
        if len(self.pes) >= self.config.n_pes:
            raise RepairError(
                f"cannot migrate tile: all {self.config.n_pes} PEs allocated"
            )
        layer = self.layers[layer_index]
        r0, r1, c0, c1, _old = layer.tiles[tile_index]
        self._new_pe()
        new_index = len(self.pes) - 1
        layer.tiles[tile_index] = (r0, r1, c0, c1, new_index)
        return new_index

    # ------------------------------------------------------------------
    # Fault-management plumbing
    # ------------------------------------------------------------------
    @property
    def verify_writer(self) -> ProgramVerifyWriter | None:
        """The shared program-and-verify controller (None when nominal)."""
        return self._verify_writer

    def add_write_listener(self, listener) -> None:
        """Register ``listener(pe_index, layer_index, tile_index, bank,
        result)`` to observe every verified weight write's readback —
        the hook :class:`~repro.faults.FaultDetector` attaches through."""
        self._write_listeners.append(listener)

    def inject_stuck_faults(
        self, fraction: float, stuck_level: int | None = None, rng=None
    ) -> int:
        """Inject stuck-at faults into every allocated PE's bank.

        Draws from the accelerator's own seeded generator so campaigns
        are reproducible.  An external ``rng`` (e.g. a chaos plan's
        per-injection stream) may be supplied instead, which leaves the
        accelerator's own draw sequence untouched — chaos then only adds
        faults, it never perturbs the baseline's RNG alignment.  Returns
        the total number of newly stuck cells.
        """
        draw = self.rng if rng is None else rng
        return sum(
            pe.bank.inject_stuck_faults(fraction, draw, stuck_level)
            for pe in self.pes
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def _fingerprint(self) -> dict:
        """Construction-time invariants a snapshot must match to load."""
        return {
            "bank_rows": self.config.bank_rows,
            "bank_cols": self.config.bank_cols,
            "spare_rows": self.config.spare_rows,
            "n_pes": self.config.n_pes,
            "levels": self.config.tuning.levels,
            "programming_noise_levels": self.programming_noise_levels,
            "program_verify": self.program_verify is not None,
            "noise_enabled": self.noise.enabled,
        }

    def state_dict(self) -> dict:
        """Versionable snapshot of the *entire* physically realized state.

        Covers every mutable thing the accelerator owns: per-PE bank state
        (GST levels, stuck/converged masks, spare pools, remap tables,
        write/wear counters), LDSU bits, TIA gains, activation-cell wear,
        the layer mapping with its digital weight shadows and recorded
        forward activations, the event counters, the control unit's mode,
        and the threaded RNG's bit-generator state (which the shared
        program-verify writer draws from).  Restoring it with
        :meth:`load_state_dict` reproduces subsequent ``forward`` /
        ``train_step`` outputs bit-for-bit.
        """

        def opt(a: np.ndarray | None) -> np.ndarray | None:
            return None if a is None else a.copy()

        return {
            "fingerprint": self._fingerprint(),
            "counters": self.counters.as_dict(),
            "control": self.control.state_dict(),
            "rng_state": self.rng.bit_generator.state,
            "noise_rng_state": self.noise.rng.bit_generator.state,
            "pes": [pe.state_dict() for pe in self.pes],
            "layers": [
                {
                    "index": layer.index,
                    "out_dim": layer.out_dim,
                    "in_dim": layer.in_dim,
                    "apply_activation": layer.apply_activation,
                    "tiles": [list(tile) for tile in layer.tiles],
                    "weights": opt(layer.weights),
                    "weight_scale": layer.weight_scale,
                    "last_input": opt(layer.last_input),
                    "last_logits": opt(layer.last_logits),
                    "last_input_batch": opt(layer.last_input_batch),
                    "last_logits_batch": opt(layer.last_logits_batch),
                }
                for layer in self.layers
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        The accelerator must have been constructed with the same geometry,
        level grid, and program-verify/noise setup the snapshot was taken
        under (the snapshot's fingerprint is checked first —
        :class:`~repro.errors.CheckpointError` on mismatch).  PEs are
        re-allocated to the snapshot's count, so a snapshot taken after
        tile migrations restores the migrated mapping exactly.  The RNG is
        restored *in place*, keeping the program-verify writer (which
        shares the generator object) on the snapshot's draw stream.
        """
        from repro.errors import CheckpointError

        fingerprint = self._fingerprint()
        saved = state["fingerprint"]
        mismatched = [
            f"{key}: snapshot {saved.get(key)!r} != this accelerator {value!r}"
            for key, value in fingerprint.items()
            if saved.get(key) != value
        ]
        if mismatched:
            raise CheckpointError(
                "snapshot was taken on an incompatible accelerator — "
                + "; ".join(mismatched)
            )
        if len(state["pes"]) > self.config.n_pes:
            raise CheckpointError(
                f"snapshot allocates {len(state['pes'])} PEs but the "
                f"configuration has {self.config.n_pes}"
            )

        self.pes = []
        for pe_state in state["pes"]:
            self._new_pe().load_state_dict(pe_state)

        def opt(a) -> np.ndarray | None:
            return None if a is None else np.asarray(a, dtype=np.float64)

        self.layers = [
            MappedLayer(
                index=int(spec["index"]),
                out_dim=int(spec["out_dim"]),
                in_dim=int(spec["in_dim"]),
                apply_activation=bool(spec["apply_activation"]),
                tiles=[tuple(int(v) for v in tile) for tile in spec["tiles"]],
                weights=opt(spec["weights"]),
                weight_scale=float(spec["weight_scale"]),
                last_input=opt(spec["last_input"]),
                last_logits=opt(spec["last_logits"]),
                last_input_batch=opt(spec["last_input_batch"]),
                last_logits_batch=opt(spec["last_logits_batch"]),
            )
            for spec in state["layers"]
        ]
        counters = state["counters"]
        self.counters = EventCounters(
            bank_writes=int(counters["bank_writes"]),
            cells_written=int(counters["cells_written"]),
            symbols=int(counters["symbols"]),
            activation_events=int(counters["activation_events"]),
            mode_switches=int(counters["mode_switches"]),
        )
        self.control.load_state_dict(state["control"])
        self.rng.bit_generator.state = state["rng_state"]
        self.noise.rng.bit_generator.state = state["noise_rng_state"]

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, record: bool = False) -> np.ndarray:
        """Run one input vector through the mapped network.

        Returns the final-layer output in true (denormalized) units.  With
        ``record`` the per-layer inputs/logits are kept for a training step.
        """
        if not self.layers:
            raise MappingError("map a network before calling forward()")
        if self.control.set_mode(OperatingMode.INFERENCE):
            self.counters.mode_switches += 1
        value = np.asarray(x, dtype=np.float64)
        if value.shape != (self.layers[0].in_dim,):
            raise ShapeError(
                f"input shape {value.shape} != ({self.layers[0].in_dim},)"
            )
        with _trace_span("forward", accelerator=self):
            value = self._forward_layers(value, record)
        _metric_counter("repro_forward_samples_total").inc()
        return value

    def _forward_layers(self, value: np.ndarray, record: bool) -> np.ndarray:
        for layer in self.layers:
            if layer.weights is None:
                raise MappingError(f"layer {layer.index} has no programmed weights")
            if record:
                layer.last_input = value.copy()
                layer.last_input_batch = None
                layer.last_logits_batch = None
                layer.last_enc_batch = None
                layer.last_enc_scales = None
                layer.last_l1_batch = None
            enc = RangeNormalizer.normalize(value)
            logits_norm = np.zeros(layer.out_dim, dtype=np.float64)
            single_tile = len(layer.tiles) == 1
            for r0, r1, c0, c1, pe_index in layer.tiles:
                pe = self.pes[pe_index]
                part = pe.forward(
                    enc.values[c0:c1],
                    apply_activation=False,
                    capture_derivative=single_tile,
                )
                logits_norm[r0:r1] += part
                # One streamed symbol per bank the vector enters (module
                # docstring accounting rule).
                self.counters.symbols += 1
            logits = logits_norm * enc.scale * layer.weight_scale
            if record:
                layer.last_logits = logits.copy()
            if layer.apply_activation:
                # Positive homogeneity lets the cell act on true-scaled
                # logits via its normalized transfer; count firing events
                # on the first tile's cell.
                cell = self.pes[layer.tiles[0][4]].activation
                before = cell.firing_events
                value = cell.fire(logits)
                self.counters.activation_events += cell.firing_events - before
            else:
                value = logits
        return value

    def forward_batch(self, xs: np.ndarray, record: bool = False) -> np.ndarray:
        """Forward a (B, n_in) batch through the mapped network.

        Every layer — single-tile or tiled — streams as blocked ``matmat``
        calls: each tile's bank receives its (cols_used, B) input slab in
        one vectorized pass and the detected partial sums accumulate across
        row/column tiles electronically, exactly as the per-sample path
        does one sample at a time.  Batched and per-sample execution
        produce identical outputs for noise-free hardware and identical
        :class:`EventCounters` always; with noise enabled they differ only
        in draw order.  With ``record`` each layer keeps its (B, in_dim)
        inputs and (B, out_dim) logits for a batched training step.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2:
            raise ShapeError(f"expected a 2-D batch, got shape {xs.shape}")
        if not self.layers:
            raise MappingError("map a network before calling forward_batch()")
        if xs.shape[1] != self.layers[0].in_dim:
            raise ShapeError(
                f"batch width {xs.shape[1]} != ({self.layers[0].in_dim},)"
            )
        if self.control.set_mode(OperatingMode.INFERENCE):
            self.counters.mode_switches += 1
        batch = xs.shape[0]
        value = xs.T  # (features, batch)
        # Live power streaming: snapshot the hardware-time/energy estimate
        # so the window this batch executes over can be emitted as a timed
        # power sample.  One shared gauge (same series the modeled
        # power-trace replay feeds); skipped entirely when telemetry is
        # off — the estimate roll-ups are not free.
        power_gauge = _metric_gauge(
            "repro_power_draw_w", "Chip power draw over hardware time [W]"
        )
        if power_gauge is not NULL_INSTRUMENT:
            energy_before = self.energy_estimate_j()
            time_before = self.time_estimate_s()
        with _trace_span("forward_batch", accelerator=self, batch=batch):
            for layer in self.layers:
                if layer.weights is None:
                    raise MappingError(
                        f"layer {layer.index} has no programmed weights"
                    )
                with _trace_span(
                    "layer",
                    accelerator=self,
                    layer=layer.index,
                    tiles=len(layer.tiles),
                    batch=batch,
                ):
                    if record:
                        layer.last_input = None
                        layer.last_logits = None
                        # A view, not a copy: the slab is the caller's
                        # batch (layer 0) or the previous layer's fresh
                        # activation output.  Recorded batches are
                        # read-only snapshots, valid until the next
                        # forward pass — the O(in x B) copy would charge
                        # every recorded batch for mutations nothing
                        # performs.
                        layer.last_input_batch = value.T
                        # Per-sample encode scales (the E/O stage
                        # normalizes each sample independently).  The
                        # integrity checker re-streams this exact slab
                        # through the checksum rows and normalizes its
                        # residuals by the L1 norms; keeping references
                        # saves it a second O(in x B) encode + |x| pass.
                        enc, scales, l1 = RangeNormalizer.normalize_columns(
                            value, return_l1=True
                        )
                        layer.last_enc_batch = enc
                        layer.last_enc_scales = scales
                        layer.last_l1_batch = l1
                    else:
                        enc, scales = RangeNormalizer.normalize_columns(value)
                    logits_norm = np.zeros(
                        (layer.out_dim, batch), dtype=np.float64
                    )
                    single_tile = len(layer.tiles) == 1
                    for r0, r1, c0, c1, pe_index in layer.tiles:
                        pe = self.pes[pe_index]
                        part = pe.forward_batch(
                            enc[c0:c1],
                            capture_derivative=single_tile,
                            # The encoder bounded this slab two lines up.
                            validate=False,
                        )
                        logits_norm[r0:r1] += part
                        # B streamed symbols per bank the slab enters — the
                        # same per-bank rule as the per-sample path (module
                        # docstring).
                        self.counters.symbols += batch
                    logits = logits_norm * scales * layer.weight_scale
                    if record:
                        layer.last_logits_batch = logits.T  # fresh per layer
                    if layer.apply_activation:
                        cell = self.pes[layer.tiles[0][4]].activation
                        before = cell.firing_events
                        value = cell.fire(logits)
                        self.counters.activation_events += (
                            cell.firing_events - before
                        )
                    else:
                        value = logits
        _metric_counter("repro_forward_batches_total").inc()
        _metric_counter("repro_forward_samples_total").inc(batch)
        if power_gauge is not NULL_INSTRUMENT:
            time_after = self.time_estimate_s()
            if time_after > time_before:
                mean_power_w = (self.energy_estimate_j() - energy_before) / (
                    time_after - time_before
                )
                power_gauge.set_at(mean_power_w, time_after)
        return value.T

    # ------------------------------------------------------------------
    # Cost accounting (functional runs)
    # ------------------------------------------------------------------
    def energy_estimate_j(self) -> float:
        """Energy of everything executed so far, from Table III components.

        Bank writes cost their pulse energy (write power x write time ==
        cells x 660 pJ — the device- and system-level views agree); each
        streamed symbol costs the per-PE streaming power over one symbol
        period; activation firings cost the reset energy.
        """
        stats = self.bank_stats()
        symbol_energy = self.config.pe_streaming_power_w / self.config.symbol_rate_hz
        reset = sum(pe.activation.reset_energy_spent_j for pe in self.pes)
        return stats.write_energy_j + stats.symbols * symbol_energy + reset

    def time_estimate_s(self) -> float:
        """Serialized wall-clock estimate: writes + symbol streaming.

        Uses the banks' *recorded* ``write_time_s`` — which includes the
        extra rounds iterative program-and-verify writes consume — rather
        than recomputing ``write_events x write_time()`` (which would drop
        them).
        """
        stats = self.bank_stats()
        return stats.write_time_s + stats.symbols / self.config.symbol_rate_hz

    def bank_stats(self) -> BankStats:
        """Merged programming/usage counters across all PEs."""
        merged = BankStats()
        for pe in self.pes:
            merged = merged.merge(pe.bank.stats)
        return merged

    # ------------------------------------------------------------------
    # Layer pipelining (paper Fig 1: PE-to-PE optical forwarding)
    # ------------------------------------------------------------------
    def pipeline_latency_s(self) -> float:
        """Single-sample latency with layers chained optically.

        One PE per layer: a sample's layer-k output re-encodes onto fresh
        wavelengths and feeds PE k+1 directly — no memory round-trip.  The
        latency is one symbol period per single-tile layer (plus one per
        reduction tile when a layer spans several PEs, since electronic
        partial accumulation must complete first).
        """
        if not self.layers:
            raise MappingError("map a network before estimating latency")
        total_symbols = 0
        J, N = self.config.bank_rows, self.config.bank_cols
        for layer in self.layers:
            tiles_k = -(-layer.in_dim // N)
            total_symbols += tiles_k
        return total_symbols / self.config.symbol_rate_hz

    def pipeline_throughput(self) -> float:
        """Steady-state samples/s with every PE stage busy.

        The chain is a pipeline: a new sample enters each symbol period as
        long as every layer owns its own PE tiles (the mapper guarantees
        this), so throughput is one sample per slowest-stage symbol count.
        """
        if not self.layers:
            raise MappingError("map a network before estimating throughput")
        N = self.config.bank_cols
        slowest = max(-(-layer.in_dim // N) for layer in self.layers)
        return self.config.symbol_rate_hz / slowest
