"""Power model: regenerates Table III and performs the 30 W scaling.

Two jobs:

1. :class:`PEPowerBreakdown` — the component-by-component per-PE budget the
   paper tabulates (Table III), with percentages computed rather than quoted.
2. :class:`PowerModel` — chip-level queries the evaluation needs: how many
   PEs fit a budget, what the chip draws while tuning vs streaming, and the
   83.34 % post-tuning power drop the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import TridentConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class PowerComponent:
    """One row of the Table III breakdown."""

    name: str
    power_w: float
    fraction: float

    @property
    def percentage(self) -> float:
        """Share of the PE total, in percent."""
        return self.fraction * 100.0


@dataclass(frozen=True)
class PEPowerBreakdown:
    """Per-PE power decomposition (Table III)."""

    components: tuple[PowerComponent, ...]
    total_w: float

    @classmethod
    def from_config(cls, config: TridentConfig) -> "PEPowerBreakdown":
        raw = [
            ("LDSU", config.ldsu_power_w),
            ("E/O Laser", config.eo_laser_power_w),
            ("GST MRR Tuning", config.gst_tuning_power_w),
            ("GST MRR Read", config.gst_read_power_w),
            ("GST Activation Function Reset", config.activation_reset_power_w),
            ("BPD and TIA", config.bpd_tia_power_w),
            ("Cache", config.cache_power_w),
        ]
        total = sum(p for _, p in raw)
        if total <= 0:
            raise ConfigError("PE power total must be positive")
        components = tuple(
            PowerComponent(name=name, power_w=p, fraction=p / total) for name, p in raw
        )
        return cls(components=components, total_w=total)

    def component(self, name: str) -> PowerComponent:
        """Look a row up by its Table III name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no power component named {name!r}")

    @property
    def dominant(self) -> PowerComponent:
        """The largest consumer (the paper's point: GST MRR tuning)."""
        return max(self.components, key=lambda c: c.power_w)

    def as_rows(self) -> list[dict[str, object]]:
        """Table III as data rows (for rendering / comparison)."""
        rows: list[dict[str, object]] = [
            {
                "component": c.name,
                "power_w": c.power_w,
                "percentage": c.percentage,
            }
            for c in self.components
        ]
        rows.append({"component": "Total", "power_w": self.total_w, "percentage": 100.0})
        return rows


@dataclass(frozen=True)
class PowerModel:
    """Chip-level power queries for a Trident configuration."""

    config: TridentConfig

    @property
    def breakdown(self) -> PEPowerBreakdown:
        """Per-PE Table III breakdown."""
        return PEPowerBreakdown.from_config(self.config)

    @property
    def chip_tuning_power_w(self) -> float:
        """Whole-chip draw while every PE is programming weights [W]."""
        return self.config.pe_total_power_w * self.config.n_pes

    @property
    def chip_streaming_power_w(self) -> float:
        """Whole-chip draw once weights are held non-volatilely [W]."""
        return self.config.pe_streaming_power_w * self.config.n_pes

    @property
    def post_tuning_drop_fraction(self) -> float:
        """Fractional power drop after tuning (paper: 83.34 %, 0.67->0.11 W)."""
        return self.config.gst_tuning_power_w / self.config.pe_total_power_w

    def max_pes_for_budget(self, budget_w: float | None = None) -> int:
        """PE count that fits the budget with tuning power active.

        The paper sizes the chip by the *worst-case* (tuning) power so the
        30 W cap is never violated; that yields the 44-PE configuration.
        """
        budget = self.config.power_budget_w if budget_w is None else budget_w
        if budget <= 0:
            raise ConfigError(f"budget must be positive, got {budget}")
        return int(budget // self.config.pe_total_power_w)

    def fits_budget(self) -> bool:
        """Whether the configured PE count respects the power budget."""
        return self.chip_tuning_power_w <= self.config.power_budget_w + 1e-9
