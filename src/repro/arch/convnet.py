"""Functional convolutional inference on the photonic PEs.

The big CNNs go through the analytical cost model; this module runs *small*
convolutional networks through the functional simulator, end to end: every
convolution is lowered to its weight-stationary GEMM (im2col), the GEMM
tiles onto PE banks, output positions stream as analog symbols, and the GST
activation fires photonically between layers — the same execution the paper
describes, with real numbers and quantization/noise.

Spec layers (small-scale counterparts of :mod:`repro.nn.layers`):

- ``("conv", out_channels, kernel, stride, padding)``
- ``("pool", kernel)``  (max pooling, electronic)
- ``("flatten",)``
- ``("dense", out_features)``

Activations (GST, slope 0.34) follow every conv/dense layer except the
last dense layer (logits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import TridentConfig
from repro.arch.pe import ProcessingElement
from repro.arch.weight_bank import BankStats, WeightBank
from repro.devices.noise import NoiseModel
from repro.devices.photodetector import BalancedPhotodetector
from repro.errors import MappingError, ShapeError
from repro.nn.reference import gst_activation, im2col


@dataclass
class _ConvLayer:
    out_channels: int
    kernel: int
    stride: int
    padding: int
    weights: np.ndarray | None = None  # (K, R, R, C)


@dataclass
class _DenseLayer:
    out_features: int
    weights: np.ndarray | None = None  # (out, in)


class FunctionalConvNet:
    """A small CNN executed functionally on photonic PEs."""

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        spec: list[tuple],
        config: TridentConfig | None = None,
        noise: NoiseModel | None = None,
    ) -> None:
        self.config = config or TridentConfig()
        self.noise = noise or NoiseModel.ideal()
        self.input_shape = input_shape
        self.layers: list[tuple[str, object]] = []
        self.pes: list[ProcessingElement] = []
        self._pe_of_layer: dict[int, list[tuple[int, int, int, int, int]]] = {}
        self.symbols = 0
        self._build(spec)

    # ------------------------------------------------------------------
    def _build(self, spec: list[tuple]) -> None:
        if not spec:
            raise MappingError("empty network spec")
        shape = self.input_shape
        flattened = False
        for entry in spec:
            kind = entry[0]
            if kind == "conv":
                if flattened:
                    raise MappingError("conv after flatten is not supported")
                _, out_ch, kernel, stride, padding = entry
                h, w, c = shape
                oh = (h + 2 * padding - kernel) // stride + 1
                ow = (w + 2 * padding - kernel) // stride + 1
                if oh < 1 or ow < 1:
                    raise MappingError("conv output collapsed")
                self.layers.append(("conv", _ConvLayer(out_ch, kernel, stride, padding)))
                shape = (oh, ow, out_ch)
            elif kind == "pool":
                _, kernel = entry
                h, w, c = shape
                if h % kernel or w % kernel:
                    raise MappingError(
                        f"pool kernel {kernel} must divide feature map {h}x{w}"
                    )
                self.layers.append(("pool", kernel))
                shape = (h // kernel, w // kernel, c)
            elif kind == "flatten":
                self.layers.append(("flatten", None))
                flattened = True
                shape = (1, 1, shape[0] * shape[1] * shape[2])
            elif kind == "dense":
                if not flattened:
                    raise MappingError("flatten before dense layers")
                _, out = entry
                self.layers.append(("dense", _DenseLayer(out)))
                shape = (1, 1, out)
            else:
                raise MappingError(f"unknown layer kind {kind!r}")
        self.output_shape = shape

    # ------------------------------------------------------------------
    def _new_pe(self) -> int:
        pe = ProcessingElement(
            bank=WeightBank(
                rows=self.config.bank_rows,
                cols=self.config.bank_cols,
                tuning=self.config.tuning,
                noise=self.noise,
            ),
            bpd=BalancedPhotodetector(noise=self.noise),
        )
        self.pes.append(pe)
        return len(self.pes) - 1

    def _map_gemm(self, layer_index: int, m: int, k: int) -> None:
        tiles = []
        J, N = self.config.bank_rows, self.config.bank_cols
        for r0 in range(0, m, J):
            for c0 in range(0, k, N):
                tiles.append(
                    (r0, min(r0 + J, m), c0, min(c0 + N, k), self._new_pe())
                )
        self._pe_of_layer[layer_index] = tiles
        if len(self.pes) > self.config.n_pes:
            raise MappingError(
                f"network needs {len(self.pes)} PE tiles; configuration has "
                f"{self.config.n_pes}"
            )

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Program conv filters ((K, R, R, C)) and dense matrices, in order."""
        weight_layers = [
            (i, layer) for i, (kind, layer) in enumerate(self.layers)
            if kind in ("conv", "dense")
        ]
        if len(weights) != len(weight_layers):
            raise MappingError(
                f"got {len(weights)} weight tensors for {len(weight_layers)} layers"
            )
        self.pes = []
        self._pe_of_layer = {}
        shape = self.input_shape
        for (index, layer), w in zip(weight_layers, weights):
            w = np.asarray(w, dtype=np.float64)
            if isinstance(layer, _ConvLayer):
                if w.ndim != 4 or w.shape[0] != layer.out_channels:
                    raise ShapeError(
                        f"conv layer expects (K={layer.out_channels}, R, R, C), got {w.shape}"
                    )
                layer.weights = w.copy()
            else:
                if w.ndim != 2 or w.shape[0] != layer.out_features:
                    raise ShapeError(
                        f"dense layer expects ({layer.out_features}, in), got {w.shape}"
                    )
                layer.weights = w.copy()
        # Map and program after all weights validated.
        for index, layer in weight_layers:
            if isinstance(layer, _ConvLayer):
                m = layer.out_channels
                k = int(np.prod(layer.weights.shape[1:]))
                matrix = layer.weights.reshape(m, k)
            else:
                m, k = layer.weights.shape
                matrix = layer.weights
            self._map_gemm(index, m, k)
            peak = float(np.max(np.abs(matrix))) if matrix.size else 0.0
            scale = peak if peak > 1.0 else 1.0
            setattr(layer, "weight_scale", scale)
            for r0, r1, c0, c1, pe_index in self._pe_of_layer[index]:
                self.pes[pe_index].program_weights(matrix[r0:r1, c0:c1] / scale)

    # ------------------------------------------------------------------
    def _gemm_forward(self, layer_index: int, m: int, cols: np.ndarray, scale_w: float) -> np.ndarray:
        """Stream (positions, k) im2col rows through the layer's PE tiles."""
        positions = cols.shape[0]
        out = np.zeros((positions, m), dtype=np.float64)
        enc_scale = float(np.max(np.abs(cols))) if cols.size else 0.0
        enc_scale = enc_scale if enc_scale > 1.0 else 1.0
        normalized = (cols / enc_scale).T  # (k, positions)
        for r0, r1, c0, c1, pe_index in self._pe_of_layer[layer_index]:
            pe = self.pes[pe_index]
            part = pe.bank.matmat(np.clip(normalized[c0:c1], -1, 1))
            part = pe.bpd.detect_normalized(part)
            out[:, r0:r1] += part.T
            self.symbols += positions
        return out * enc_scale * scale_w

    def forward(self, image: np.ndarray) -> np.ndarray:
        """Run one (H, W, C) image; returns the final logits."""
        x = np.asarray(image, dtype=np.float64)
        if x.shape != self.input_shape:
            raise ShapeError(f"expected image {self.input_shape}, got {x.shape}")
        value: np.ndarray = x
        n_weight_layers = sum(
            1 for kind, _ in self.layers if kind in ("conv", "dense")
        )
        seen_weights = 0
        for index, (kind, layer) in enumerate(self.layers):
            if kind == "conv":
                if layer.weights is None:
                    raise MappingError("program weights before forward")
                seen_weights += 1
                cols = im2col(value, layer.kernel, layer.stride, layer.padding)
                h = (value.shape[0] + 2 * layer.padding - layer.kernel) // layer.stride + 1
                out = self._gemm_forward(
                    index, layer.out_channels, cols, layer.weight_scale
                )
                value = out.reshape(h, -1, layer.out_channels)
                value = gst_activation(value)
            elif kind == "pool":
                k = layer
                h, w, c = value.shape
                value = value.reshape(h // k, k, w // k, k, c).max(axis=(1, 3))
            elif kind == "flatten":
                value = value.reshape(1, 1, -1)
            elif kind == "dense":
                if layer.weights is None:
                    raise MappingError("program weights before forward")
                seen_weights += 1
                flat = value.reshape(1, -1)
                out = self._gemm_forward(
                    index, layer.out_features, flat, layer.weight_scale
                )
                value = out.reshape(1, 1, -1)
                if seen_weights < n_weight_layers:
                    value = gst_activation(value)
        return value.ravel()

    def forward_batch(self, images: np.ndarray) -> np.ndarray:
        """Stack of images -> stack of logits."""
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4:
            raise ShapeError(f"expected (B, H, W, C), got {images.shape}")
        return np.stack([self.forward(img) for img in images])

    # ------------------------------------------------------------------
    def bank_stats(self) -> BankStats:
        """Merged programming/usage counters across all PEs."""
        merged = BankStats()
        for pe in self.pes:
            merged = merged.merge(pe.bank.stats)
        return merged
