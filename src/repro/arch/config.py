"""Architectural configuration for Trident.

Every number the paper commits to lives here, with its provenance:

- 44 PEs, 256 MRRs each (16 x 16 weight bank), within a 30 W budget
  (Sec. IV: "a maximum of 44 PEs can be utilized, each with 256 MRRs").
- Table III per-PE power components summing to ~0.67 W.
- 1.37 GHz maximum clock (Sec. IV).
- 16 kB L1 cache per PE, 32 MB shared L2 (Sec. IV).
- 604.6 mm^2 total area for 44 PEs (Sec. IV).

Calibrated parameter
--------------------
``symbol_rate_hz``: the paper reports 7.8 TOPS for the 44-PE configuration.
44 PEs x 256 MACs x 2 ops = 22 528 ops/symbol, so 7.8 TOPS implies an
effective analog symbol rate of 7.8e12 / 22528 = 346 MHz — well under the
1.37 GHz peak clock, reflecting E/O conversion and control overheads the
paper folds into its TOPS figure.  We expose it explicitly instead of hiding
the derate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import GHZ, KB, MB, MHZ, MW
from repro.devices.tuning import GSTTuning, TuningModel
from repro.errors import ConfigError


@dataclass(frozen=True)
class TridentConfig:
    """Full architectural parameter set for a Trident instance."""

    # --- geometry ------------------------------------------------------
    n_pes: int = 44
    bank_rows: int = 16  # J: rows -> one BPD/TIA/LDSU/activation per row
    bank_cols: int = 16  # N: columns -> one WDM wavelength per column
    #: Spare ring rows per bank beyond the logical J rows (fault repair
    #: headroom; the paper's 256-MRR geometry is spare_rows=0).
    spare_rows: int = 0
    #: Program-verify convergence floor below which a bank write emits a
    #: :class:`~repro.errors.WriteConvergenceWarning`.
    convergence_floor: float = 0.9

    # --- timing --------------------------------------------------------
    max_clock_hz: float = 1.37 * GHZ
    #: Effective analog symbol (vector) rate [Hz] — calibrated, see module
    #: docstring.  One symbol = one full bank matrix-vector product.
    symbol_rate_hz: float = 346.0 * MHZ

    # --- tuning technology ----------------------------------------------
    tuning: TuningModel = field(default_factory=GSTTuning)

    # --- per-PE power components (Table III) ----------------------------
    ldsu_power_w: float = 0.09 * MW
    eo_laser_power_w: float = 0.032 * MW
    gst_tuning_power_w: float = 563.2 * MW
    gst_read_power_w: float = 17.1 * MW
    activation_reset_power_w: float = 53.3 * MW
    bpd_tia_power_w: float = 12.1 * MW
    cache_power_w: float = 30.0 * MW

    # --- system budget ---------------------------------------------------
    power_budget_w: float = 30.0

    # --- memory -----------------------------------------------------------
    l1_cache_bytes: int = 16 * KB
    l2_cache_bytes: int = 32 * MB

    # --- numerics ----------------------------------------------------------
    weight_bits: int = 8  # GST: 255 levels

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ConfigError(f"n_pes must be positive, got {self.n_pes}")
        if self.bank_rows < 1 or self.bank_cols < 1:
            raise ConfigError("bank dimensions must be positive")
        if self.spare_rows < 0:
            raise ConfigError(f"spare_rows must be non-negative, got {self.spare_rows}")
        if not 0.0 <= self.convergence_floor <= 1.0:
            raise ConfigError(
                f"convergence_floor must lie in [0, 1], got {self.convergence_floor}"
            )
        if self.symbol_rate_hz <= 0 or self.max_clock_hz <= 0:
            raise ConfigError("rates must be positive")
        if self.symbol_rate_hz > self.max_clock_hz:
            raise ConfigError(
                f"symbol rate {self.symbol_rate_hz:.3g} Hz exceeds the "
                f"maximum clock {self.max_clock_hz:.3g} Hz"
            )
        if self.power_budget_w <= 0:
            raise ConfigError("power budget must be positive")
        for name in (
            "ldsu_power_w",
            "eo_laser_power_w",
            "gst_tuning_power_w",
            "gst_read_power_w",
            "activation_reset_power_w",
            "bpd_tia_power_w",
            "cache_power_w",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.weight_bits < 1:
            raise ConfigError("weight_bits must be positive")

    # ------------------------------------------------------------------
    @property
    def mrrs_per_pe(self) -> int:
        """Weight-bank MRR count per PE (paper: 256)."""
        return self.bank_rows * self.bank_cols

    @property
    def pe_total_power_w(self) -> float:
        """Per-PE power with tuning active (Table III total, ~0.67 W)."""
        return (
            self.ldsu_power_w
            + self.eo_laser_power_w
            + self.gst_tuning_power_w
            + self.gst_read_power_w
            + self.activation_reset_power_w
            + self.bpd_tia_power_w
            + self.cache_power_w
        )

    @property
    def pe_streaming_power_w(self) -> float:
        """Per-PE power once weights are tuned (paper: ~0.11 W).

        The non-volatile GST holds the weights for free, so the tuning
        component drops out entirely.
        """
        return self.pe_total_power_w - self.gst_tuning_power_w

    @property
    def macs_per_symbol(self) -> int:
        """MAC operations completed per analog symbol across the chip."""
        return self.n_pes * self.mrrs_per_pe

    @property
    def peak_tops(self) -> float:
        """Peak throughput [tera-ops/s], 2 ops per MAC."""
        return self.macs_per_symbol * 2.0 * self.symbol_rate_hz / 1e12

    @property
    def tops_per_watt(self) -> float:
        """Energy efficiency at the configured power budget."""
        return self.peak_tops / self.power_budget_w

    def scaled_to_budget(self, budget_w: float) -> "TridentConfig":
        """New config with as many PEs as the given budget allows."""
        if budget_w <= 0:
            raise ConfigError(f"budget must be positive, got {budget_w}")
        n = int(budget_w // self.pe_total_power_w)
        if n < 1:
            raise ConfigError(
                f"budget {budget_w} W cannot power a single "
                f"{self.pe_total_power_w:.2f} W PE"
            )
        return TridentConfig(
            n_pes=n,
            bank_rows=self.bank_rows,
            bank_cols=self.bank_cols,
            spare_rows=self.spare_rows,
            convergence_floor=self.convergence_floor,
            max_clock_hz=self.max_clock_hz,
            symbol_rate_hz=self.symbol_rate_hz,
            tuning=self.tuning,
            ldsu_power_w=self.ldsu_power_w,
            eo_laser_power_w=self.eo_laser_power_w,
            gst_tuning_power_w=self.gst_tuning_power_w,
            gst_read_power_w=self.gst_read_power_w,
            activation_reset_power_w=self.activation_reset_power_w,
            bpd_tia_power_w=self.bpd_tia_power_w,
            cache_power_w=self.cache_power_w,
            power_budget_w=budget_w,
            l1_cache_bytes=self.l1_cache_bytes,
            l2_cache_bytes=self.l2_cache_bytes,
            weight_bits=self.weight_bits,
        )
