"""Lightweight instrumentation for functional runs.

Wrap any region of functional execution in a :class:`Profiler` context and
get back a :class:`ProfileReport`: the region's wall-clock time plus the
hardware events (streamed symbols, bank writes, cells, write energy/time)
it generated, attributed per PE and per mapped layer.

The measurement core is shared with :mod:`repro.telemetry`: the profiler
opens one detail-mode span on a :class:`~repro.telemetry.tracer.Tracer`
(the active session's tracer when telemetry is enabled — so profiled
regions also appear in exported traces — or a private one otherwise), and
the counter/bank-stat delta comes from the single
:class:`~repro.telemetry.snapshot.HardwareSnapshot` implementation.
Profiling therefore adds no bookkeeping to the hot paths themselves — the
speedup of the batched execution engine is *measured*, not asserted.

Usage::

    with Profiler(acc) as prof:
        acc.forward_batch(xs)
    print(prof.report.render())

The CLI's ``profile`` subcommand and
``benchmarks/bench_functional_batch_scaling.py`` are the main consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import EventCounters, TridentAccelerator
from repro.errors import ConfigError
from repro.telemetry.session import active as _telemetry_active
from repro.telemetry.tracer import Tracer

#: Span name profiled regions record under.
PROFILE_SPAN_NAME = "profiled_region"


@dataclass(frozen=True)
class PEProfile:
    """Hardware events one PE accumulated inside a profiled region."""

    pe_index: int
    symbols: int
    write_events: int
    cells_written: int
    write_energy_j: float
    write_time_s: float


@dataclass(frozen=True)
class LayerProfile:
    """Aggregate of a mapped layer's tile PEs inside a profiled region."""

    layer_index: int
    n_tiles: int
    symbols: int
    write_events: int
    cells_written: int


@dataclass(frozen=True)
class ProfileReport:
    """Wall time + event deltas of one profiled region."""

    wall_time_s: float
    counters: EventCounters
    per_pe: tuple[PEProfile, ...]
    per_layer: tuple[LayerProfile, ...]

    @property
    def symbols_per_second(self) -> float:
        """Streamed symbols per wall-clock second (simulator throughput)."""
        if self.wall_time_s <= 0.0:
            return float("inf") if self.counters.symbols else 0.0
        return self.counters.symbols / self.wall_time_s

    def render(self, title: str = "profiled region") -> str:
        """Human-readable report: totals, per-layer, busy per-PE rows."""
        # Imported lazily: repro.eval pulls the table/figure generators,
        # which themselves import repro.arch.
        from repro.eval.formatting import format_table

        lines = [
            f"{title}: {self.wall_time_s * 1e3:.3f} ms wall, "
            f"{self.counters.symbols} symbols "
            f"({self.symbols_per_second:.3g} symbols/s), "
            f"{self.counters.bank_writes} bank writes, "
            f"{self.counters.activation_events} activation events"
        ]
        if self.per_layer:
            rows = [
                [p.layer_index, p.n_tiles, p.symbols, p.write_events, p.cells_written]
                for p in self.per_layer
            ]
            lines.append(
                format_table(
                    ["layer", "tiles", "symbols", "writes", "cells"], rows
                )
            )
        busy = [p for p in self.per_pe if p.symbols or p.write_events]
        if busy:
            rows = [
                [
                    p.pe_index,
                    p.symbols,
                    p.write_events,
                    p.cells_written,
                    p.write_energy_j,
                    p.write_time_s,
                ]
                for p in busy
            ]
            lines.append(
                format_table(
                    ["PE", "symbols", "writes", "cells", "write J", "write s"],
                    rows,
                )
            )
        return "\n".join(lines)


class Profiler:
    """Context manager measuring one accelerator's events and wall time.

    A thin consumer of the telemetry span tracer: entry opens a
    detail-mode span that snapshots the event counters and every PE's
    bank stats, exit closes it and builds the report from the span's
    wall time and hardware delta.  PEs created inside the region (a
    remap) start from a zero baseline.  The finished
    :class:`ProfileReport` is available as :attr:`report` after the
    ``with`` block exits.
    """

    def __init__(self, accelerator: TridentAccelerator) -> None:
        self.acc = accelerator
        self._report: ProfileReport | None = None
        self._span = None

    def __enter__(self) -> "Profiler":
        """Open the measurement span (the active session's tracer when
        telemetry is enabled, a private tracer otherwise)."""
        self._report = None
        session = _telemetry_active()
        tracer = session.tracer if session is not None else Tracer()
        self._span = tracer.span(PROFILE_SPAN_NAME, accelerator=self.acc, detail=True)
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span and build the report (skipped on exception)."""
        span = self._span
        self._span = None
        span.__exit__(exc_type, exc, tb)
        if exc_type is not None:
            return False
        delta = span.hardware
        per_pe = tuple(
            PEProfile(
                pe_index=i,
                symbols=stats.symbols,
                write_events=stats.write_events,
                cells_written=stats.cells_written,
                write_energy_j=stats.write_energy_j,
                write_time_s=stats.write_time_s,
            )
            for i, stats in sorted(delta.per_pe.items())
        )
        per_layer = []
        for layer in self.acc.layers:
            pe_indexes = [t[4] for t in layer.tiles]
            tiles = [per_pe[i] for i in pe_indexes if i < len(per_pe)]
            per_layer.append(
                LayerProfile(
                    layer_index=layer.index,
                    n_tiles=len(layer.tiles),
                    symbols=sum(p.symbols for p in tiles),
                    write_events=sum(p.write_events for p in tiles),
                    cells_written=sum(p.cells_written for p in tiles),
                )
            )
        self._report = ProfileReport(
            wall_time_s=span.record.duration_s,
            counters=delta.counters,
            per_pe=per_pe,
            per_layer=tuple(per_layer),
        )
        return False

    @property
    def report(self) -> ProfileReport:
        """The finished report; raises if the region has not exited yet."""
        if self._report is None:
            raise ConfigError("profiled region has not finished (exit the context)")
        return self._report
