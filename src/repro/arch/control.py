"""Control unit: operating modes, the Table II encoding map, and analog
range normalization.

The same physical PE computes three different products depending on what the
external control unit encodes where (paper Table II):

=====================  ==================  =========================  ========================
Device                 Inference           Training: gradient vector  Training: outer product
=====================  ==================  =========================  ========================
Input laser sources    x_k                 delta_h_{k+1}              delta_h_k
MRR weight bank        W_k                 W_{k+1}^T                  y_{k-1}^T
BPD output             y_k = W_k x_k       W_{k+1}^T delta_h_{k+1}    delta_W_k rows
TIA / E-O lasers       y (unit gain)       x f'(h_k) (LDSU gains)     delta_W_k (unit gain)
=====================  ==================  =========================  ========================

Analog hardware only represents values in [-1, 1]; :class:`RangeNormalizer`
tracks the scale factors the control unit applies on encode and removes on
decode, so the functional simulation is exact for in-range data and
faithfully *clips* out-of-range data the way the physical E/O stage would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError


class OperatingMode(enum.Enum):
    """The three PE operating modes of Table II."""

    INFERENCE = "inference"
    GRADIENT_VECTOR = "gradient_vector"
    OUTER_PRODUCT = "outer_product"


def table2_mapping() -> dict[OperatingMode, dict[str, str]]:
    """The paper's Table II as data (used by docs/tests/benches)."""
    return {
        OperatingMode.INFERENCE: {
            "input_laser_sources": "x_k",
            "mrr_weight_bank": "W_k",
            "bpd_output": "y_k = W_k x_k",
            "tia_eo_lasers": "y",
        },
        OperatingMode.GRADIENT_VECTOR: {
            "input_laser_sources": "delta_h_{k+1}",
            "mrr_weight_bank": "W_{k+1}^T",
            "bpd_output": "W_{k+1}^T * delta_h_{k+1}",
            "tia_eo_lasers": "f'(h_k)",
        },
        OperatingMode.OUTER_PRODUCT: {
            "input_laser_sources": "delta_h_k",
            "mrr_weight_bank": "y_{k-1}^T",
            "bpd_output": "delta_W_k = delta_h_k * y_{k-1}^T",
            "tia_eo_lasers": "delta_W_k",
        },
    }


@dataclass(frozen=True)
class NormalizedVector:
    """A vector scaled into the analog range, with its restore factor."""

    values: np.ndarray  # in [-1, 1]
    scale: float  # original = values * scale

    def restore(self, transformed: np.ndarray | float) -> np.ndarray:
        """Undo the normalization on a linearly transformed result."""
        return np.asarray(transformed, dtype=np.float64) * self.scale


class RangeNormalizer:
    """Encode/decode between real-valued tensors and the analog [-1, 1] range.

    ``normalize`` divides by the max magnitude (or 1 if already in range —
    keeping small signals at full precision relative to the quantizer).
    Because the photonic MVM is linear, multiplying the output by the same
    scale restores the true product exactly; the activation threshold is
    applied in normalized units by the hardware, matching how the control
    unit biases the physical pulse.
    """

    @staticmethod
    def normalize(values: np.ndarray) -> NormalizedVector:
        """Scale a vector into [-1, 1]; rejects non-finite input."""
        v = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(v)):
            raise DeviceError("cannot encode non-finite values onto the laser array")
        peak = float(np.max(np.abs(v))) if v.size else 0.0
        scale = peak if peak > 1.0 else 1.0
        return NormalizedVector(values=v / scale, scale=scale)

    @staticmethod
    def normalize_columns(
        values: np.ndarray, *, return_l1: bool = False
    ) -> tuple[np.ndarray, ...]:
        """Per-column :meth:`normalize` for a (features, B) batch.

        Each column is one sample's laser encoding and gets its own scale
        (max magnitude, or 1 if already in range), exactly as B sequential
        ``normalize`` calls would — the batched execution engine's entry
        point.  Returns ``(normalized, scales)`` with ``scales`` of shape
        (B,); the original batch is ``normalized * scales``.

        With ``return_l1`` the per-column L1 norms ride along as a third
        element: the peak scan already materializes ``|values|``, so the
        extra column sum is one reduce over a hot buffer — much cheaper
        than the separate ``|x|`` pass the integrity verifier would
        otherwise spend on its residual normalization.
        """
        v = np.asarray(values, dtype=np.float64)
        if v.ndim != 2:
            raise DeviceError(f"expected a (features, B) batch, got shape {v.shape}")
        if not np.all(np.isfinite(v)):
            raise DeviceError("cannot encode non-finite values onto the laser array")
        magnitudes = np.abs(v)
        peaks = np.max(magnitudes, axis=0) if v.shape[0] else np.zeros(v.shape[1])
        scales = np.maximum(peaks, 1.0)
        if return_l1:
            return v / scales, scales, magnitudes.sum(axis=0)
        return v / scales, scales

    @staticmethod
    def clip(values: np.ndarray) -> np.ndarray:
        """Hard-clip to [-1, 1] — what the E/O stage does to overrange data."""
        return np.clip(np.asarray(values, dtype=np.float64), -1.0, 1.0)


@dataclass
class ControlUnit:
    """Tracks the current operating mode and validates mode transitions.

    The control unit is electronic and external to the PE chain (paper
    Sec. III-A: "an external control unit handling encoding").  Mode changes
    are free in the functional model but each implies a weight-bank
    reprogram, which the accelerator's event counters charge.
    """

    mode: OperatingMode = OperatingMode.INFERENCE
    mode_switches: int = 0

    def set_mode(self, mode: OperatingMode) -> bool:
        """Switch modes; returns True if this was an actual transition."""
        if not isinstance(mode, OperatingMode):
            raise DeviceError(f"not an operating mode: {mode!r}")
        if mode is self.mode:
            return False
        self.mode = mode
        self.mode_switches += 1
        return True

    def encoding_for(self, mode: OperatingMode | None = None) -> dict[str, str]:
        """What each device encodes in the given (or current) mode."""
        return table2_mapping()[mode or self.mode]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the current mode and transition counter."""
        return {"mode": self.mode.value, "mode_switches": self.mode_switches}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        try:
            self.mode = OperatingMode(state["mode"])
        except ValueError as exc:
            raise DeviceError(f"unknown operating mode {state['mode']!r}") from exc
        self.mode_switches = int(state["mode_switches"])
