"""Chip-area model: regenerates the Fig 5 breakdown.

The paper reports 604.6 mm^2 for 44 PEs ("less than 1 square inch") with the
TIAs consuming most of it (Sec. IV, Fig 5).  Component footprints below are
sized from the devices the paper cites: 16 TIA/BPD receiver rows per PE, a
60 um-radius activation ring per row, 5 um-radius weight MRRs on a 30 um
pitch, the 0.092 x 0.085 mm^2 L1 cache macro the paper quotes, plus E/O
lasers and waveguide routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import TridentConfig
from repro.errors import ConfigError

# Per-device footprints [mm^2].  TIA dominance is the paper's point.
TIA_AREA_MM2 = 0.55
EO_LASER_AREA_MM2 = 0.15
BPD_AREA_MM2 = 0.04
ACTIVATION_RING_AREA_MM2 = 0.0144  # (2 * 60 um)^2 bounding box
WEIGHT_MRR_AREA_MM2 = 9.0e-4  # 30 um pitch incl. GST pad + drop bus
LDSU_AREA_MM2 = 0.002
CACHE_AREA_MM2 = 0.092 * 0.085  # quoted directly in Sec. IV
ROUTING_AREA_MM2 = 1.4  # WDM bus, splitters, pads per PE


@dataclass(frozen=True)
class AreaComponent:
    """One slice of the Fig 5 area breakdown."""

    name: str
    area_mm2: float
    fraction: float

    @property
    def percentage(self) -> float:
        """Share of the PE total, in percent."""
        return self.fraction * 100.0


@dataclass(frozen=True)
class PEAreaBreakdown:
    """Component areas for a single PE."""

    components: tuple[AreaComponent, ...]
    total_mm2: float

    @classmethod
    def from_config(cls, config: TridentConfig) -> "PEAreaBreakdown":
        rows = config.bank_rows
        raw = [
            ("TIA", TIA_AREA_MM2 * rows),
            ("E/O Laser", EO_LASER_AREA_MM2 * rows),
            ("BPD", BPD_AREA_MM2 * rows),
            ("GST Activation Cell", ACTIVATION_RING_AREA_MM2 * rows),
            ("MRR Weight Bank", WEIGHT_MRR_AREA_MM2 * config.mrrs_per_pe),
            ("LDSU", LDSU_AREA_MM2 * rows),
            ("Cache", CACHE_AREA_MM2),
            ("Waveguides and Routing", ROUTING_AREA_MM2),
        ]
        total = sum(a for _, a in raw)
        if total <= 0:
            raise ConfigError("PE area must be positive")
        components = tuple(
            AreaComponent(name=name, area_mm2=a, fraction=a / total) for name, a in raw
        )
        return cls(components=components, total_mm2=total)

    def component(self, name: str) -> AreaComponent:
        """Look a slice up by its Fig 5 name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no area component named {name!r}")

    @property
    def dominant(self) -> AreaComponent:
        """Largest slice — the paper's observation: the TIAs."""
        return max(self.components, key=lambda c: c.area_mm2)


@dataclass(frozen=True)
class AreaModel:
    """Chip-level area queries (Fig 5 / Sec. IV)."""

    config: TridentConfig

    @property
    def pe_breakdown(self) -> PEAreaBreakdown:
        """Component areas for one PE."""
        return PEAreaBreakdown.from_config(self.config)

    @property
    def chip_area_mm2(self) -> float:
        """Total accelerator area (paper: 604.6 mm^2 for 44 PEs)."""
        return self.pe_breakdown.total_mm2 * self.config.n_pes

    @property
    def fits_one_square_inch(self) -> bool:
        """The paper's edge-suitability check: under 1 in^2 (645.16 mm^2)."""
        return self.chip_area_mm2 < 25.4 * 25.4

    def as_rows(self) -> list[dict[str, object]]:
        """Fig 5 as data rows, scaled to the whole chip."""
        breakdown = self.pe_breakdown
        rows: list[dict[str, object]] = [
            {
                "component": c.name,
                "area_mm2": c.area_mm2 * self.config.n_pes,
                "percentage": c.percentage,
            }
            for c in breakdown.components
        ]
        rows.append(
            {
                "component": "Total",
                "area_mm2": self.chip_area_mm2,
                "percentage": 100.0,
            }
        )
        return rows
