"""J x N PCM-MRR weight bank — the vectorized heart of the functional sim.

A bank is a matrix of add-drop rings, one wavelength per column, one
BPD-terminated row per output.  The scalar physics lives in
:mod:`repro.devices.pcm_mrr`; here the whole bank is represented by integer
level arrays so programming and the analog matrix-vector product are single
NumPy operations (per the HPC guides: no per-ring Python objects on the hot
path — tests assert this array math agrees with the scalar device model).

What the bank models:

- **Quantization**: weights snap to the tuning technology's level grid
  (255 levels for GST = 8-bit; 63 levels for thermal = 6-bit — the paper's
  argument for why thermally tuned banks cannot train).
- **Programming noise**: optional level-granularity perturbation on writes.
- **WDM crosstalk**: optional leakage matrix mixing input channels.
- **Write accounting**: every programming event's energy/time/cell count,
  plus hold energy for volatile tuning technologies.

State invariant: ``_levels`` always tracks the *physical* level of every
ring — stuck cells show their stuck level whether or not they sit inside the
programmed block.  ``_realized`` is the MVM-coupled weight: the dequantized
level inside the programmed block and 0.0 outside it, because the control
unit routes no input wavelength onto unused columns and terminates no
detector on unused rows.  Off-block stuck rings therefore do **not**
attenuate light in this model (crosstalk leakage onto unused channels is
below the model's fidelity); ``_mask`` marks block membership.

Fault tolerance: a bank built with ``spare_rows=k`` carries k extra
physical ring rows beyond its logical J rows.  A row-remap table routes
each logical row onto a physical row; :meth:`remap_row` retires a worn row
onto a free spare (a control-unit routing change — the repair reprogram
pays the write cost).  All physical state arrays are sized
``(rows + spare_rows, cols)``; the logical MVM view reads through the map.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.devices.noise import NoiseModel
from repro.devices.pcm_mrr import WeightCalibration, build_calibration
from repro.devices.tuning import GSTTuning, TuningModel
from repro.errors import (
    ConfigError,
    FaultError,
    ProgrammingError,
    RepairError,
    ShapeError,
    WriteConvergenceWarning,
)


@dataclass
class BankStats:
    """Cumulative programming/usage counters for one bank."""

    write_events: int = 0
    cells_written: int = 0
    write_energy_j: float = 0.0
    write_time_s: float = 0.0
    symbols: int = 0

    def merge(self, other: "BankStats") -> "BankStats":
        """Combine counters (used when aggregating across PEs)."""
        return BankStats(
            write_events=self.write_events + other.write_events,
            cells_written=self.cells_written + other.cells_written,
            write_energy_j=self.write_energy_j + other.write_energy_j,
            write_time_s=self.write_time_s + other.write_time_s,
            symbols=self.symbols + other.symbols,
        )

    def diff(self, earlier: "BankStats") -> "BankStats":
        """Counters accumulated since ``earlier`` (self - earlier)."""
        return BankStats(
            write_events=self.write_events - earlier.write_events,
            cells_written=self.cells_written - earlier.cells_written,
            write_energy_j=self.write_energy_j - earlier.write_energy_j,
            write_time_s=self.write_time_s - earlier.write_time_s,
            symbols=self.symbols - earlier.symbols,
        )


class WeightBank:
    """Programmable photonic weight matrix with quantized analog readout."""

    def __init__(
        self,
        rows: int = 16,
        cols: int = 16,
        tuning: TuningModel | None = None,
        noise: NoiseModel | None = None,
        calibration: WeightCalibration | None = None,
        crosstalk: np.ndarray | None = None,
        programming_noise_levels: float = 0.0,
        spare_rows: int = 0,
        convergence_floor: float = 0.9,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ShapeError(f"bank dimensions must be positive, got {rows}x{cols}")
        if spare_rows < 0:
            raise ShapeError(f"spare rows must be non-negative, got {spare_rows}")
        if not 0.0 <= convergence_floor <= 1.0:
            raise ConfigError(
                f"convergence floor must lie in [0, 1], got {convergence_floor}"
            )
        self.rows = rows
        self.cols = cols
        self.spare_rows = spare_rows
        self.physical_rows = rows + spare_rows
        self.convergence_floor = convergence_floor
        self.tuning = tuning if tuning is not None else GSTTuning()
        self.noise = noise if noise is not None else NoiseModel.ideal()
        self._calibration = calibration
        self.levels = self.tuning.levels
        if programming_noise_levels < 0:
            raise ProgrammingError("programming noise must be non-negative")
        self.programming_noise_levels = programming_noise_levels
        if crosstalk is not None:
            crosstalk = np.asarray(crosstalk, dtype=np.float64)
            if crosstalk.shape != (cols, cols):
                raise ShapeError(
                    f"crosstalk matrix must be {cols}x{cols}, got {crosstalk.shape}"
                )
        self.crosstalk = crosstalk

        shape = (self.physical_rows, cols)
        self._levels = np.zeros(shape, dtype=np.int64)
        self._realized = np.zeros(shape, dtype=np.float64)
        self._mask = np.zeros(shape, dtype=bool)
        self._stuck_mask = np.zeros(shape, dtype=bool)
        self._stuck_levels = np.zeros(shape, dtype=np.int64)
        #: logical row i reads physical ring row _row_map[i].
        self._row_map = np.arange(rows, dtype=np.int64)
        #: True while the map is the identity (lets the batched MVM use a
        #: realized-block view instead of a gather).
        self._row_map_is_identity = True
        self._spare_pool: list[int] = list(range(rows, self.physical_rows))
        self._needs_reprogram = False
        #: Cached (r, c) of the programmed block; None -> rescan the mask.
        self._occupancy: tuple[int, int] | None = None
        self._last_converged: np.ndarray | None = None
        self._last_level_errors: np.ndarray | None = None
        self._unconverged_mask = np.zeros(shape, dtype=bool)
        self.stats = BankStats()

    # ------------------------------------------------------------------
    @property
    def calibration(self) -> WeightCalibration:
        """Physical-layer calibration (built lazily; only needed for
        fraction-level queries, not for the level-domain hot path)."""
        if self._calibration is None:
            self._calibration = build_calibration()
        return self._calibration

    @property
    def weight_step(self) -> float:
        """Smallest representable weight increment at this resolution."""
        return 2.0 / (self.levels - 1)

    # ------------------------------------------------------------------
    def _quantize(self, weights: np.ndarray) -> np.ndarray:
        scaled = (np.clip(weights, -1.0, 1.0) + 1.0) / 2.0 * (self.levels - 1)
        return np.rint(scaled).astype(np.int64)

    def _dequantize(self, levels: np.ndarray) -> np.ndarray:
        return np.clip(levels / (self.levels - 1) * 2.0 - 1.0, -1.0, 1.0)

    def program(self, weights: np.ndarray) -> np.ndarray:
        """Program a weight matrix (or top-left sub-block) into the bank.

        ``weights`` must be an (r, c) array with r <= rows, c <= cols and
        entries in [-1, 1].  Unused cells are parked at weight 0 and excluded
        from the MVM.  Returns the realized (quantized + noise) weights of
        the programmed block.  One call = one parallel programming event.
        """
        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        if w.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got ndim={w.ndim}")
        r, c = w.shape
        if r > self.rows or c > self.cols:
            raise ShapeError(
                f"block {r}x{c} does not fit bank {self.rows}x{self.cols}"
            )
        if np.any(np.abs(w) > 1.0 + 1e-9):
            raise ProgrammingError("weights must lie in [-1, 1] (normalize first)")

        levels = self._quantize(w)
        noisy = self.noise.apply_programming_noise(levels, self.programming_noise_levels)
        noisy = np.clip(noisy, 0, self.levels - 1)

        phys = self._row_map[:r]
        self._levels[:] = 0
        self._realized[:] = 0.0
        self._mask[:] = False
        self._levels[phys, :c] = np.rint(noisy).astype(np.int64)
        self._realized[phys, :c] = self._dequantize(noisy)
        self._mask[phys, :c] = True
        self._occupancy = None
        self._needs_reprogram = False
        self._last_converged = None
        self._last_level_errors = None
        self._unconverged_mask[:] = False

        if self._stuck_mask.any():
            # Failed cells ignore the write and hold their stuck level.  The
            # level array keeps the physical state for every stuck ring; the
            # MVM-coupled weight is only overridden inside the block (see the
            # module docstring's state invariant).
            self._levels[self._stuck_mask] = self._stuck_levels[self._stuck_mask]
            in_block = self._stuck_mask & self._mask
            self._realized[in_block] = self._dequantize(
                self._stuck_levels[in_block].astype(np.float64)
            )

        n_cells = r * c
        self.stats.write_events += 1
        self.stats.cells_written += n_cells
        self.stats.write_energy_j += self.tuning.write_energy(n_cells)
        self.stats.write_time_s += self.tuning.write_time()
        return self._realized[phys, :c].copy()

    def program_verified(
        self, weights: np.ndarray, writer
    ) -> tuple[np.ndarray, object]:
        """Program through an iterative program-and-verify controller.

        Like :meth:`program`, but the writer's achieved (noisy) levels
        become the realized weights and the write accounting is corrected
        to the actual pulse count the verify loop consumed.  Stuck cells
        are handed to the writer as frozen cells, so the readback's
        ``converged`` mask is an honest health signal: a worn cell whose
        stuck level lies outside tolerance never converges.  The mask is
        *stored* (see :attr:`unconverged_fraction`), and a
        :class:`~repro.errors.WriteConvergenceWarning` fires when the
        convergence rate drops below the bank's ``convergence_floor``.

        Returns (realized weights of the programmed block, the writer's
        ProgramVerifyResult).
        """
        w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
        self.program(w)  # establishes occupancy + one nominal write
        r, c = w.shape
        phys = self._row_map[:r]
        targets = self._quantize(w).astype(np.float64)
        frozen = self._stuck_mask[phys, :c]
        if frozen.any():
            result = writer.write(
                targets,
                frozen_mask=frozen,
                frozen_levels=self._stuck_levels[phys, :c].astype(np.float64),
            )
        else:
            result = writer.write(targets)
        achieved = np.rint(
            np.clip(result.achieved_levels, 0, self.levels - 1)
        ).astype(np.int64)
        self._levels[phys, :c] = achieved
        self._realized[phys, :c] = self._dequantize(achieved)
        # Readback bookkeeping: the converged mask is the controller's only
        # window into cell health — keep it instead of discarding it.
        self._last_converged = result.converged.copy()
        self._last_level_errors = np.abs(achieved - targets)
        self._unconverged_mask[:] = False
        self._unconverged_mask[phys, :c] = ~result.converged
        # Correct the nominal single-pulse accounting to the verify loop's
        # actual cost (extra pulses cost energy and endurance; reads cost
        # read energy; time grows by the extra write rounds).  The round
        # count is clamped at zero: a loop that needed no pulses at all
        # (targets already reached) must not *refund* write time the
        # nominal program already charged.
        extra_pulses = result.total_pulses - r * c
        self.stats.cells_written += extra_pulses
        self.stats.write_energy_j += (
            extra_pulses * writer.config.write_energy_j
            + result.total_reads * writer.config.read_energy_j
        )
        extra_rounds = max(int(result.pulses.max(initial=0)) - 1, 0)
        self.stats.write_time_s += extra_rounds * self.tuning.write_time()
        rate = result.convergence_rate
        if rate < self.convergence_floor:
            warnings.warn(
                WriteConvergenceWarning(
                    f"program-verify convergence {rate:.1%} below floor "
                    f"{self.convergence_floor:.1%} "
                    f"({int((~result.converged).sum())} of "
                    f"{result.converged.size} cells unconverged)"
                ),
                stacklevel=2,
            )
        return self._realized[phys, :c].copy(), result

    @property
    def realized_weights(self) -> np.ndarray:
        """Full (rows x cols) MVM-coupled weight matrix.

        Zeros outside the programmed block — unused columns carry no input
        wavelength and unused rows terminate no detector, so off-block cells
        (stuck or not) never weight light.  See :attr:`physical_levels` for
        the physical ring state.
        """
        return self._realized.copy()

    @property
    def physical_levels(self) -> np.ndarray:
        """Physical per-ring levels (copy), including off-block stuck cells.

        Shape is ``(rows + spare_rows, cols)`` — spare ring rows included.
        """
        return self._levels.copy()

    @property
    def logical_weights(self) -> np.ndarray:
        """(rows x cols) MVM-coupled weights as the detectors see them.

        Reads the physical array through the row-remap table, so remapped
        rows show their spare ring row's weights.  Identical to
        :attr:`realized_weights` while no row has been remapped.
        """
        return self._realized[self._row_map].copy()

    @property
    def unconverged_fraction(self) -> float:
        """Fraction of the last verified write's cells that failed to
        converge (0.0 when the last write was nominal / unverified)."""
        if self._last_converged is None:
            return 0.0
        return float(1.0 - self._last_converged.mean())

    @property
    def last_converged(self) -> np.ndarray | None:
        """Converged mask of the last verified write (block shape), or
        None if the last write was nominal."""
        return None if self._last_converged is None else self._last_converged.copy()

    @property
    def last_write_error_levels(self) -> np.ndarray | None:
        """|achieved - target| in levels for the last verified write
        (block shape), or None if the last write was nominal.  This is the
        readback the repair engine judges tile health from."""
        if self._last_level_errors is None:
            return None
        return self._last_level_errors.copy()

    @property
    def unconverged_mask(self) -> np.ndarray:
        """Physical-shape boolean mask of the last verified write's
        unconverged cells (all False after a nominal write)."""
        return self._unconverged_mask.copy()

    @property
    def active_row_map(self) -> np.ndarray:
        """Copy of the logical-to-physical row-remap table."""
        return self._row_map.copy()

    @property
    def free_spare_rows(self) -> tuple[int, ...]:
        """Physical indices of spare ring rows not yet consumed."""
        return tuple(self._spare_pool)

    @property
    def remapped_rows(self) -> dict[int, int]:
        """{logical row: physical spare row} for every remapped row."""
        return {
            int(i): int(p)
            for i, p in enumerate(self._row_map)
            if int(p) != int(i)
        }

    @property
    def occupancy(self) -> tuple[int, int]:
        """(r, c) shape of the currently programmed block.

        Cached: the mask scan is O(rows x cols) and this sits on the
        per-symbol MVM path; every mask mutation site resets the cache.
        """
        if self._occupancy is None:
            if not self._mask.any():
                self._occupancy = (0, 0)
            else:
                self._occupancy = (
                    int(self._mask.any(axis=1).sum()),
                    int(self._mask.any(axis=0).sum()),
                )
        return self._occupancy

    # ------------------------------------------------------------------
    def _effective_inputs(self, x: np.ndarray) -> np.ndarray:
        if self.crosstalk is None:
            return x
        return self.crosstalk @ x

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Analog MVP: realized block times input vector (one symbol).

        ``x`` must have length <= cols and entries in [-1, 1] (the E/O
        encoder's range).  Returns the per-row differential signals before
        detection — length = programmed row count.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ShapeError(f"input must be a vector, got shape {x.shape}")
        if self._needs_reprogram:
            raise ProgrammingError(
                "bank rows were remapped; reprogram before streaming"
            )
        r, c = self.occupancy
        if x.shape[0] != c:
            raise ShapeError(f"input length {x.shape[0]} != programmed columns {c}")
        if np.any(np.abs(x) > 1.0 + 1e-9):
            raise ProgrammingError("inputs must lie in [-1, 1] (normalize first)")
        full = np.zeros(self.cols, dtype=np.float64)
        full[:c] = x
        eff = self._effective_inputs(full)
        self.stats.symbols += 1
        return self._realized[self._row_map[:r]] @ eff

    def matmat(self, x: np.ndarray, *, validate: bool = True) -> np.ndarray:
        """Batched MVP: (cols_used, B) inputs -> (rows_used, B) outputs.

        Counts B symbols; the physical bank streams one column per symbol.
        ``validate=False`` skips the E/O range re-check for slabs that
        come straight out of the encoder (``normalize_columns`` bounds
        its output by construction) — the check is an O(cols x B) sweep
        that would otherwise run twice per tile on the batched path.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ShapeError(f"input must be 2-D, got shape {x.shape}")
        if self._needs_reprogram:
            raise ProgrammingError(
                "bank rows were remapped; reprogram before streaming"
            )
        r, c = self.occupancy
        if x.shape[0] != c:
            raise ShapeError(f"input rows {x.shape[0]} != programmed columns {c}")
        if validate and np.any(np.abs(x) > 1.0 + 1e-9):
            raise ProgrammingError("inputs must lie in [-1, 1] (normalize first)")
        self.stats.symbols += x.shape[1]
        if self.crosstalk is None:
            # Without channel mixing the zero-padded columns contribute
            # exact zeros, so slice the realized block to the programmed
            # width instead of padding the slab — and keep the block a
            # view while no row has ever been remapped.
            if self._row_map_is_identity:
                block = self._realized[:r, :c]
            else:
                block = self._realized[self._row_map[:r], :c]
            return block @ x
        if c == self.cols:
            full = x  # full-width slab: nothing to zero-pad
        else:
            full = np.zeros((self.cols, x.shape[1]), dtype=np.float64)
            full[:c] = x
        eff = self._effective_inputs(full)
        return self._realized[self._row_map[:r]] @ eff

    # ------------------------------------------------------------------
    def realize_virtually(self, weights: np.ndarray) -> np.ndarray:
        """Quantized + programming-noise view of ``weights`` (any shape).

        Applies exactly the level snap and write noise :meth:`program`
        would, but touches neither the bank state nor the accounting.
        Batched emulation paths (e.g. the vectorized outer product, which
        physically re-programs the bank once per sample) use this together
        with :meth:`account_writes` so the arithmetic stays one array pass
        while the event accounting matches the per-sample hardware schedule.
        """
        w = np.asarray(weights, dtype=np.float64)
        if np.any(np.abs(w) > 1.0 + 1e-9):
            raise ProgrammingError("weights must lie in [-1, 1] (normalize first)")
        levels = self._quantize(w)
        noisy = self.noise.apply_programming_noise(levels, self.programming_noise_levels)
        return self._dequantize(np.clip(noisy, 0, self.levels - 1))

    def account_writes(self, events: int, cells_per_event: int) -> None:
        """Charge ``events`` parallel programming operations to the stats.

        Each event writes ``cells_per_event`` cells.  Used when a batched
        path emulates per-sample reprogramming arithmetically (see
        :meth:`realize_virtually`); the energy/time/cell accounting is
        identical to ``events`` real :meth:`program` calls.
        """
        if events < 0 or cells_per_event < 0:
            raise ProgrammingError("write accounting takes non-negative counts")
        self.stats.write_events += events
        self.stats.cells_written += events * cells_per_event
        self.stats.write_energy_j += events * self.tuning.write_energy(cells_per_event)
        self.stats.write_time_s += events * self.tuning.write_time()

    def account_symbols(self, n_symbols: int) -> None:
        """Charge ``n_symbols`` streamed input vectors to the stats.

        Companion of :meth:`account_writes` for emulated streaming.
        """
        if n_symbols < 0:
            raise ProgrammingError("symbol accounting takes non-negative counts")
        self.stats.symbols += n_symbols

    # ------------------------------------------------------------------
    def hold_energy(self, duration_s: float) -> float:
        """Energy to hold the programmed weights for ``duration_s``.

        Zero for GST (non-volatile); the thermal baselines pay
        1.7 mW x cells x duration.
        """
        r, c = self.occupancy
        return self.tuning.hold_energy(r * c, duration_s)

    # ------------------------------------------------------------------
    # Faults and repair
    # ------------------------------------------------------------------
    def inject_stuck_faults(
        self,
        fraction: float,
        rng: np.random.Generator,
        stuck_level: int | None = None,
    ) -> int:
        """Mark a random fraction of cells as stuck-at faults.

        The classic PCM failure mode: a worn-out cell no longer switches
        and holds one level forever (``stuck_level``; default is the
        mid-grid level, i.e. weight 0 — a stuck-amorphous/crystalline cell
        can be modeled by passing 0 or ``levels - 1``).  Faults apply to
        every subsequent ``program`` call and cover the *whole physical
        array*, spare ring rows included (spares wear like any other
        ring).  Returns the number of cells newly stuck.  Raises
        :class:`~repro.errors.FaultError` on invalid arguments.
        """
        if not 0.0 <= fraction <= 1.0:
            raise FaultError(f"fraction must lie in [0, 1], got {fraction}")
        level = (self.levels - 1) // 2 if stuck_level is None else stuck_level
        if not 0 <= level < self.levels:
            raise FaultError(
                f"stuck level must lie in [0, {self.levels - 1}], got {level}"
            )
        new = (
            rng.random((self.physical_rows, self.cols)) < fraction
        ) & ~self._stuck_mask
        self._stuck_mask |= new
        self._stuck_levels[new] = level
        # Physical state updates everywhere immediately; the MVM-coupled
        # weight only inside the programmed block (module state invariant).
        self._levels[new] = level
        apply = new & self._mask
        self._realized[apply] = self._dequantize(np.float64(level))
        return int(new.sum())

    def upset_cells(
        self, n: int, rng: np.random.Generator, delta: float = 0.25
    ) -> int:
        """Silently perturb ``n`` occupied cells' realized weights.

        Models a post-readback upset (radiation strike, thermal
        transient): the MVM-coupled weight changes **without** touching
        the stuck mask, the convergence mask, or the verify readback —
        every health signal stays green while the bank computes wrong
        numbers.  That is the silent-data-corruption scenario the ABFT
        attestation layer (:mod:`repro.integrity`) exists to catch;
        :meth:`inject_stuck_faults` by contrast is *visible* damage the
        repair ladder can detect.  Each perturbed cell moves by
        ``delta`` in normalized weight units with a sign drawn from
        ``rng``, clipped to [-1, 1].  Returns the cells perturbed (0
        when nothing is programmed).
        """
        if n < 0:
            raise FaultError(f"upset count must be >= 0, got {n}")
        if delta <= 0:
            raise FaultError(f"upset delta must be positive, got {delta}")
        r, c = self.occupancy
        if r == 0 or c == 0:
            return 0
        n = min(int(n), r * c)
        flat = rng.choice(r * c, size=n, replace=False)
        rows_logical, cols = np.divmod(flat, c)
        signs = rng.integers(0, 2, n) * 2 - 1
        phys = self._row_map[rows_logical]
        self._realized[phys, cols] = np.clip(
            self._realized[phys, cols] + signs * float(delta), -1.0, 1.0
        )
        return int(n)

    @property
    def stuck_fraction(self) -> float:
        """Fraction of physical cells (spares included) currently stuck."""
        return float(self._stuck_mask.mean())

    def row_stuck_counts(self, cols_used: int | None = None) -> np.ndarray:
        """Ground-truth stuck-cell count per *logical* row.

        Counts over the first ``cols_used`` columns (default: all).  This
        is the omniscient view for tests/reports; online repair decisions
        use the :class:`~repro.faults.FaultDetector`'s inferred map.
        """
        c = self.cols if cols_used is None else cols_used
        if not 0 <= c <= self.cols:
            raise FaultError(f"cols_used must lie in [0, {self.cols}], got {c}")
        return self._stuck_mask[self._row_map, :c].sum(axis=1)

    def selftest(self, writer, test_levels: tuple[int, ...] = (64, 190)) -> list:
        """March-style built-in self-test of every physical ring row.

        Program-verifies each test level onto the *whole* physical array
        (spare rows included — the only way to learn spare health before
        trusting a remap to one).  A stuck cell fails every pattern whose
        level sits outside verify tolerance of its stuck level, so two
        well-separated patterns give two strikes to almost any stuck cell;
        a cell stuck *at* a test level escapes that pattern and is caught
        later by online write readback instead.  Each pattern is charged
        as a full-array write (pulses + verify reads); the test clobbers
        the programmed weights, so the bank refuses MVMs until the caller
        reprograms it.  Returns the per-pattern ProgramVerifyResults
        (physical shape).
        """
        if not test_levels:
            raise FaultError("selftest needs at least one test level")
        results = []
        for level in test_levels:
            if not 0 <= level < self.levels:
                raise FaultError(
                    f"test level must lie in [0, {self.levels - 1}], got {level}"
                )
            targets = np.full(
                (self.physical_rows, self.cols), float(level), dtype=np.float64
            )
            if self._stuck_mask.any():
                result = writer.write(
                    targets,
                    frozen_mask=self._stuck_mask,
                    frozen_levels=self._stuck_levels.astype(np.float64),
                )
            else:
                result = writer.write(targets)
            self._levels[:] = np.rint(
                np.clip(result.achieved_levels, 0, self.levels - 1)
            ).astype(np.int64)
            self.stats.write_events += 1
            self.stats.cells_written += result.total_pulses
            self.stats.write_energy_j += (
                result.total_pulses * writer.config.write_energy_j
                + result.total_reads * writer.config.read_energy_j
            )
            rounds = max(int(result.pulses.max(initial=0)), 1)
            self.stats.write_time_s += rounds * self.tuning.write_time()
            results.append(result)
        self._realized[:] = 0.0
        self._mask[:] = False
        self._occupancy = None
        self._needs_reprogram = True
        return results

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of every mutable bank state: physical GST levels,
        realized/occupancy/stuck/converged masks, the row-remap table and
        spare pool, and the cumulative write/usage counters.  Arrays are
        copies; the snapshot is safe to hold across further bank use."""
        return {
            "rows": self.rows,
            "cols": self.cols,
            "spare_rows": self.spare_rows,
            "levels": self.levels,
            "levels_array": self._levels.copy(),
            "realized": self._realized.copy(),
            "mask": self._mask.copy(),
            "stuck_mask": self._stuck_mask.copy(),
            "stuck_levels": self._stuck_levels.copy(),
            "row_map": self._row_map.copy(),
            "spare_pool": list(self._spare_pool),
            "needs_reprogram": self._needs_reprogram,
            "last_converged": (
                None if self._last_converged is None else self._last_converged.copy()
            ),
            "last_level_errors": (
                None
                if self._last_level_errors is None
                else self._last_level_errors.copy()
            ),
            "unconverged_mask": self._unconverged_mask.copy(),
            "stats": {
                "write_events": self.stats.write_events,
                "cells_written": self.stats.cells_written,
                "write_energy_j": self.stats.write_energy_j,
                "write_time_s": self.stats.write_time_s,
                "symbols": self.stats.symbols,
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this bank.

        The bank must have been constructed with the same geometry and
        level grid; a mismatch raises
        :class:`~repro.errors.CheckpointError` rather than silently
        loading a foreign snapshot.
        """
        from repro.errors import CheckpointError

        for name, expected in (
            ("rows", self.rows),
            ("cols", self.cols),
            ("spare_rows", self.spare_rows),
            ("levels", self.levels),
        ):
            if int(state[name]) != expected:
                raise CheckpointError(
                    f"bank snapshot {name}={state[name]} does not match this "
                    f"bank's {name}={expected}"
                )
        shape = (self.physical_rows, self.cols)
        self._levels = np.asarray(state["levels_array"], dtype=np.int64).reshape(shape)
        self._realized = np.asarray(state["realized"], dtype=np.float64).reshape(shape)
        self._mask = np.asarray(state["mask"], dtype=bool).reshape(shape)
        self._occupancy = None
        self._stuck_mask = np.asarray(state["stuck_mask"], dtype=bool).reshape(shape)
        self._stuck_levels = np.asarray(state["stuck_levels"], dtype=np.int64).reshape(
            shape
        )
        self._row_map = np.asarray(state["row_map"], dtype=np.int64).reshape(self.rows)
        self._row_map_is_identity = bool(
            np.array_equal(self._row_map, np.arange(self.rows))
        )
        self._spare_pool = [int(s) for s in state["spare_pool"]]
        self._needs_reprogram = bool(state["needs_reprogram"])
        self._last_converged = (
            None
            if state["last_converged"] is None
            else np.asarray(state["last_converged"], dtype=bool)
        )
        self._last_level_errors = (
            None
            if state["last_level_errors"] is None
            else np.asarray(state["last_level_errors"], dtype=np.float64)
        )
        self._unconverged_mask = np.asarray(
            state["unconverged_mask"], dtype=bool
        ).reshape(shape)
        stats = state["stats"]
        self.stats = BankStats(
            write_events=int(stats["write_events"]),
            cells_written=int(stats["cells_written"]),
            write_energy_j=float(stats["write_energy_j"]),
            write_time_s=float(stats["write_time_s"]),
            symbols=int(stats["symbols"]),
        )

    def remap_row(self, logical_row: int, spare_physical: int | None = None) -> int:
        """Retire a logical row's physical ring row onto a spare row.

        A control-unit routing change: the row's detector terminates the
        spare ring row instead of the worn one.  The remap itself costs
        nothing, but it leaves the bank **unprogrammed at the new row** —
        the next MVM is refused until the caller reprograms (the repair
        engine always reprograms immediately, paying the normal write
        accounting; no free writes).  Returns the new physical row index.
        """
        if not 0 <= logical_row < self.rows:
            raise FaultError(
                f"logical row must lie in [0, {self.rows - 1}], got {logical_row}"
            )
        if not self._spare_pool:
            raise RepairError(
                f"bank has no free spare rows left (spare_rows={self.spare_rows})"
            )
        if spare_physical is None:
            spare_physical = self._spare_pool[0]
        if spare_physical not in self._spare_pool:
            raise RepairError(
                f"physical row {spare_physical} is not a free spare "
                f"(free: {self._spare_pool})"
            )
        self._spare_pool.remove(spare_physical)
        old = int(self._row_map[logical_row])
        self._row_map[logical_row] = spare_physical
        self._row_map_is_identity = False
        # The retired row no longer terminates a detector: decouple it from
        # the MVM view.  Its physical (possibly stuck) levels remain.
        self._mask[old] = False
        self._occupancy = None
        self._realized[old] = 0.0
        self._needs_reprogram = True
        return int(spare_physical)


def program_with_verify(
    bank: WeightBank,
    weights: np.ndarray,
    writer,
) -> tuple[np.ndarray, object]:
    """Program a bank through an iterative program-and-verify controller.

    Thin functional wrapper over :meth:`WeightBank.program_verified`, kept
    for callers that predate the bank-level method.
    """
    return bank.program_verified(weights, writer)


def compensate_crosstalk(weights: np.ndarray, crosstalk: np.ndarray) -> np.ndarray:
    """Pre-compensate a weight matrix for known WDM crosstalk.

    With leakage matrix C (diag 1), a bank programmed with W realizes
    ``y = W C x``.  Because C is deterministic and measurable, the control
    unit can program ``W' = W C^{-1}`` instead, so the realized product is
    exactly ``W x`` — the per-weight calibration step real broadcast-and-
    weight systems perform (Tait et al., paper ref [32]).

    Raises if C is singular or if compensation pushes weights outside the
    programmable [-1, 1] range (then the leakage is too strong to absorb
    at full weight swing — reduce the swing or the channel count).
    """
    c = np.asarray(crosstalk, dtype=np.float64)
    if c.ndim != 2 or c.shape[0] != c.shape[1]:
        raise ShapeError(f"crosstalk matrix must be square, got {c.shape}")
    w = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    if w.shape[1] != c.shape[0]:
        raise ShapeError(
            f"weights have {w.shape[1]} columns but crosstalk is {c.shape[0]}x{c.shape[0]}"
        )
    try:
        compensated = np.linalg.solve(c.T, w.T).T
    except np.linalg.LinAlgError as exc:
        raise ProgrammingError(f"crosstalk matrix not invertible: {exc}") from exc
    if np.max(np.abs(compensated)) > 1.0 + 1e-9:
        raise ProgrammingError(
            "crosstalk compensation exceeds the programmable weight range; "
            "reduce weight swing or channel leakage"
        )
    return compensated
