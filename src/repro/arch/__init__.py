"""The Trident architecture: weight banks, PEs, the full accelerator, and
its power/area/cache models.

Structure (paper Fig 1):

- :mod:`repro.arch.config` — every architectural constant in one place.
- :mod:`repro.arch.weight_bank` — vectorized J x N PCM-MRR bank.
- :mod:`repro.arch.pe` — one processing element (bank + BPD + TIA + LDSU +
  GST activation) with the three operating modes of Table II.
- :mod:`repro.arch.accelerator` — the 44-PE accelerator: layer mapping,
  functional inference and in-situ training, event accounting.
- :mod:`repro.arch.control` — control unit: operating modes, Table II
  encoding map, analog range normalization.
- :mod:`repro.arch.power` — Table III power breakdown and 30 W scaling.
- :mod:`repro.arch.area` — Fig 5 chip-area breakdown.
- :mod:`repro.arch.cache` — L1/L2 cache energy model.
- :mod:`repro.arch.profiler` — per-PE/per-layer event + wall-time profiling.
"""

from repro.arch.accelerator import EventCounters, TridentAccelerator
from repro.arch.area import AreaModel, PEAreaBreakdown
from repro.arch.cache import CacheConfig, CacheModel
from repro.arch.config import TridentConfig
from repro.arch.control import ControlUnit, OperatingMode, RangeNormalizer, table2_mapping
from repro.arch.pe import ProcessingElement
from repro.arch.power import PEPowerBreakdown, PowerModel
from repro.arch.profiler import LayerProfile, PEProfile, ProfileReport, Profiler
from repro.arch.weight_bank import WeightBank

__all__ = [
    "AreaModel",
    "CacheConfig",
    "CacheModel",
    "ControlUnit",
    "EventCounters",
    "LayerProfile",
    "OperatingMode",
    "PEAreaBreakdown",
    "PEPowerBreakdown",
    "PEProfile",
    "PowerModel",
    "ProcessingElement",
    "ProfileReport",
    "Profiler",
    "RangeNormalizer",
    "table2_mapping",
    "TridentAccelerator",
    "TridentConfig",
]
