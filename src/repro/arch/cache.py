"""Cache hierarchy energy model.

Each PE owns a 16 kB L1 scratchpad; a 32 MB L2 is shared across the chip
(paper Sec. IV).  The dataflow cost model charges this module for every
byte of input-feature, output-feature, and partial-sum traffic; anything
that does not fit in L2 spills to (modeled) LPDDR.

Per-byte access energies are standard edge-SoC figures; they matter mostly
for the *baselines*, whose ADC + digital-activation path makes a memory
round-trip between every pair of layers that Trident's photonic activation
avoids (paper Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import KB, MB, PJ
from repro.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Capacities and per-byte access energies for the hierarchy."""

    l1_bytes: int = 16 * KB
    l2_bytes: int = 32 * MB
    l1_energy_per_byte_j: float = 0.5 * PJ
    l2_energy_per_byte_j: float = 2.0 * PJ
    dram_energy_per_byte_j: float = 20.0 * PJ
    #: Sustainable external-memory bandwidth [bytes/s] (LPDDR4x-class).
    dram_bandwidth_bytes_per_s: float = 25.6e9

    def __post_init__(self) -> None:
        if self.l1_bytes <= 0 or self.l2_bytes <= 0:
            raise ConfigError("cache capacities must be positive")
        for name in (
            "l1_energy_per_byte_j",
            "l2_energy_per_byte_j",
            "dram_energy_per_byte_j",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ConfigError("DRAM bandwidth must be positive")


@dataclass(frozen=True)
class TrafficCost:
    """Energy and transfer-time cost of a block of memory traffic."""

    energy_j: float
    dram_bytes: int
    transfer_time_s: float


@dataclass(frozen=True)
class CacheModel:
    """Charges memory traffic against the hierarchy.

    The model is deliberately simple (the paper's Maestro analysis works at
    the same altitude): a tensor is served by the innermost level it fits
    in, and only DRAM traffic costs wall-clock transfer time (on-chip
    accesses are overlapped with compute).
    """

    config: CacheConfig = CacheConfig()

    def level_for(self, tensor_bytes: int) -> str:
        """Which level serves a tensor of this size: 'l1' | 'l2' | 'dram'."""
        if tensor_bytes < 0:
            raise ConfigError(f"tensor size must be non-negative, got {tensor_bytes}")
        if tensor_bytes <= self.config.l1_bytes:
            return "l1"
        if tensor_bytes <= self.config.l2_bytes:
            return "l2"
        return "dram"

    def energy_per_byte(self, level: str) -> float:
        """Access energy [J/byte] at the named level."""
        try:
            return {
                "l1": self.config.l1_energy_per_byte_j,
                "l2": self.config.l2_energy_per_byte_j,
                "dram": self.config.dram_energy_per_byte_j,
            }[level]
        except KeyError:
            raise ConfigError(f"unknown cache level {level!r}") from None

    def access(self, tensor_bytes: int, times: int = 1) -> TrafficCost:
        """Cost of streaming a tensor ``times`` times through its level."""
        if times < 0:
            raise ConfigError(f"times must be non-negative, got {times}")
        level = self.level_for(tensor_bytes)
        total = tensor_bytes * times
        energy = total * self.energy_per_byte(level)
        dram_bytes = total if level == "dram" else 0
        transfer = dram_bytes / self.config.dram_bandwidth_bytes_per_s
        return TrafficCost(energy_j=energy, dram_bytes=dram_bytes, transfer_time_s=transfer)
