"""One Trident processing element (paper Fig 1, right).

A PE is: a J x N PCM-MRR weight bank, J balanced photodetectors (one per
row), J programmable-gain TIAs, one LDSU (J comparator+flip-flop rows), J
E/O lasers re-encoding the row outputs onto fresh wavelengths, and J GST
activation cells.  The same silicon computes three different products
depending on the control unit's encoding (Table II):

- :meth:`forward` — inference: y = f(W x), capturing f'(h) in the LDSU.
- :meth:`gradient_vector` — training step 1: (W_{k+1}^T d_{k+1}) ⊙ f'(h_k),
  the Hadamard realized by programming the TIA gains from the LDSU bits.
- :meth:`outer_product` — training step 2: dW_k = d_k ⊗ y_{k-1}, streamed
  one wavelength per symbol through the bank.

All vector math is normalized to the analog [-1, 1] range; the accelerator's
control unit owns the scale factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.weight_bank import WeightBank
from repro.devices.activation_cell import GSTActivationCell
from repro.devices.ldsu import LDSU
from repro.devices.noise import NoiseModel
from repro.devices.photodetector import BalancedPhotodetector
from repro.devices.tia import TransimpedanceAmplifier
from repro.errors import ShapeError


@dataclass
class ProcessingElement:
    """Weight bank + row electronics + photonic activation."""

    bank: WeightBank = field(default_factory=WeightBank)
    bpd: BalancedPhotodetector = field(default_factory=BalancedPhotodetector)
    ldsu: LDSU | None = None
    activation: GSTActivationCell = field(default_factory=GSTActivationCell)
    tias: list[TransimpedanceAmplifier] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.ldsu is None:
            self.ldsu = LDSU(n_rows=self.bank.rows)
        elif self.ldsu.n_rows != self.bank.rows:
            raise ShapeError(
                f"LDSU rows {self.ldsu.n_rows} != bank rows {self.bank.rows}"
            )
        if not self.tias:
            self.tias = [TransimpedanceAmplifier() for _ in range(self.bank.rows)]
        elif len(self.tias) != self.bank.rows:
            raise ShapeError(
                f"need one TIA per row ({self.bank.rows}), got {len(self.tias)}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def with_noise(cls, noise: NoiseModel, rows: int = 16, cols: int = 16) -> "ProcessingElement":
        """Convenience constructor wiring one noise model everywhere."""
        return cls(
            bank=WeightBank(rows=rows, cols=cols, noise=noise),
            bpd=BalancedPhotodetector(noise=noise),
        )

    @property
    def rows(self) -> int:
        """Weight-bank row count (J)."""
        return self.bank.rows

    @property
    def cols(self) -> int:
        """Weight-bank column count (N)."""
        return self.bank.cols

    def program_weights(self, weights: np.ndarray) -> np.ndarray:
        """Program the weight matrix for whatever mode comes next."""
        return self.bank.program(weights)

    def _tia_gains(self) -> np.ndarray:
        return np.array([t.gain for t in self.tias], dtype=np.float64)

    def set_tia_gains(self, gains: np.ndarray) -> None:
        """Program per-row TIA multipliers (vector of length rows)."""
        gains = np.asarray(gains, dtype=np.float64)
        if gains.shape != (self.bank.rows,):
            raise ShapeError(
                f"expected {self.bank.rows} gains, got shape {gains.shape}"
            )
        for tia, g in zip(self.tias, gains):
            tia.set_gain(float(g))

    def reset_tia_gains(self) -> None:
        """Return every TIA to unit gain (inference / outer-product modes)."""
        for tia in self.tias:
            tia.set_gain(1.0)

    # ------------------------------------------------------------------
    # Mode 1: inference (Table II column 1)
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        apply_activation: bool = True,
        capture_derivative: bool = True,
    ) -> np.ndarray:
        """y = f(W x): one analog symbol through the full row chain.

        When ``capture_derivative`` the LDSU latches the comparator outputs
        so a later backward pass can replay f'(h) — this is free (it happens
        in parallel with the E/O re-encode).
        """
        diff = self.bank.matvec(x)  # per-row weighted sums
        logits = self.bpd.detect_normalized(diff)
        if capture_derivative:
            padded = np.zeros(self.bank.rows, dtype=np.float64)
            padded[: logits.shape[0]] = logits
            self.ldsu.capture(padded)
        if not apply_activation:
            return logits
        return self.activation.fire(logits)

    def forward_batch(
        self,
        x: np.ndarray,
        capture_derivative: bool = True,
        validate: bool = True,
    ) -> np.ndarray:
        """Batched inference: a (cols_used, B) slab streams in one pass.

        Returns the detected (rows_used, B) logits in normalized units.
        Activation firing happens at the accelerator level after partial
        sums from all of a layer's tiles have accumulated, so this method
        never fires the cell.  With ``capture_derivative`` the LDSU latches
        the whole batch's bit plane (see :meth:`LDSU.capture_batch`).
        ``validate=False`` forwards to :meth:`WeightBank.matmat` for slabs
        the encoder already bounded.
        """
        diff = self.bank.matmat(x, validate=validate)
        logits = self.bpd.detect_normalized(diff)
        if capture_derivative:
            padded = np.zeros((self.bank.rows, x.shape[1]), dtype=np.float64)
            padded[: logits.shape[0]] = logits
            self.ldsu.capture_batch(padded)
        return logits

    # ------------------------------------------------------------------
    # Mode 2: gradient vector (Table II column 2)
    # ------------------------------------------------------------------
    def gradient_vector(self, delta_next: np.ndarray) -> np.ndarray:
        """d_k = (W_{k+1}^T d_{k+1}) ⊙ f'(h_k).

        The bank must already hold W_{k+1}^T (the control unit reprograms it
        before this call).  The Hadamard comes from the LDSU-programmed TIA
        gains — no memory fetch of f'(h) (the paper's headline trick).
        """
        diff = self.bank.matvec(delta_next)
        detected = self.bpd.detect_normalized(diff)
        gains = self.ldsu.derivative_gains()[: detected.shape[0]]
        return detected * gains

    def gradient_vector_batch(self, delta_next: np.ndarray) -> np.ndarray:
        """Batched Eq. (3): one (cols_used, B) slab of deltas in one pass.

        The bank holds W_{k+1}^T once for the whole batch (the grouped
        reprogramming that makes batched training O(layers) writes for
        this step instead of O(layers x batch)); the per-sample Hadamard
        comes from the LDSU's batched bit plane captured during the
        batched forward pass.  Returns (rows_used, B).
        """
        diff = self.bank.matmat(delta_next)
        detected = self.bpd.detect_normalized(diff)
        gains = self.ldsu.derivative_gains_batch()[: detected.shape[0]]
        return detected * gains

    # ------------------------------------------------------------------
    # Mode 3: outer product (Table II column 3)
    # ------------------------------------------------------------------
    def outer_product(self, delta_h: np.ndarray, y_prev: np.ndarray) -> np.ndarray:
        """dW_k = d_k ⊗ y_{k-1} via the weight bank.

        The bank is programmed column-constant with y_{k-1} (each ring of
        row j holds y_{k-1}[j]); the elements of d_k stream one wavelength
        per symbol, so symbol i reads out column i of (y ⊗ d^T), i.e. row i
        of dW.  Costs len(d_k) symbols + one bank write.
        """
        delta_h = np.asarray(delta_h, dtype=np.float64)
        y_prev = np.asarray(y_prev, dtype=np.float64)
        if delta_h.ndim != 1 or y_prev.ndim != 1:
            raise ShapeError("outer_product takes two vectors")
        if y_prev.shape[0] > self.bank.rows:
            raise ShapeError(
                f"y_prev length {y_prev.shape[0]} exceeds bank rows {self.bank.rows}"
            )
        if delta_h.shape[0] > self.bank.cols:
            raise ShapeError(
                f"delta_h length {delta_h.shape[0]} exceeds bank cols {self.bank.cols}"
            )
        self.bank.program(np.tile(y_prev[:, None], (1, delta_h.shape[0])))
        streamed = self.bank.matmat(np.diag(delta_h))  # (len(y), len(d))
        detected = self.bpd.detect_normalized(streamed)
        return detected.T  # (len(d), len(y)) == dW block

    def outer_product_batch(
        self, delta_h: np.ndarray, y_prev: np.ndarray
    ) -> np.ndarray:
        """Emulate B per-sample :meth:`outer_product` calls in one pass.

        ``delta_h`` is (B, d) and ``y_prev`` is (B, y), both normalized.
        Physically each sample still programs the bank column-constant with
        its own y_{k-1} and streams its delta_k, so the hardware cost —
        B programming events of y*d cells and B*d symbols — is charged to
        the bank's stats exactly as B sequential calls would be; only the
        Python-side arithmetic is collapsed to one array pass, through the
        same quantization + programming-noise model.  Results are identical
        to the per-sample path for noise-free hardware (with noise they
        differ in draw order/shape).  The bank's realized state is left
        untouched; callers reprogram the forward weights afterwards anyway.
        Returns the (B, d, y) detected gradient blocks.
        """
        delta_h = np.atleast_2d(np.asarray(delta_h, dtype=np.float64))
        y_prev = np.atleast_2d(np.asarray(y_prev, dtype=np.float64))
        if delta_h.shape[0] != y_prev.shape[0]:
            raise ShapeError(
                f"batch mismatch: {delta_h.shape[0]} deltas vs "
                f"{y_prev.shape[0]} layer inputs"
            )
        batch, d = delta_h.shape
        y = y_prev.shape[1]
        if y > self.bank.rows:
            raise ShapeError(
                f"y_prev width {y} exceeds bank rows {self.bank.rows}"
            )
        if d > self.bank.cols:
            raise ShapeError(
                f"delta_h width {d} exceeds bank cols {self.bank.cols}"
            )
        if np.any(np.abs(delta_h) > 1.0 + 1e-9):
            raise ShapeError("delta_h must lie in [-1, 1] (normalize first)")
        realized_y = self.bank.realize_virtually(y_prev)  # (B, y)
        # matmat(diag(delta)) on a column-constant bank reduces to the outer
        # product scaled by the crosstalk column sums (identity -> ones).
        if self.bank.crosstalk is not None:
            colsum = self.bank.crosstalk[:d, :d].sum(axis=0)
        else:
            colsum = np.ones(d)
        streamed = realized_y[:, :, None] * (delta_h * colsum)[:, None, :]
        detected = self.bpd.detect_normalized(streamed)  # (B, y, d)
        self.bank.account_writes(batch, y * d)
        self.bank.account_symbols(batch * d)
        return detected.transpose(0, 2, 1)  # (B, d, y)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of everything mutable in the PE: bank state, LDSU
        bits, TIA gains, and the activation cell's wear counters."""
        return {
            "bank": self.bank.state_dict(),
            "ldsu": self.ldsu.state_dict(),
            "tia_gains": self._tia_gains(),
            "activation": self.activation.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this PE."""
        self.bank.load_state_dict(state["bank"])
        self.ldsu.load_state_dict(state["ldsu"])
        self.set_tia_gains(np.asarray(state["tia_gains"], dtype=np.float64))
        self.activation.load_state_dict(state["activation"])

    # ------------------------------------------------------------------
    @property
    def write_energy_j(self) -> float:
        """Total programming energy spent by this PE's bank."""
        return self.bank.stats.write_energy_j
