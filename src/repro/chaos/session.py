"""The opt-in chaos session and its zero-overhead disabled path.

Chaos is **off by default**.  The hook points woven through the serving
layer (worker dispatch/drain, sharded pipeline drain, clock advance) all
route through the module-level accessors here; with no session active
each costs one global read and returns the input unchanged — the same
pattern (and the same <1% overhead budget, enforced by
``benchmarks/bench_chaos_overhead.py``) as :mod:`repro.telemetry`.

A :class:`ChaosSession` holds one compiled :class:`~repro.chaos.plan.ChaosPlan`
and tracks which injections have fired.  Inline injections
(``worker_crash``, ``corrupt_output``) are *consumed*: the first hook
point that matches an armed injection (time reached, target matched)
applies it exactly once.  All apply-time randomness comes from
per-injection derived generators (:meth:`ChaosPlan.rng_for`), so the
thread or hook that happens to consume an injection cannot perturb
replay.  Every application is recorded on ``session.applied`` and
mirrored to telemetry (``chaos_injection`` events,
``repro_chaos_injections_total`` counters) when a telemetry session is
also active.

Enable explicitly::

    from repro import chaos

    plan = chaos.compile_plan(chaos.ChaosProfile(window_s=1e-3), seed=7)
    with chaos.session(plan) as c:
        server.install_chaos(c)
        report = server.run(arrivals)
    print(c.applied)
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from repro.chaos.plan import (
    ChaosPlan,
    FILE_KINDS,
    INLINE_KINDS,
    SCHEDULED_KINDS,
)
from repro.errors import ChaosError
from repro.telemetry.session import counter as _metric_counter
from repro.telemetry.session import emit_event as _emit_event


class ChaosSession:
    """One enabled chaos scope: a plan plus its consumption state."""

    def __init__(self, plan: ChaosPlan) -> None:
        if not isinstance(plan, ChaosPlan):
            raise ChaosError(
                f"chaos session needs a ChaosPlan, got {type(plan).__name__}"
            )
        self.plan = plan
        #: Chronological record of injections actually applied this run:
        #: ``{"index", "kind", "target", "t_s", "at_s", ...details}``.
        self.applied: list[dict] = []
        self._consumed: set[int] = set()
        self._lock = threading.Lock()
        self._jitter_rng = np.random.default_rng((int(plan.seed), 0xC10C))

    # ------------------------------------------------------------------
    # Inline hook points (called from worker/stage execute paths)
    # ------------------------------------------------------------------
    def crash_check(self, worker_id: int, phase: str, now_s: float) -> str | None:
        """Consume an armed ``worker_crash`` for this worker/phase, if any.

        Returns a reason string the hook point should raise as a
        :class:`~repro.errors.WorkerFault`, or ``None`` to proceed.
        """
        with self._lock:
            for index, injection in enumerate(self.plan.injections):
                if (
                    injection.kind == "worker_crash"
                    and index not in self._consumed
                    and injection.t_s <= now_s
                    and injection.target in (None, worker_id)
                    and injection.params.get("phase", "dispatch") == phase
                ):
                    self._mark(index, injection, now_s, worker=worker_id)
                    return (
                        f"chaos injection #{index} "
                        f"(worker_crash at {phase}, scheduled t={injection.t_s:g})"
                    )
        return None

    def corrupt_output(
        self, worker_id: int, now_s: float, outputs: np.ndarray
    ) -> np.ndarray:
        """Consume an armed ``corrupt_output``/``silent_corrupt``, if any.

        ``corrupt_output`` defaults to the historical NaN poison — one
        derived-stream draw, byte-identical to pre-mode plans — which
        the finite-output gate turns into a
        :class:`~repro.errors.WorkerFault`.  The finite modes (``bias``,
        ``scale``, ``sign_flip``; the ``silent_corrupt`` kind, or
        ``corrupt_output`` with an explicit ``mode``) perturb the same
        deterministic subset of entries with plausible finite values
        that *pass* the finite gate: only the ABFT attestation can catch
        them, which is the point.
        """
        with self._lock:
            for index, injection in enumerate(self.plan.injections):
                if (
                    injection.kind in ("corrupt_output", "silent_corrupt")
                    and index not in self._consumed
                    and injection.t_s <= now_s
                    and injection.target in (None, worker_id)
                ):
                    default = (
                        "nan" if injection.kind == "corrupt_output" else "bias"
                    )
                    mode = injection.params.get("mode", default)
                    rng = self.plan.rng_for(index)
                    # order="C" matters: forward_batch outputs can be
                    # F-ordered views, and a layout-preserving copy would
                    # make reshape(-1) return a *copy* — poisoning it
                    # would silently touch nothing.
                    poisoned = np.array(outputs, copy=True, order="C")
                    flat = poisoned.reshape(-1)
                    n_poison = max(1, flat.size // 8)
                    where = rng.choice(flat.size, size=n_poison, replace=False)
                    if mode == "nan":
                        flat[where] = np.nan
                    else:
                        magnitude = float(
                            injection.params.get("magnitude", 4.0)
                        )
                        if mode == "bias":
                            # Offset scaled to dominate the batch's own
                            # dynamic range, with per-entry signs from
                            # the injection's stream.
                            amp = magnitude * (
                                1.0 + float(np.max(np.abs(flat)))
                            )
                            signs = rng.integers(0, 2, n_poison) * 2 - 1
                            flat[where] += signs * amp
                        elif mode == "scale":
                            flat[where] *= magnitude
                        else:  # sign_flip
                            flat[where] = -flat[where]
                    self._mark(
                        index,
                        injection,
                        now_s,
                        worker=worker_id,
                        poisoned=int(n_poison),
                        mode=mode,
                    )
                    return poisoned
        return outputs

    def jitter(self, t_s: float) -> float:
        """Clock-jitter hook: a seeded offset in [0, clock_jitter_s)."""
        amplitude = self.plan.clock_jitter_s
        if amplitude <= 0.0:
            return 0.0
        return amplitude * float(self._jitter_rng.random())

    # ------------------------------------------------------------------
    # Scheduled / file injections (driven by install_chaos and scenarios)
    # ------------------------------------------------------------------
    def scheduled_injections(self):
        """``(index, injection)`` pairs the server must schedule as actions."""
        return [
            (index, injection)
            for index, injection in enumerate(self.plan.injections)
            if injection.kind in SCHEDULED_KINDS
        ]

    def file_injections(self):
        """``(index, injection)`` pairs a scenario applies to files on disk."""
        return [
            (index, injection)
            for index, injection in enumerate(self.plan.injections)
            if injection.kind in FILE_KINDS
        ]

    def inline_injections(self):
        """``(index, injection)`` pairs consumed by execute hook points."""
        return [
            (index, injection)
            for index, injection in enumerate(self.plan.injections)
            if injection.kind in INLINE_KINDS
        ]

    def mark_applied(self, index: int, at_s: float, **details) -> None:
        """Record (exactly once) that injection ``index`` fired."""
        injection = self.plan.injections[index]
        with self._lock:
            if index in self._consumed:
                raise ChaosError(
                    f"chaos injection #{index} ({injection.kind}) applied twice"
                )
            self._mark(index, injection, at_s, **details)

    def _mark(self, index, injection, at_s, **details) -> None:
        # Callers hold self._lock (or are single-threaded action hooks).
        self._consumed.add(index)
        record = {
            "index": int(index),
            "kind": injection.kind,
            "target": injection.target,
            "t_s": float(injection.t_s),
            "at_s": float(at_s),
        }
        record.update(details)
        self.applied.append(record)
        # "kind" would collide with the event kind itself; re-key it.
        payload = {
            "injection_kind" if k == "kind" else k: v for k, v in record.items()
        }
        _emit_event("chaos_injection", **payload)
        _metric_counter(
            "repro_chaos_injections_total",
            "Chaos injections applied, by kind",
            kind=injection.kind,
        ).inc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def applied_counts(self) -> dict[str, int]:
        """Applied-injection count per kind."""
        out: dict[str, int] = {}
        for record in self.applied:
            out[record["kind"]] = out.get(record["kind"], 0) + 1
        return out

    def pending(self) -> list[int]:
        """Indices of injections that never fired (e.g. past run end)."""
        return [
            index
            for index in range(len(self.plan.injections))
            if index not in self._consumed
        ]


_lock = threading.Lock()
_active: ChaosSession | None = None


def enable(plan: ChaosPlan) -> ChaosSession:
    """Arm a chaos session for ``plan`` (replacing any active one)."""
    global _active
    with _lock:
        _active = ChaosSession(plan)
        return _active


def disable() -> ChaosSession | None:
    """Disarm chaos; returns the finished session (or None)."""
    global _active
    with _lock:
        finished, _active = _active, None
        return finished


def active() -> ChaosSession | None:
    """The live session, or None while chaos is disabled."""
    return _active


def enabled() -> bool:
    """True while a chaos session is armed."""
    return _active is not None


@contextlib.contextmanager
def session(plan: ChaosPlan):
    """``with chaos.session(plan) as c:`` — arm, run, disarm."""
    c = enable(plan)
    try:
        yield c
    finally:
        with _lock:
            global _active
            if _active is c:
                _active = None


# ---------------------------------------------------------------------------
# Hot-path accessors.  Hook points call these; when chaos is disabled each
# is one global read returning the input unchanged.
# ---------------------------------------------------------------------------
def crash_check(worker_id: int, phase: str, now_s: float) -> str | None:
    """Armed crash for this worker/phase, or None (the common case)."""
    s = _active
    if s is None:
        return None
    return s.crash_check(worker_id, phase, now_s)


def corrupt_output(worker_id: int, now_s: float, outputs):
    """Possibly-poisoned outputs; the input object itself when disabled."""
    s = _active
    if s is None:
        return outputs
    return s.corrupt_output(worker_id, now_s, outputs)
