"""Post-mortem invariant auditing for chaos runs.

A chaos run is only evidence of robustness if the *system-level*
contracts held while the faults landed.  :func:`audit_serve_run` checks
a :class:`~repro.serving.server.ServeReport` (and optionally a replay
and pre-run accounting baselines) against the stack-wide invariants:

1. **Conservation** — every submitted request terminated exactly once
   (completed xor shed), chaos or not.
2. **Structured sheds** — every rejected request carries a
   :class:`~repro.serving.ShedReason` plus a human-readable detail, and
   every shed decision in the log names its reason.
3. **Atomic batches** — each dispatched batch appears exactly once
   downstream, whole: either one ``complete`` or one ``batch_failed``
   with the same request set.  No partial outputs.
4. **Finite outputs** — nothing non-finite reached a requester (the
   integrity gate turned every corruption into a retried fault).
5. **Repairs charged** — repair/refresh work during the run shows up in
   the energy accounting (``bank_writes`` strictly increased whenever a
   repair or refresh fired); recovery is never free.
6. **Bit-identical replay** — a second run under the same workload seed
   and chaos plan reproduces the decision log and every output byte.
7. **Integrity** (when workers carry ABFT checkers) — attestation
   counters are conserved (every trip resolved to exactly one ladder
   outcome) and every applied ``silent_corrupt`` injection has a
   matching attestation incident: no corrupted batch settled unverified.

Each check lands in an :class:`AuditResult` as ``(name, ok, detail)``;
``result.ok`` is the conjunction.  The soak harness runs this after
every cell, but it is equally usable standalone.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.serving.request import ShedReason

_SHED_REASONS = {reason.value for reason in ShedReason}


@dataclasses.dataclass
class AuditResult:
    """Outcome of one post-mortem audit: named checks + verdict."""

    checks: list[tuple[str, bool, str]] = dataclasses.field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        """Append one named check."""
        self.checks.append((name, bool(ok), detail))

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(ok for _, ok, _ in self.checks)

    def failed(self) -> list[str]:
        """Names of failed checks (with details when present)."""
        return [
            f"{name}: {detail}" if detail else name
            for name, ok, detail in self.checks
            if not ok
        ]

    def as_dict(self) -> dict:
        """JSON-safe form for the flake matrix."""
        return {
            "ok": self.ok,
            "checks": [
                {"name": name, "ok": ok, "detail": detail}
                for name, ok, detail in self.checks
            ],
        }


# ---------------------------------------------------------------------------
# Accounting baselines (captured before the run, diffed after)
# ---------------------------------------------------------------------------
def _worker_accelerators(worker):
    if hasattr(worker, "acc"):
        yield worker.acc
    for runtime in getattr(worker, "stages", ()):
        yield from runtime.stage.parts


def _worker_managers(worker):
    if getattr(worker, "manager", None) is not None:
        yield worker.manager
    for runtime in getattr(worker, "stages", ()):
        for manager in runtime.managers:
            if manager is not None:
                yield manager


def capture_accounting(workers) -> dict:
    """Snapshot repair/energy tallies before a run (see :func:`audit_serve_run`)."""
    bank_writes = 0
    repairs = 0
    refreshes = 0
    for worker in workers:
        for acc in _worker_accelerators(worker):
            bank_writes += int(acc.counters.bank_writes)
        for manager in _worker_managers(worker):
            log = manager.log
            repairs += int(log.retries + log.row_remaps + log.migrations)
            refreshes += int(log.refreshes)
    return {
        "bank_writes": bank_writes,
        "repairs": repairs,
        "refreshes": refreshes,
    }


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------
def _check_conservation(result, report) -> None:
    result.record(
        "request_conservation",
        report.conservation_ok(),
        f"submitted={report.submitted} completed={len(report.completed)} "
        f"shed={len(report.shed)}",
    )


def _check_structured_sheds(result, report) -> None:
    bad = [
        rejection.request.request_id
        for rejection in report.shed
        if not isinstance(rejection.reason, ShedReason) or not rejection.detail
    ]
    bad_decisions = [
        record["seq"]
        for record in report.decisions
        if record["kind"] == "shed"
        and record.get("reason") not in _SHED_REASONS
    ]
    result.record(
        "structured_shed_reasons",
        not bad and not bad_decisions,
        f"unreasoned requests={bad[:5]} decisions={bad_decisions[:5]}"
        if (bad or bad_decisions)
        else "",
    )


def _check_atomic_batches(result, report) -> None:
    def batches(kind):
        return sorted(
            tuple(sorted(record["requests"]))
            for record in report.decisions
            if record["kind"] == kind
        )

    dispatched = batches("dispatch")
    settled = sorted(batches("complete") + batches("batch_failed"))
    result.record(
        "atomic_batches",
        dispatched == settled,
        f"{len(dispatched)} dispatched vs {len(settled)} settled whole"
        if dispatched != settled
        else "",
    )


def _check_finite_outputs(result, report) -> None:
    bad = [
        completion.request.request_id
        for completion in report.completed
        if not np.all(np.isfinite(completion.output))
    ]
    result.record(
        "finite_outputs",
        not bad,
        f"non-finite outputs reached requests {bad[:5]}" if bad else "",
    )


def _check_repairs_charged(result, workers, pre: dict) -> None:
    post = capture_accounting(workers)
    recovery_events = (post["repairs"] - pre["repairs"]) + (
        post["refreshes"] - pre["refreshes"]
    )
    writes_delta = post["bank_writes"] - pre["bank_writes"]
    ok = recovery_events == 0 or writes_delta > 0
    result.record(
        "repairs_charged",
        ok,
        f"{recovery_events} recovery events but bank_writes delta "
        f"{writes_delta}" if not ok else "",
    )


def _worker_checkers(workers):
    for worker in workers:
        checker = getattr(worker, "integrity", None)
        if checker is not None:
            yield worker, checker


def _check_integrity(result, workers, session) -> None:
    """The `integrity` section: conserved counters + attested corruption.

    Two contracts: (a) every attestation trip resolved to exactly one
    ladder outcome (re-exec recovery, spare-confirmed false alarm, or
    escalation) on every checker; (b) when a chaos session injected
    ``silent_corrupt``, each applied injection has a matching incident —
    no finitely-corrupted batch settled unverified.
    """
    unconserved = []
    counters_total: dict[str, int] = {}
    incidents: list[dict] = []
    for worker, checker in _worker_checkers(workers):
        if not checker.counters.conserved():
            unconserved.append(worker.worker_id)
        for key, value in checker.counters.as_dict().items():
            counters_total[key] = counters_total.get(key, 0) + value
        incidents.extend(checker.incidents)
    result.record(
        "integrity_conserved",
        not unconserved,
        f"workers {unconserved[:5]} have unbalanced attestation counters"
        if unconserved
        else ", ".join(f"{k}={v}" for k, v in sorted(counters_total.items())),
    )
    if session is None:
        return
    applied = [
        record
        for record in session.applied
        if record["kind"] == "silent_corrupt"
    ]
    if not applied:
        return
    incident_keys = {
        (incident["worker"], incident["t"]) for incident in incidents
    }
    unattested = [
        record["index"]
        for record in applied
        if (record["worker"], record["at_s"]) not in incident_keys
    ]
    result.record(
        "sdc_attested",
        not unattested,
        f"silent_corrupt injections {unattested[:5]} settled with no "
        "matching attestation incident"
        if unattested
        else f"{len(applied)} injections, all attested",
    )


def _check_replay(result, report, replay) -> None:
    if report.decisions != replay.decisions:
        first = next(
            (
                i
                for i, (a, b) in enumerate(
                    zip(report.decisions, replay.decisions)
                )
                if a != b
            ),
            min(len(report.decisions), len(replay.decisions)),
        )
        result.record(
            "bit_identical_replay", False, f"decision logs diverge at seq {first}"
        )
        return
    if len(report.completed) != len(replay.completed):
        result.record(
            "bit_identical_replay",
            False,
            f"{len(report.completed)} vs {len(replay.completed)} completions",
        )
        return
    for a, b in zip(report.completed, replay.completed):
        if a.request.request_id != b.request.request_id or not np.array_equal(
            np.asarray(a.output), np.asarray(b.output)
        ):
            result.record(
                "bit_identical_replay",
                False,
                f"outputs differ for request {a.request.request_id}",
            )
            return
    result.record("bit_identical_replay", True)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def audit_serve_run(
    report,
    *,
    workers=None,
    pre_accounting: dict | None = None,
    replay=None,
    session=None,
) -> AuditResult:
    """Run the full invariant suite over one serving run.

    ``workers``/``pre_accounting`` (from :func:`capture_accounting`,
    taken *before* the run) enable the repairs-charged check; ``replay``
    (a second ``ServeReport`` from an identically seeded run) enables
    the bit-identity check; ``session`` adds an informational record of
    applied chaos.
    """
    result = AuditResult()
    _check_conservation(result, report)
    _check_structured_sheds(result, report)
    _check_atomic_batches(result, report)
    _check_finite_outputs(result, report)
    if workers is not None and pre_accounting is not None:
        _check_repairs_charged(result, workers, pre_accounting)
    if workers is not None and any(_worker_checkers(workers)):
        _check_integrity(result, workers, session)
    if replay is not None:
        _check_replay(result, report, replay)
    if session is not None:
        applied = session.applied_counts()
        result.record(
            "chaos_applied",
            True,
            ", ".join(f"{k}={v}" for k, v in sorted(applied.items())) or "none",
        )
    return result


def audit_fleet_run(
    fleet_result,
    *,
    replay=None,
    session=None,
) -> AuditResult:
    """Invariant suite for a fleet control-plane run.

    Runs every :func:`audit_serve_run` check over the run's
    ``ServeReport``, then layers the control-plane contracts on top:
    every decommissioned worker checkpointed its bank state before
    leaving the roster, the degraded-mode ladder balanced its entries
    and exits and converged back to nominal, no worker was stranded
    mid-lifecycle, and every controller actuation landed in the decision
    log.  ``fleet_result``/``replay`` are
    :class:`~repro.fleet.workload.FleetRunResult` objects.
    """
    result = audit_serve_run(
        fleet_result.report,
        replay=None if replay is None else replay.report,
        session=session,
    )
    pool = fleet_result.pool
    decommissioned = pool.ids_in("decommissioned")
    missing = [
        wid for wid in decommissioned if wid not in pool.checkpoint_digests
    ]
    result.record(
        "decommissions_checkpointed",
        not missing,
        f"workers {missing[:5]} retired without a bank-state digest"
        if missing
        else "",
    )
    counts = pool.counts()
    settled = counts["warming"] == 0 and counts["draining"] == 0
    result.record(
        "fleet_lifecycle_settled",
        settled,
        f"run ended with {counts['warming']} warming / "
        f"{counts['draining']} draining workers" if not settled else "",
    )
    controller = fleet_result.controller
    if controller is not None:
        from repro.fleet.controller import LADDER

        balanced = (
            controller.degraded_entries == controller.degraded_exits
            and LADDER[controller.rung] == "nominal"
        )
        result.record(
            "degraded_mode_converged",
            balanced,
            f"entries={controller.degraded_entries} "
            f"exits={controller.degraded_exits} "
            f"final={LADDER[controller.rung]}" if not balanced else "",
        )
        logged = sum(
            1
            for record in fleet_result.report.decisions
            if record["kind"] == "controller"
        )
        result.record(
            "actuations_logged",
            logged == len(controller.actuations),
            f"{len(controller.actuations)} actuations vs {logged} decision "
            "records" if logged != len(controller.actuations) else "",
        )
    return result
