"""Deterministic chaos injection and the soak/variability gate.

Robustness claims need adversarial evidence: this package injects
faults *on purpose* — worker crashes mid-batch, corrupted MVM outputs,
stuck-cell bursts, accelerated drift, breaker storms, bit-rotted
checkpoints, torn ledger tails, clock jitter — and then audits that the
stack's contracts (request conservation, structured sheds, atomic
batches, finite outputs, charged repairs, bit-identical replay) held
anyway.

Everything is seeded and replayable.  A :class:`ChaosPlan` is a
JSON-serializable schedule of :class:`Injection` records (compile one
from a :class:`ChaosProfile` with :func:`compile_plan`); a
:class:`~repro.chaos.session.ChaosSession` activates a plan through
explicit hook points — no monkey-patching anywhere — and logs every
applied injection.  Each injection draws from its own derived stream
(``default_rng((plan.seed, index))``), so the same (workload seed,
chaos seed) pair reproduces a run bit-for-bit, and a disabled session
costs one global read per hook (``benchmarks/bench_chaos_overhead.py``
enforces < 1% on the batched forward path).

``python -m repro soak`` sweeps the serve/shard/resume/train scenarios
across seeds with chaos on, emitting a pass/flake matrix; ``--gate``
turns any failure into a non-zero exit for CI.
"""

from repro.chaos.audit import AuditResult, audit_serve_run, capture_accounting
from repro.chaos.injectors import (
    STORM_REASON,
    apply_file_injection,
    flip_file_bit,
    make_server_action,
    tear_jsonl_tail,
)
from repro.chaos.plan import (
    CORRUPT_MODES,
    CRASH_PHASES,
    FILE_KINDS,
    INJECTION_KINDS,
    INLINE_KINDS,
    SCHEDULED_KINDS,
    ChaosPlan,
    ChaosProfile,
    Injection,
    compile_plan,
)
from repro.chaos.session import (
    ChaosSession,
    active,
    corrupt_output,
    crash_check,
    disable,
    enable,
    enabled,
    session,
)
from repro.chaos.soak import (
    MATRIX_SCHEMA,
    SCENARIO_NAMES,
    SoakConfig,
    render_matrix,
    run_cell,
    run_self_audit,
    run_soak,
    validate_matrix,
)

__all__ = [
    "AuditResult",
    "CORRUPT_MODES",
    "CRASH_PHASES",
    "ChaosPlan",
    "ChaosProfile",
    "ChaosSession",
    "FILE_KINDS",
    "INJECTION_KINDS",
    "INLINE_KINDS",
    "Injection",
    "MATRIX_SCHEMA",
    "SCENARIO_NAMES",
    "SCHEDULED_KINDS",
    "STORM_REASON",
    "SoakConfig",
    "active",
    "apply_file_injection",
    "audit_serve_run",
    "capture_accounting",
    "compile_plan",
    "corrupt_output",
    "crash_check",
    "disable",
    "enable",
    "enabled",
    "flip_file_bit",
    "make_server_action",
    "render_matrix",
    "run_cell",
    "run_self_audit",
    "run_soak",
    "session",
    "tear_jsonl_tail",
    "validate_matrix",
]
