"""Apply-side machinery: file corruptors and server-action builders.

Two delivery mechanisms exist beside the inline worker hooks:

- **Scheduled actions** — ``stuck_burst``, ``drift_burst``,
  ``breaker_storm``, and ``sabotage`` become
  :meth:`~repro.serving.server.TridentServer.schedule_action` callbacks
  (via ``install_chaos``), so they run inside the event loop at their
  planned virtual instant and land in the decision log like any other
  world change.
- **File injections** — ``checkpoint_corrupt`` and ``ledger_tear``
  damage durable state *between* process "lives"; the soak scenarios
  apply them with :func:`apply_file_injection` before a resume attempt,
  modeling bit-rot and crash-torn appends.

Every injector draws only from its injection's derived stream
(:meth:`~repro.chaos.plan.ChaosPlan.rng_for`) and records itself through
:meth:`~repro.chaos.session.ChaosSession.mark_applied`.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ChaosError

#: Reason string forced breaker trips carry (visible in transition logs).
STORM_REASON = "chaos_storm"


# ---------------------------------------------------------------------------
# File corruptors
# ---------------------------------------------------------------------------
def flip_file_bit(path: str | Path, rng) -> int:
    """Flip one random bit of ``path`` in place; returns the byte offset.

    Against a checkpoint this models bit-rot: the store's hash-verify
    must reject the file and rotation must fall back to the previous
    good snapshot.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ChaosError(f"cannot corrupt empty file {path}")
    offset = int(rng.integers(len(data)))
    data[offset] ^= 1 << int(rng.integers(8))
    path.write_bytes(bytes(data))
    return offset

def tear_jsonl_tail(path: str | Path, rng) -> int:
    """Truncate ``path`` mid-way through its final line; returns bytes cut.

    Models a crash between ``write`` and ``fsync`` on an append-only
    JSONL ledger: the torn final record must be tolerated (skipped with
    a warning) and its work re-done, never half-applied.
    """
    path = Path(path)
    data = path.read_bytes()
    body = data.rstrip(b"\n")
    line_start = body.rfind(b"\n") + 1
    if line_start == 0:
        raise ChaosError(
            f"refusing to tear {path}: only one line (the header) present"
        )
    # Cut strictly inside the final line so a partial record remains.
    cut = int(rng.integers(line_start + 1, len(body)))
    path.write_bytes(data[:cut])
    return len(data) - cut


def apply_file_injection(session, index: int, injection, path: str | Path):
    """Run one ``checkpoint_corrupt``/``ledger_tear`` against ``path``."""
    rng = session.plan.rng_for(index)
    if injection.kind == "checkpoint_corrupt":
        offset = flip_file_bit(path, rng)
        session.mark_applied(
            index, at_s=injection.t_s, path=str(path), byte_offset=offset
        )
        return offset
    if injection.kind == "ledger_tear":
        torn = tear_jsonl_tail(path, rng)
        session.mark_applied(
            index, at_s=injection.t_s, path=str(path), bytes_torn=torn
        )
        return torn
    raise ChaosError(
        f"injection #{index} ({injection.kind}) is not a file injection"
    )


# ---------------------------------------------------------------------------
# Scheduled server actions
# ---------------------------------------------------------------------------
def _worker_by_id(server, worker_id):
    for worker in server.workers:
        if worker.worker_id == worker_id:
            return worker
    raise ChaosError(
        f"chaos plan targets worker {worker_id}, which the server lacks"
    )


def _stuck_burst(session, index, injection, server):
    worker = _worker_by_id(server, injection.target)
    fraction = float(injection.params.get("fraction", 0.02))
    stuck_level = injection.params.get("stuck_level")
    rng = session.plan.rng_for(index)
    stage = injection.params.get("stage")
    if stage is not None and hasattr(worker, "degrade_stage"):
        stuck = worker.degrade_stage(
            int(stage), fraction, stuck_level=stuck_level, rng=rng
        )
    else:
        stuck = worker.degrade(fraction, stuck_level=stuck_level, rng=rng)
    session.mark_applied(
        index, at_s=server.clock.now(), worker=worker.worker_id,
        stuck_cells=int(stuck),
    )


def _iter_managers(worker):
    if getattr(worker, "manager", None) is not None:
        yield worker.manager
    for runtime in getattr(worker, "stages", ()):
        for manager in runtime.managers:
            if manager is not None:
                yield manager


def _drift_burst(session, index, injection, server):
    worker = _worker_by_id(server, injection.target)
    age_s = float(injection.params.get("age_s", 1e7))
    refreshed = sum(
        1 for manager in _iter_managers(worker) if manager.maybe_refresh(age_s)
    )
    session.mark_applied(
        index, at_s=server.clock.now(), worker=worker.worker_id,
        refreshed=refreshed,
    )


def _breaker_storm(session, index, injection, server):
    now = server.clock.now()
    tripped = 0
    for worker in server.workers:
        if injection.target is not None and worker.worker_id != injection.target:
            continue
        server.breakers[worker.worker_id].trip(now, STORM_REASON)
        tripped += 1
        for runtime in getattr(worker, "stages", ()):
            runtime.breaker.trip(now, STORM_REASON)
            tripped += 1
    session.mark_applied(index, at_s=now, tripped=tripped)


def _sabotage(session, index, injection, server):
    # Deliberately unhandled: the soak self-audit schedules this to prove
    # the harness flags a run that dies instead of recovering.
    session.mark_applied(index, at_s=server.clock.now())
    raise ChaosError(
        injection.params.get(
            "note", f"chaos injection #{index}: intentionally unhandled fault"
        )
    )


_ACTIONS = {
    "stuck_burst": _stuck_burst,
    "drift_burst": _drift_burst,
    "breaker_storm": _breaker_storm,
    "sabotage": _sabotage,
}


def make_server_action(session, index: int, injection):
    """Build the ``fn(server)`` callback for one scheduled injection."""
    try:
        impl = _ACTIONS[injection.kind]
    except KeyError:
        raise ChaosError(
            f"injection #{index} ({injection.kind}) cannot be scheduled "
            "as a server action"
        ) from None

    def action(server):
        impl(session, index, injection, server)

    return action
