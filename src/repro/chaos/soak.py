"""The soak harness behind ``repro soak``: scenario × seed × chaos.

One soak **cell** is a (scenario, seed) pair.  Each cell is executed
``repeats`` times from scratch; a cell passes only when every repeat's
post-mortem audit passes *and* every repeat produced the same run digest
(decision log + output bytes) — so both outright invariant violations
and nondeterminism show up as failures, and intermittent ones show up
as flake.  Scenarios:

- ``serve``  — the PR 5 multi-worker Poisson workload under a compiled
  chaos plan (crashes, output corruption, stuck bursts, drift, breaker
  storms, clock jitter), audited by :func:`repro.chaos.audit.audit_serve_run`
  including a full bit-identical replay.
- ``shard``  — the PR 6 pipeline worker under stage-targeted chaos,
  with the single-accelerator reference oracle asserting that no chaos
  run ever completed a request with non-reference output bytes.
- ``resume`` — a fault campaign halted mid-sweep whose JSONL ledger
  tail is torn by chaos; the resumed report must be complete and
  bit-identical to an uninterrupted baseline.
- ``train``  — a resilient training run crashed mid-way whose newest
  checkpoint is bit-flipped by chaos; recovery must skip the corrupt
  file (emitting ``checkpoint_corrupt_skipped``), fall back to the
  previous snapshot, and still finish bit-identical to an
  uninterrupted baseline.
- ``fleet``  — the PR 8 closed-loop control plane under a diurnal +
  burst multi-tenant trace with a breaker-storm volley mid-peak and a
  worker crash, audited by :func:`repro.chaos.audit.audit_fleet_run`:
  request conservation, recovery to nominal (degraded-ladder entries ==
  exits), checkpointed decommissions, and a bit-identical replay.
- ``sdc``    — the ABFT-attested serving fleet under ``silent_corrupt``
  chaos (finite corruption the non-finite gate cannot see): every
  injection must land, trip the checksum attestation, and show up
  attested in the audit; the chaos-off run of the same cell is the
  false-positive gate (zero trips).

The result is a JSON **flake matrix** (:func:`run_soak`): per-cell
verdicts, failed checks, applied-injection counts, and — for failing
cells — a telemetry snapshot from an instrumented re-run.
``--gate`` mode turns any failure into a non-zero exit;
:func:`run_self_audit` proves the gate *can* fail by running a cell
with a deliberately unhandled sabotage injection and requiring the
harness to flag it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.chaos.session import session as chaos_scope
from repro.chaos.audit import audit_serve_run, capture_accounting
from repro.chaos.injectors import apply_file_injection
from repro.chaos.plan import ChaosPlan, ChaosProfile, Injection, compile_plan
from repro.errors import ChaosError

#: Flake-matrix document schema (bump on incompatible change).
MATRIX_SCHEMA = 1

#: Scenario execution order (also the default sweep).
SCENARIO_NAMES = ("serve", "shard", "resume", "train", "fleet", "sdc")

#: Events kept in a failing cell's telemetry snapshot.
_SNAPSHOT_EVENTS = 25


@dataclasses.dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak sweep."""

    scenarios: tuple[str, ...] = SCENARIO_NAMES
    seeds: tuple[int, ...] = (0, 1, 2, 3)
    repeats: int = 2
    chaos: bool = True

    def __post_init__(self) -> None:
        unknown = [s for s in self.scenarios if s not in SCENARIO_NAMES]
        if unknown:
            raise ChaosError(
                f"unknown soak scenarios {unknown}; available: "
                f"{list(SCENARIO_NAMES)}"
            )
        if not self.scenarios:
            raise ChaosError("soak needs at least one scenario")
        if not self.seeds:
            raise ChaosError("soak needs at least one seed")
        if self.repeats < 1:
            raise ChaosError(f"repeats must be >= 1, got {self.repeats}")


def _chaos_seed(seed: int) -> int:
    # Distinct from the workload seed so the two sweeps are independent.
    return 10_000 + int(seed)


def _digest(doc, arrays=()) -> str:
    """SHA-256 over a JSON-able document plus raw array bytes."""
    h = hashlib.sha256()
    h.update(json.dumps(doc, sort_keys=True, default=str).encode("utf-8"))
    for array in arrays:
        h.update(np.ascontiguousarray(np.asarray(array)).tobytes())
    return h.hexdigest()


def _serve_digest(report) -> str:
    return _digest(
        report.decisions, arrays=[c.output for c in report.completed]
    )


# ---------------------------------------------------------------------------
# serve scenario
# ---------------------------------------------------------------------------
def _serve_workload_config(seed: int):
    from repro.serving.server import ServerConfig
    from repro.serving.workload import Phase, WorkloadConfig

    return WorkloadConfig(
        n_workers=2,
        seed=int(seed),
        phases=(
            Phase("warm", 80, 0.6),
            Phase("burst", 80, 2.0),
            Phase("drain", 80, 0.35),
        ),
        server=ServerConfig(
            max_queue_depth=64,
            max_batch=16,
            slo_latency_s=1e-5,
            max_retries=2,
            retry_backoff_s=5e-7,
            retry_jitter_s=1e-7,
            breaker_failure_threshold=3,
            breaker_cooldown_s=5e-6,
            seed=int(seed),
        ),
    )


def _serve_exec(seed: int, chaos_enabled: bool, sabotage: bool = False):
    """One full serving run (fresh fleet); returns run artifacts."""
    from repro.serving.server import TridentServer
    from repro.serving.workload import (
        build_worker,
        sustainable_rate_hz,
        synthesize_arrivals,
    )

    config = _serve_workload_config(seed)
    workers = [
        build_worker(i, config.dims, config.seed + 101 * i)
        for i in range(config.n_workers)
    ]
    server = TridentServer(workers, config=config.server)
    rate = sustainable_rate_hz(workers, config.server.max_batch)
    rng = np.random.default_rng(config.seed)
    arrivals, _ = synthesize_arrivals(config, rate, rng)
    window_s = arrivals[-1].arrival_s
    pre = capture_accounting(workers)
    if not chaos_enabled:
        report = server.run(arrivals)
        return report, workers, pre, None
    plan = compile_plan(
        ChaosProfile(
            window_s=window_s,
            workers=tuple(range(config.n_workers)),
            crashes=2,
            corruptions=1,
            stuck_bursts=1,
            drift_bursts=1,
            breaker_storms=1,
            stuck_fraction=0.05,
            stuck_level=254,
            clock_jitter_s=1e-8,
        ),
        _chaos_seed(seed),
    )
    if sabotage:
        plan = ChaosPlan(
            seed=plan.seed,
            injections=plan.injections
            + (
                Injection(
                    0.5 * window_s,
                    "sabotage",
                    None,
                    {"note": "soak self-audit: intentionally unhandled fault"},
                ),
            ),
            clock_jitter_s=plan.clock_jitter_s,
        )
    with chaos_scope(plan) as session:
        server.install_chaos(session)
        report = server.run(arrivals)
    return report, workers, pre, session


def _run_serve(seed: int, chaos_enabled: bool, sabotage: bool = False) -> dict:
    report, workers, pre, session = _serve_exec(seed, chaos_enabled, sabotage)
    replay_report, _, _, replay_session = _serve_exec(
        seed, chaos_enabled, sabotage
    )
    result = audit_serve_run(
        report,
        workers=workers,
        pre_accounting=pre,
        replay=replay_report,
        session=session,
    )
    failed = result.failed()
    applied = session.applied_counts() if session is not None else {}
    if session is not None and session.applied != replay_session.applied:
        failed.append("chaos_replay: applied injections differ between runs")
    return {
        "ok": not failed,
        "failed": failed,
        "digest": _serve_digest(report),
        "applied": applied,
        "detail": {
            "submitted": report.submitted,
            "completed": len(report.completed),
            "shed": report.shed_by_reason(),
            "retries": report.retries_scheduled,
        },
    }


# ---------------------------------------------------------------------------
# shard scenario
# ---------------------------------------------------------------------------
def _shard_workload_config(seed: int):
    from repro.serving.server import ServerConfig
    from repro.serving.shard_workload import ShardWorkloadConfig

    return dataclasses.replace(
        ShardWorkloadConfig(),
        seed=int(seed),
        n_requests=64,
        server=ServerConfig(
            max_queue_depth=512,
            max_batch=16,
            slo_latency_s=1e-5,
            max_retries=5,
            retry_backoff_s=5e-7,
            retry_jitter_s=1e-7,
            breaker_failure_threshold=3,
            breaker_cooldown_s=5e-6,
            seed=int(seed),
        ),
    )


def _shard_exec(seed: int, chaos_enabled: bool):
    from repro.serving.server import TridentServer
    from repro.serving.shard_workload import (
        build_pipeline_worker,
        plan_workload,
        synthesize_shard_arrivals,
    )

    config = _shard_workload_config(seed)
    worker = build_pipeline_worker(config, overlap=True)
    server = TridentServer([worker], config=config.server)
    arrivals = synthesize_shard_arrivals(config)
    pre = capture_accounting([worker])
    if not chaos_enabled:
        report = server.run(arrivals)
        return config, report, [worker], pre, None
    n_stages = plan_workload(config).n_stages
    plan = compile_plan(
        ChaosProfile(
            window_s=config.arrival_window_s * 2.0,
            workers=(0,),
            stages=tuple(range(n_stages)),
            crashes=1,
            corruptions=1,
            stuck_bursts=1,
            drift_bursts=0,
            breaker_storms=1,
            stuck_fraction=0.04,
            stuck_level=254,
            clock_jitter_s=1e-8,
        ),
        _chaos_seed(seed),
    )
    with chaos_scope(plan) as session:
        server.install_chaos(session)
        report = server.run(arrivals)
    return config, report, [worker], pre, session


def _run_shard(seed: int, chaos_enabled: bool) -> dict:
    from repro.serving.shard_workload import outputs_bit_identical

    config, report, workers, pre, session = _shard_exec(seed, chaos_enabled)
    _, replay_report, _, _, replay_session = _shard_exec(seed, chaos_enabled)
    result = audit_serve_run(
        report,
        workers=workers,
        pre_accounting=pre,
        replay=replay_report,
        session=session,
    )
    result.record(
        "reference_oracle_outputs",
        outputs_bit_identical(config, report),
        "a completed output differs from the single-accelerator reference",
    )
    failed = [f for f in result.failed() if not f.startswith("reference_oracle")]
    if not outputs_bit_identical(config, report):
        failed.append(
            "reference_oracle_outputs: completed output differs from reference"
        )
    applied = session.applied_counts() if session is not None else {}
    if session is not None and session.applied != replay_session.applied:
        failed.append("chaos_replay: applied injections differ between runs")
    return {
        "ok": not failed,
        "failed": failed,
        "digest": _serve_digest(report),
        "applied": applied,
        "detail": {
            "submitted": report.submitted,
            "completed": len(report.completed),
            "shed": report.shed_by_reason(),
            "retries": report.retries_scheduled,
        },
    }


# ---------------------------------------------------------------------------
# resume scenario (torn campaign ledger)
# ---------------------------------------------------------------------------
def _run_resume(seed: int, chaos_enabled: bool) -> dict:
    from repro.faults.campaign import (
        CampaignConfig,
        resume_campaign,
        run_campaign,
    )

    config = dataclasses.replace(CampaignConfig.smoke(), seed=int(seed))
    baseline = run_campaign(config)
    failed: list[str] = []
    applied: dict[str, int] = {}
    with tempfile.TemporaryDirectory(prefix="repro-soak-resume-") as tmp:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_campaign(config, checkpoint_dir=tmp, max_cells=2)
            ledger = Path(tmp) / "campaign_cells.jsonl"
            if not ledger.exists():
                failed.append("campaign_ledger_missing")
            torn = 0
            if chaos_enabled and ledger.exists():
                plan = ChaosPlan(
                    seed=_chaos_seed(seed),
                    injections=(Injection(0.0, "ledger_tear"),),
                )
                with chaos_scope(plan) as session:
                    torn = apply_file_injection(
                        session, 0, plan.injections[0], ledger
                    )
                applied = session.applied_counts()
                if torn <= 0:
                    failed.append("ledger_tear: no bytes torn")
            resumed = resume_campaign(tmp)
    if not resumed.complete:
        failed.append("resume_incomplete: cells missing after resume")
    if resumed.clean_accuracy != baseline.clean_accuracy:
        failed.append("clean_accuracy_drift")
    base_rows = sorted(
        (row.as_dict() for row in baseline.rows),
        key=lambda d: (d["fraction"], d["policy"], d["trial"]),
    )
    resumed_rows = sorted(
        (row.as_dict() for row in resumed.rows),
        key=lambda d: (d["fraction"], d["policy"], d["trial"]),
    )
    if base_rows != resumed_rows:
        failed.append(
            "resume_divergence: resumed rows differ from uninterrupted baseline"
        )
    return {
        "ok": not failed,
        "failed": failed,
        "digest": _digest({"rows": resumed_rows, "clean": resumed.clean_accuracy}),
        "applied": applied,
        "detail": {"cells": len(resumed.rows), "torn": bool(chaos_enabled)},
    }


# ---------------------------------------------------------------------------
# train scenario (bit-rotted checkpoint)
# ---------------------------------------------------------------------------
def _train_trainer(seed: int, directory: str):
    from repro.arch import TridentAccelerator, TridentConfig
    from repro.devices.program_verify import ProgramVerifyConfig
    from repro.runtime import ResilienceConfig, ResilientTrainer
    from repro.training.insitu import InSituTrainer

    dims = [6, 8, 3]
    rows = max(dims)
    acc = TridentAccelerator(
        config=TridentConfig(
            bank_rows=rows, bank_cols=rows, spare_rows=2, convergence_floor=0.0
        ),
        seed=int(seed),
        program_verify=ProgramVerifyConfig(),
    )
    acc.map_mlp(dims)
    rng = np.random.default_rng(seed + 1)
    acc.set_weights(
        [
            rng.normal(0.0, 0.4, (dims[i + 1], dims[i]))
            for i in range(len(dims) - 1)
        ]
    )
    return ResilientTrainer(
        InSituTrainer(acc, lr=0.05),
        directory,
        config=ResilienceConfig(checkpoint_every=2),
    )


def _train_data(seed: int):
    from repro.nn.datasets import Dataset, make_blobs, standardize

    raw = make_blobs(n_samples=48, n_features=6, n_classes=3, seed=seed + 2)
    return Dataset(x=np.clip(standardize(raw.x) / 3, -1, 1), y=raw.y)


def _run_train(seed: int, chaos_enabled: bool) -> dict:
    from repro.runtime.checkpoint import CheckpointStore

    steps, crash_after = 8, 5
    data = _train_data(seed)
    failed: list[str] = []
    applied: dict[str, int] = {}
    with tempfile.TemporaryDirectory(prefix="repro-soak-train-base-") as base:
        baseline = _train_trainer(seed, base).run(
            data, steps=steps, batch_size=8, seed=seed + 3
        )
    with tempfile.TemporaryDirectory(prefix="repro-soak-train-") as tmp:
        _train_trainer(seed, tmp).run(
            data,
            steps=steps,
            batch_size=8,
            seed=seed + 3,
            max_steps_this_run=crash_after,
        )
        store = CheckpointStore(tmp)
        steps_on_disk = store.steps()
        if len(steps_on_disk) < 2:
            failed.append(
                f"train_setup: need >= 2 checkpoints before corruption, "
                f"got {steps_on_disk}"
            )
        if chaos_enabled and steps_on_disk:
            newest = store.path_for(steps_on_disk[-1])
            plan = ChaosPlan(
                seed=_chaos_seed(seed),
                injections=(Injection(0.0, "checkpoint_corrupt"),),
            )
            with chaos_scope(plan) as session:
                apply_file_injection(session, 0, plan.injections[0], newest)
            applied = session.applied_counts()
        with telemetry.session() as t, warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = _train_trainer(seed, tmp).run(
                data, steps=steps, batch_size=8, seed=seed + 3, resume=True
            )
        skip_events = t.events.of_kind("checkpoint_corrupt_skipped")
    if not resumed.completed:
        failed.append(f"resume_aborted: {resumed.aborted_reason}")
    if chaos_enabled:
        if not skip_events:
            failed.append(
                "corrupt_skip_unobserved: no checkpoint_corrupt_skipped event"
            )
        if (
            steps_on_disk
            and resumed.resumed_from_step is not None
            and resumed.resumed_from_step >= steps_on_disk[-1]
        ):
            failed.append(
                "corrupt_not_skipped: resume used the bit-flipped checkpoint"
            )
    if resumed.losses != baseline.losses:
        failed.append(
            "train_divergence: resumed losses differ from uninterrupted baseline"
        )
    return {
        "ok": not failed,
        "failed": failed,
        "digest": _digest(
            {"final_loss": repr(baseline.final_loss)},
            arrays=[np.asarray(resumed.losses)],
        ),
        "applied": applied,
        "detail": {
            "resumed_from_step": resumed.resumed_from_step,
            "rollbacks": resumed.rollbacks,
            "corrupt_skips": len(skip_events),
        },
    }


# ---------------------------------------------------------------------------
# fleet scenario
# ---------------------------------------------------------------------------
def _fleet_scenario(seed: int):
    """A shrunk fleet run (soak cells must stay cheap): same shape as the
    smoke scenario — diurnal + burst + storm volley — at ~40% the horizon."""
    from repro.fleet import Burst, smoke_scenario

    base = smoke_scenario(int(seed))
    duration = 4e-4
    trace = dataclasses.replace(
        base.trace,
        duration_s=duration,
        base_rate_x=1.2,
        bursts=(Burst(0.38 * duration, 0.08 * duration, 1.7),),
    )
    return dataclasses.replace(base, name="soak-fleet", trace=trace)


def _fleet_plan(scenario):
    """Smoke's mid-peak breaker-storm volley plus one targeted crash on a
    bootstrap worker (ids 0/1 are floor workers and never decommission)."""
    from repro.fleet import smoke_chaos_plan

    plan = smoke_chaos_plan(scenario)
    crash = Injection(
        0.25 * scenario.trace.duration_s,
        "worker_crash",
        0,
        {"phase": "dispatch"},
    )
    return ChaosPlan(
        seed=plan.seed, injections=plan.injections + (crash,)
    )


def _fleet_exec(seed: int, chaos_enabled: bool):
    from repro.fleet import run_fleet_workload

    scenario = _fleet_scenario(seed)
    plan = _fleet_plan(scenario) if chaos_enabled else None
    return run_fleet_workload(scenario, controlled=True, chaos_plan=plan)


def _run_fleet(seed: int, chaos_enabled: bool) -> dict:
    """Gate: conservation + recovery-to-nominal + bit-identical replay.

    Storm/crash times here are fixed fractions of the horizon, but the
    *trace* varies per seed, so degraded-mode depth and scaling activity
    vary by cell — the audit gates on the always-true contracts (ladder
    entries == exits ending nominal, every decommission checkpointed,
    conservation, replay), not on smoke's exact-episode counts.
    """
    from repro.chaos.audit import audit_fleet_run
    from repro.fleet import fleet_digest

    result = _fleet_exec(seed, chaos_enabled)
    replay = _fleet_exec(seed, chaos_enabled)
    audit = audit_fleet_run(result, replay=replay)
    failed = audit.failed()
    if result.chaos_applied != replay.chaos_applied:
        failed.append("chaos_replay: applied injections differ between runs")
    applied: dict[str, int] = {}
    for record in result.chaos_applied:
        applied[record["kind"]] = applied.get(record["kind"], 0) + 1
    controller = result.controller
    return {
        "ok": not failed,
        "failed": failed,
        "digest": fleet_digest(result),
        "applied": applied,
        "detail": {
            "submitted": result.report.submitted,
            "completed": len(result.report.completed),
            "shed": result.report.shed_by_reason(),
            "fleet": result.pool.counts(),
            "scale_ups": controller.scale_up_events,
            "scale_downs": controller.scale_down_events,
            "degraded_entries": controller.degraded_entries,
        },
    }


# ---------------------------------------------------------------------------
# sdc scenario (ABFT attestation under silent corruption)
# ---------------------------------------------------------------------------
def _sdc_workload_config(seed: int):
    from repro.integrity import IntegrityWorkloadConfig

    # Shrunk request count: soak cells must stay cheap, and the
    # attestation arc needs batches, not queue pressure.
    return dataclasses.replace(
        IntegrityWorkloadConfig(), seed=int(seed), n_requests=96
    )


def _sdc_exec(seed: int, chaos_enabled: bool):
    from repro.integrity import make_sdc_plan, run_integrity_workload

    config = _sdc_workload_config(seed)
    plan = None
    if chaos_enabled:
        # run_integrity_workload calls the factory with the computed
        # arrival span, which is not known before the fleet is built.
        def plan(window_s):
            """Chaos-plan factory: size the plan to the arrival span."""
            return make_sdc_plan(config, window_s)

    return config, run_integrity_workload(config, chaos_plan=plan)


def _run_sdc(seed: int, chaos_enabled: bool) -> dict:
    """Gate: injections land + trip + attest, zero trips when clean.

    The heavy invariants (conservation, ladder-counter accounting,
    ``sdc_attested``, bit-identical replay) come from
    :func:`~repro.chaos.audit.audit_serve_run`'s integrity section; the
    checks added here are the scenario-specific ones — that the chaos
    actually exercised the defense.
    """
    config, result = _sdc_exec(seed, chaos_enabled)
    _, replay = _sdc_exec(seed, chaos_enabled)
    audit = audit_serve_run(
        result.report,
        workers=result.workers,
        pre_accounting=result.pre_accounting,
        replay=replay.report,
        session=result.session,
    )
    failed = audit.failed()
    if (
        result.session is not None
        and replay.session is not None
        and result.session.applied != replay.session.applied
    ):
        failed.append("chaos_replay: applied injections differ between runs")
    applied = result.session.applied_counts() if result.session else {}
    counters = result.counters_total()
    n_injected = applied.get("silent_corrupt", 0)
    if chaos_enabled and n_injected < config.silent_corruptions:
        failed.append(
            f"sdc_injection: only {n_injected}/{config.silent_corruptions} "
            "silent corruptions landed inside the run"
        )
    if counters.get("tripped", 0) < n_injected:
        failed.append(
            f"sdc_detection: {n_injected} corruptions landed but only "
            f"{counters.get('tripped', 0)} attestation trips"
        )
    if not chaos_enabled and counters.get("tripped", 0):
        failed.append("sdc_false_positive: clean run tripped the checksum")
    return {
        "ok": not failed,
        "failed": failed,
        "digest": _serve_digest(result.report),
        "applied": applied,
        "detail": {
            "submitted": result.report.submitted,
            "completed": len(result.report.completed),
            "shed": result.report.shed_by_reason(),
            "retries": result.report.retries_scheduled,
            "attestation": counters,
        },
    }


_SCENARIOS = {
    "serve": _run_serve,
    "shard": _run_shard,
    "resume": _run_resume,
    "train": _run_train,
    "fleet": _run_fleet,
    "sdc": _run_sdc,
}


# ---------------------------------------------------------------------------
# Cell driver + matrix
# ---------------------------------------------------------------------------
def _guarded(scenario: str, seed: int, chaos_enabled: bool, **kwargs) -> dict:
    """Run one scenario attempt; an escaped exception is a failed run."""
    try:
        return _SCENARIOS[scenario](seed, chaos_enabled, **kwargs)
    except Exception as exc:  # noqa: BLE001 - any escape is the finding
        return {
            "ok": False,
            "failed": [f"unhandled {type(exc).__name__}: {exc}"],
            "digest": "",
            "applied": {},
            "detail": {},
        }


def _telemetry_snapshot(scenario: str, seed: int, chaos_enabled: bool) -> dict:
    """Instrumented re-run of a failing cell: recent events for the matrix."""
    with telemetry.session() as t:
        rerun = _guarded(scenario, seed, chaos_enabled)
    events = [e.as_dict() for e in t.events.records[-_SNAPSHOT_EVENTS:]]
    return {"failed": rerun["failed"], "events": events}


def run_cell(
    scenario: str, seed: int, repeats: int, chaos_enabled: bool
) -> dict:
    """Execute one (scenario, seed) cell ``repeats`` times and verdict it."""
    start = time.perf_counter()
    runs = [_guarded(scenario, seed, chaos_enabled) for _ in range(repeats)]
    digests = {run["digest"] for run in runs}
    failed = sorted({f for run in runs for f in run["failed"]})
    if len(digests) > 1:
        failed.append(
            f"nondeterministic: {len(digests)} distinct digests over "
            f"{repeats} repeats"
        )
    ok = all(run["ok"] for run in runs) and len(digests) == 1
    cell = {
        "scenario": scenario,
        "seed": int(seed),
        "ok": ok,
        "repeats": repeats,
        "digest": sorted(digests)[0] if len(digests) == 1 else "",
        "failed_checks": failed,
        "injections_applied": runs[0]["applied"],
        "detail": runs[0]["detail"],
        "duration_s": time.perf_counter() - start,
        "telemetry": None,
    }
    if not ok:
        cell["telemetry"] = _telemetry_snapshot(scenario, seed, chaos_enabled)
    return cell


def run_soak(config: SoakConfig | None = None, progress=None) -> dict:
    """Run the full sweep; returns the flake-matrix document."""
    config = config or SoakConfig()
    cells = []
    for scenario in config.scenarios:
        for seed in config.seeds:
            cell = run_cell(scenario, seed, config.repeats, config.chaos)
            cells.append(cell)
            if progress is not None:
                progress(cell)
    return {
        "schema": MATRIX_SCHEMA,
        "chaos": bool(config.chaos),
        "repeats": int(config.repeats),
        "scenarios": list(config.scenarios),
        "seeds": [int(s) for s in config.seeds],
        "cells": cells,
        "flaky": any(not cell["ok"] for cell in cells),
    }


def run_self_audit(seed: int = 0) -> dict:
    """Prove the harness can fail: a sabotaged cell must be flagged.

    Runs the serve scenario with an extra deliberately unhandled
    injection; the gate is only trustworthy if this cell comes back
    failing (with the sabotage named in its checks).
    """
    outcome = _guarded("serve", seed, True, sabotage=True)
    detected = not outcome["ok"] and any(
        "unhandled" in f.lower() or "sabotage" in f.lower()
        for f in outcome["failed"]
    )
    return {
        "ok": detected,
        "sabotaged_cell_failed": not outcome["ok"],
        "failed_checks": outcome["failed"],
    }


# ---------------------------------------------------------------------------
# Matrix schema + rendering
# ---------------------------------------------------------------------------
def validate_matrix(doc: dict) -> list[str]:
    """Structural self-check of a flake matrix; returns problems found."""
    problems: list[str] = []
    for key in ("schema", "chaos", "repeats", "scenarios", "seeds", "cells",
                "flaky"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if doc["schema"] != MATRIX_SCHEMA:
        problems.append(f"schema {doc['schema']!r} != {MATRIX_SCHEMA}")
    expected = {
        (scenario, int(seed))
        for scenario in doc["scenarios"]
        for seed in doc["seeds"]
    }
    got = {(cell.get("scenario"), cell.get("seed")) for cell in doc["cells"]}
    if expected != got:
        problems.append(
            f"cell coverage mismatch: missing {sorted(expected - got)}, "
            f"extra {sorted(got - expected)}"
        )
    for cell in doc["cells"]:
        where = f"cell {cell.get('scenario')}/{cell.get('seed')}"
        for key in ("ok", "repeats", "digest", "failed_checks",
                    "injections_applied", "duration_s", "telemetry"):
            if key not in cell:
                problems.append(f"{where}: missing {key!r}")
        if cell.get("ok") is False and not cell.get("failed_checks"):
            problems.append(f"{where}: failed without naming a check")
        if cell.get("ok") is True and not cell.get("digest"):
            problems.append(f"{where}: passed without a run digest")
    if doc["flaky"] != any(not cell["ok"] for cell in doc["cells"]):
        problems.append("flaky flag disagrees with cell verdicts")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"matrix is not JSON-serializable: {exc}")
    return problems


def render_matrix(doc: dict) -> str:
    """Console table: scenarios × seeds, plus failed-check detail lines."""
    from repro.eval.formatting import format_table

    by_key = {
        (cell["scenario"], cell["seed"]): cell for cell in doc["cells"]
    }
    rows = []
    for scenario in doc["scenarios"]:
        row = [scenario]
        for seed in doc["seeds"]:
            cell = by_key[(scenario, seed)]
            row.append("pass" if cell["ok"] else "FAIL")
        rows.append(row)
    title = (
        f"soak matrix (chaos {'on' if doc['chaos'] else 'off'}, "
        f"{doc['repeats']} repeats/cell)"
    )
    text = format_table(
        ["scenario"] + [f"seed {s}" for s in doc["seeds"]], rows, title=title
    )
    failing = [cell for cell in doc["cells"] if not cell["ok"]]
    for cell in failing:
        text += (
            f"\nFAIL {cell['scenario']} seed {cell['seed']}: "
            + "; ".join(cell["failed_checks"])
        )
    return text
