"""Compiled, JSON-serializable chaos schedules.

A :class:`ChaosPlan` is the *entire* chaos a run will experience,
decided ahead of time: a seed, an optional clock-jitter amplitude, and a
time-sorted tuple of :class:`Injection` records.  Nothing is drawn at
apply time from shared state — each injection that needs randomness
derives its own generator from ``(plan.seed, injection_index)``, so the
order in which hook points consume injections (or the thread that
happens to execute a batch) cannot perturb replay.  Two runs driven by
the same workload seed and the same plan are bit-identical.

Plans are plain data: ``as_dict``/``from_dict`` round-trip through JSON
losslessly, so a failing soak cell can ship its plan in the flake matrix
and anyone can replay it.

:func:`compile_plan` is the standard generator: given a
:class:`ChaosProfile` (how much of each failure kind, over which window,
against which workers/stages) and a chaos seed, it draws the schedule.
Hand-built plans are equally valid — the dataclasses validate kinds,
times, and parameters on construction.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.errors import ChaosError

#: Every injection kind the hook points understand.  ``worker_crash`` and
#: ``corrupt_output`` are consumed inline by worker execute hooks;
#: ``stuck_burst``/``drift_burst``/``breaker_storm``/``sabotage`` become
#: scheduled server actions; ``checkpoint_corrupt``/``ledger_tear`` are
#: file injections applied by the soak scenarios between process "lives".
INJECTION_KINDS = (
    "worker_crash",
    "corrupt_output",
    "silent_corrupt",
    "stuck_burst",
    "drift_burst",
    "breaker_storm",
    "checkpoint_corrupt",
    "ledger_tear",
    "sabotage",
)

#: Kinds wired into the server event loop via ``install_chaos``.
SCHEDULED_KINDS = ("stuck_burst", "drift_burst", "breaker_storm", "sabotage")

#: Kinds consumed inline by worker/stage execute hooks.
INLINE_KINDS = ("worker_crash", "corrupt_output", "silent_corrupt")

#: Kinds applied to files on disk by scenario harnesses.
FILE_KINDS = ("checkpoint_corrupt", "ledger_tear")

#: Valid ``phase`` parameter values for ``worker_crash``.
CRASH_PHASES = ("dispatch", "drain")

#: Valid ``mode`` parameter values for output corruption.  ``nan`` is
#: the historical poison (caught by the finite-output gate and the
#: default for ``corrupt_output``, so pre-existing plans replay
#: bit-identically); the finite modes produce plausible-but-wrong
#: numbers that sail through the finite gate — exactly the silent data
#: corruption the ABFT attestation exists to catch.  ``silent_corrupt``
#: defaults to ``bias``.
CORRUPT_MODES = ("nan", "bias", "scale", "sign_flip")


@dataclasses.dataclass(frozen=True)
class Injection:
    """One timed fault: *what* happens, *when*, and *to which target*.

    ``target`` is a worker id for serving injections (``None`` matches
    any worker at the hook point) and is unused for file injections.
    ``params`` carries kind-specific knobs — e.g. ``phase`` for crashes,
    ``fraction``/``stuck_level`` for stuck bursts, ``stage`` for
    pipeline-stage bursts.
    """

    t_s: float
    kind: str
    target: int | None = None
    params: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in INJECTION_KINDS:
            raise ChaosError(
                f"unknown injection kind {self.kind!r}; expected one of "
                f"{INJECTION_KINDS}"
            )
        if not self.t_s >= 0.0:
            raise ChaosError(f"injection time must be >= 0, got {self.t_s}")
        if self.kind == "worker_crash":
            phase = self.params.get("phase", "dispatch")
            if phase not in CRASH_PHASES:
                raise ChaosError(
                    f"worker_crash phase must be one of {CRASH_PHASES}, "
                    f"got {phase!r}"
                )
        if self.kind in ("corrupt_output", "silent_corrupt"):
            default = "nan" if self.kind == "corrupt_output" else "bias"
            mode = self.params.get("mode", default)
            if mode not in CORRUPT_MODES:
                raise ChaosError(
                    f"{self.kind} mode must be one of {CORRUPT_MODES}, "
                    f"got {mode!r}"
                )
            if self.kind == "silent_corrupt" and mode == "nan":
                raise ChaosError(
                    "silent_corrupt must stay finite (NaN poison is "
                    "corrupt_output's job); pick a finite mode"
                )
            magnitude = self.params.get("magnitude", 4.0)
            if not float(magnitude) > 0:
                raise ChaosError(
                    f"corruption magnitude must be positive, got {magnitude}"
                )

    def as_dict(self) -> dict:
        """JSON-safe record (inverse of :meth:`from_dict`)."""
        return {
            "t_s": float(self.t_s),
            "kind": self.kind,
            "target": self.target,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Injection":
        """Rebuild from :meth:`as_dict` output (validates)."""
        try:
            return cls(
                t_s=float(doc["t_s"]),
                kind=str(doc["kind"]),
                target=None if doc.get("target") is None else int(doc["target"]),
                params=dict(doc.get("params", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"malformed injection record: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A seed plus the full time-sorted injection schedule for one run."""

    seed: int
    injections: tuple[Injection, ...] = ()
    clock_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.clock_jitter_s < 0:
            raise ChaosError(
                f"clock jitter must be >= 0, got {self.clock_jitter_s}"
            )
        object.__setattr__(
            self,
            "injections",
            tuple(
                sorted(self.injections, key=lambda inj: (inj.t_s, inj.kind))
            ),
        )

    def counts(self) -> dict[str, int]:
        """Injection count per kind (for reports and audits)."""
        out: dict[str, int] = {}
        for injection in self.injections:
            out[injection.kind] = out.get(injection.kind, 0) + 1
        return out

    def rng_for(self, index: int) -> np.random.Generator:
        """The derived generator injection ``index`` must draw from.

        Keyed on ``(seed, index)`` so every injection owns an
        independent stream regardless of consumption order.
        """
        if not 0 <= index < len(self.injections):
            raise ChaosError(
                f"injection index {index} out of range "
                f"[0, {len(self.injections)})"
            )
        return np.random.default_rng((int(self.seed), int(index)))

    def as_dict(self) -> dict:
        """JSON-safe document (inverse of :meth:`from_dict`)."""
        return {
            "seed": int(self.seed),
            "clock_jitter_s": float(self.clock_jitter_s),
            "injections": [inj.as_dict() for inj in self.injections],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ChaosPlan":
        """Rebuild from :meth:`as_dict` output (validates)."""
        try:
            return cls(
                seed=int(doc["seed"]),
                clock_jitter_s=float(doc.get("clock_jitter_s", 0.0)),
                injections=tuple(
                    Injection.from_dict(d) for d in doc.get("injections", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"malformed chaos plan: {exc}") from exc

    def to_json(self, path: str | Path) -> Path:
        """Write the plan as a JSON file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2), encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "ChaosPlan":
        """Load a plan previously written by :meth:`to_json`."""
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ChaosError(f"unreadable chaos plan {path}: {exc}") from exc
        return cls.from_dict(doc)


@dataclasses.dataclass(frozen=True)
class ChaosProfile:
    """Knobs for :func:`compile_plan`: how much chaos, where, over when.

    ``workers`` are the serving worker ids injections may target;
    ``stages`` (pipeline stage indices) routes stuck bursts at sharded
    stages instead of whole workers when non-empty.
    """

    window_s: float
    workers: tuple[int, ...] = (0,)
    stages: tuple[int, ...] = ()
    crashes: int = 2
    corruptions: int = 1
    silent_corruptions: int = 0
    stuck_bursts: int = 1
    drift_bursts: int = 0
    breaker_storms: int = 1
    stuck_fraction: float = 0.02
    stuck_level: int | None = None
    drift_age_s: float = 1e7
    clock_jitter_s: float = 0.0
    corrupt_magnitude: float = 4.0

    def __post_init__(self) -> None:
        if not self.window_s > 0:
            raise ChaosError(f"window must be positive, got {self.window_s}")
        if not self.workers:
            raise ChaosError("profile needs at least one target worker id")
        if not self.corrupt_magnitude > 0:
            raise ChaosError(
                f"corrupt magnitude must be positive, "
                f"got {self.corrupt_magnitude}"
            )
        for name in (
            "crashes",
            "corruptions",
            "silent_corruptions",
            "stuck_bursts",
            "drift_bursts",
            "breaker_storms",
        ):
            if getattr(self, name) < 0:
                raise ChaosError(f"{name} must be >= 0")
        if not 0.0 < self.stuck_fraction <= 1.0:
            raise ChaosError(
                f"stuck fraction must be in (0, 1], got {self.stuck_fraction}"
            )


def compile_plan(profile: ChaosProfile, seed: int) -> ChaosPlan:
    """Draw a full schedule from ``profile`` under chaos seed ``seed``.

    All randomness (times, targets, crash phases) comes from a single
    generator keyed on the seed, so the *plan itself* is reproducible;
    apply-time randomness then comes from per-injection derived streams
    (:meth:`ChaosPlan.rng_for`).
    """
    rng = np.random.default_rng(int(seed))
    window = float(profile.window_s)
    injections: list[Injection] = []

    def draw_t() -> float:
        # Keep injections inside (5%, 95%) of the window so they land
        # while the workload is actually running.
        return float(rng.uniform(0.05 * window, 0.95 * window))

    def draw_worker() -> int:
        return int(rng.choice(profile.workers))

    for _ in range(profile.crashes):
        phase = CRASH_PHASES[int(rng.integers(len(CRASH_PHASES)))]
        injections.append(
            Injection(draw_t(), "worker_crash", draw_worker(), {"phase": phase})
        )
    for _ in range(profile.corruptions):
        injections.append(
            Injection(draw_t(), "corrupt_output", draw_worker(), {})
        )
    # Drawn after the legacy kinds and only when requested, so profiles
    # predating silent_corrupt compile to bit-identical plans.
    finite_modes = [m for m in CORRUPT_MODES if m != "nan"]
    for _ in range(profile.silent_corruptions):
        mode = finite_modes[int(rng.integers(len(finite_modes)))]
        injections.append(
            Injection(
                draw_t(),
                "silent_corrupt",
                draw_worker(),
                {"mode": mode, "magnitude": float(profile.corrupt_magnitude)},
            )
        )
    for _ in range(profile.stuck_bursts):
        params = {
            "fraction": float(profile.stuck_fraction),
            "stuck_level": profile.stuck_level,
        }
        if profile.stages:
            params["stage"] = int(rng.choice(profile.stages))
        injections.append(
            Injection(draw_t(), "stuck_burst", draw_worker(), params)
        )
    for _ in range(profile.drift_bursts):
        injections.append(
            Injection(
                draw_t(),
                "drift_burst",
                draw_worker(),
                {"age_s": float(profile.drift_age_s)},
            )
        )
    for _ in range(profile.breaker_storms):
        injections.append(Injection(draw_t(), "breaker_storm", None, {}))

    return ChaosPlan(
        seed=int(seed),
        injections=tuple(injections),
        clock_jitter_s=float(profile.clock_jitter_s),
    )
