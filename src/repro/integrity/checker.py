"""Output attestation and the SDC escalation ladder.

:class:`IntegrityChecker` wraps one accelerator's
:class:`~repro.integrity.abft.ChecksumUnit`;
:class:`PipelineChecker` wraps every part accelerator of a
:class:`~repro.sharding.pipeline.ShardedPipeline`.  Both expose the same
surface — ``verify`` / ``digital_ok`` / ``reexecute`` /
``rewrite_and_recalibrate`` — so :func:`attest_batch` can run the same
ladder for single-chip and sharded workers:

1. **Verify.**  Analog checksum residuals against calibrated
   thresholds.  Clean → done (the overwhelmingly common path: one
   checksum-row MVM per layer, benched < 5% of the forward).
2. **Re-execute once.**  Transients (and consumed one-shot chaos
   injections) don't repeat; a clean second pass settles the batch and
   counts as ``reexec_recovered``.
3. **Digital-spare cross-check.**  The control unit's weight shadow
   recomputes the checksum exactly.  If the *digital* check passes, the
   data path is fine and the analog checksum row itself is the faulty
   element — a false alarm, accepted as ``spare_confirmed`` (and worth a
   rewrite at the next repair sweep).
4. **Escalate.**  Both passes dirty and the spare agrees the output is
   wrong: raise :class:`~repro.errors.IntegrityFault` (a retryable
   ``WorkerFault``) so the server retries the batch on a *peer* worker,
   the breaker records the failure, and the rollup's SDC-rate signal
   feeds fleet quarantine.

Counter conservation — ``tripped == reexec_recovered + spare_confirmed
+ escalated`` and ``checks >= tripped`` — is a post-run audit invariant
(:func:`repro.chaos.audit.audit_serve_run`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import telemetry
from repro.errors import IntegrityError, IntegrityFault
from repro.integrity.abft import ChecksumUnit, IntegrityConfig


@dataclasses.dataclass
class IntegrityCounters:
    """Attestation outcome tallies (conserved; audited post-run)."""

    checks: int = 0
    tripped: int = 0
    reexec_recovered: int = 0
    spare_confirmed: int = 0
    escalated: int = 0

    def conserved(self) -> bool:
        """Every trip resolved to exactly one ladder outcome."""
        return (
            self.tripped
            == self.reexec_recovered + self.spare_confirmed + self.escalated
            and self.checks >= self.tripped
        )

    def as_dict(self) -> dict:
        """JSON-safe counter snapshot."""
        return dataclasses.asdict(self)


class IntegrityChecker:
    """ABFT attestation for a single accelerator worker."""

    def __init__(
        self, acc, config: IntegrityConfig | None = None, seed: int = 0
    ) -> None:
        self.config = config or IntegrityConfig()
        self.unit = ChecksumUnit(acc, self.config, seed=seed)
        self.unit.calibrate()
        self.counters = IntegrityCounters()
        #: Escalated/recovered SDC incidents, for the post-run audit.
        self.incidents: list[dict] = []

    def verify(self, outputs: np.ndarray):
        """Analog checksum violations for the last recorded forward."""
        return self.unit.violations(outputs)

    def digital_ok(self, outputs: np.ndarray) -> bool:
        """Exact digital-shadow checksum verdict (the rung-3 spare)."""
        return self.unit.digital_ok(outputs)

    def reexecute(self, xs: np.ndarray) -> np.ndarray:
        """Second forward pass for the rung-2 transient check."""
        return self.unit.acc.forward_batch(xs, record=True)

    def rewrite_and_recalibrate(self) -> None:
        """Re-track the data tiles after a repair sweep.

        Repair rewrites data tiles (possibly onto migrated PEs) and may
        leave residual degradation within budget; the checksum rows must
        follow the new deployment and the thresholds must re-baseline
        against it, or every post-repair batch would trip.
        """
        self.unit.rewrite()
        self.unit.calibrate()


class PipelineChecker:
    """ABFT attestation for every part of a sharded pipeline.

    One :class:`ChecksumUnit` per part accelerator, each with a seed
    derived from ``(seed, stage, part)`` so calibration draws are
    independent but replay-stable.  ``verify`` checks hidden layers from
    their recordings and maps the worker's final outputs back onto the
    last stage's row-sharded column ranges.
    """

    def __init__(
        self, pipeline, config: IntegrityConfig | None = None, seed: int = 0
    ) -> None:
        self.config = config or IntegrityConfig()
        self.pipeline = pipeline
        self.units: list[list[ChecksumUnit]] = []
        for s, stage in enumerate(pipeline.stages):
            row = []
            for p, part in enumerate(stage.parts):
                unit = ChecksumUnit(
                    part, self.config, seed=hash((seed, s, p)) & 0x7FFFFFFF
                )
                unit.calibrate()
                row.append(unit)
            self.units.append(row)
        self.counters = IntegrityCounters()
        self.incidents: list[dict] = []

    def _final_slices(self):
        """(unit, col0, col1) per part of the last stage."""
        stage_units = self.units[-1]
        parts = self.pipeline.stages[-1].parts
        col = 0
        for part, unit in zip(parts, stage_units):
            width = part.layers[-1].out_dim
            yield unit, col, col + width
            col += width

    def verify(self, outputs: np.ndarray):
        """Checksum violations across every stage/part of the pipeline."""
        violations = []
        for s, (stage, row) in enumerate(zip(self.pipeline.stages, self.units)):
            last = s == len(self.units) - 1
            if last:
                for p, (unit, c0, c1) in enumerate(self._final_slices()):
                    violations.extend(
                        unit.violations(outputs[:, c0:c1], stage=s, part=p)
                    )
            else:
                for p, unit in enumerate(row):
                    violations.extend(unit.violations(stage=s, part=p))
        return violations

    def digital_ok(self, outputs: np.ndarray) -> bool:
        """Exact digital-shadow verdict over every stage/part."""
        for s, row in enumerate(self.units):
            last = s == len(self.units) - 1
            if last:
                for unit, c0, c1 in self._final_slices():
                    if not unit.digital_ok(outputs[:, c0:c1]):
                        return False
            else:
                for unit in row:
                    if not unit.digital_ok(None):
                        return False
        return True

    def reexecute(self, xs: np.ndarray) -> np.ndarray:
        """Replay the batch through all stages for the rung-2 check."""
        value = xs
        for stage in self.pipeline.stages:
            value = stage.forward_batch(value, record=True)
        return value

    def rewrite_and_recalibrate(self) -> None:
        """Re-track every part's checksum rows after a repair sweep."""
        for row in self.units:
            for unit in row:
                unit.rewrite()
                unit.calibrate()


def attest_batch(
    checker,
    xs: np.ndarray,
    outputs: np.ndarray,
    *,
    worker_id: int,
    now_s: float,
    manager=None,
) -> np.ndarray:
    """Run the escalation ladder over one executed batch.

    Returns the attested outputs (the re-executed batch when rung 2
    recovered) or raises :class:`~repro.errors.IntegrityFault`.  The
    ``manager`` (or, for sharded workers, an iterable of managers) gets
    escalations charged to its repair log so worker health reflects SDC
    history.
    """
    counters = checker.counters
    with telemetry.trace_span("integrity_check", worker=worker_id):
        counters.checks += 1
        violations = checker.verify(outputs)
        if not violations:
            return outputs
        counters.tripped += 1
        telemetry.counter(
            "repro_sdc_detected_total",
            "ABFT checksum violations detected",
        ).inc()
        detail = [v.as_dict() for v in violations]
        telemetry.emit_event(
            "sdc_detected", worker=worker_id, t_s=now_s, violations=detail
        )

        # Rung 2: transients don't repeat — re-execute once and re-verify.
        retried = checker.reexecute(xs)
        if not checker.verify(retried):
            counters.reexec_recovered += 1
            checker.incidents.append(
                {
                    "t": now_s,
                    "worker": worker_id,
                    "action": "reexec_recovered",
                    "violations": detail,
                }
            )
            return retried

        # Rung 3: the digital spare arbitrates — if the exact shadow
        # checksum passes, the analog checksum row is the broken part,
        # not the data path.
        if checker.digital_ok(retried):
            counters.spare_confirmed += 1
            checker.incidents.append(
                {
                    "t": now_s,
                    "worker": worker_id,
                    "action": "spare_confirmed",
                    "violations": detail,
                }
            )
            return retried

        # Rung 4: corrupt beyond local recovery — fail the batch over to
        # a peer and feed every health signal.
        counters.escalated += 1
        telemetry.counter(
            "repro_sdc_escalations_total",
            "SDC incidents escalated to peer retry",
        ).inc()
        checker.incidents.append(
            {
                "t": now_s,
                "worker": worker_id,
                "action": "escalated",
                "violations": detail,
            }
        )
        managers = manager if isinstance(manager, (list, tuple)) else [manager]
        for m in managers:
            if m is not None:
                m.note_sdc()
        raise IntegrityFault(
            f"worker {worker_id}: batch failed ABFT attestation after "
            f"re-execution and digital cross-check "
            f"({len(detail)} layer violation(s))"
        )


__all__ = [
    "IntegrityChecker",
    "IntegrityCounters",
    "IntegrityError",
    "IntegrityFault",
    "PipelineChecker",
    "attest_batch",
]
