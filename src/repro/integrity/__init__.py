"""Algorithm-based fault tolerance (ABFT) for the photonic data path.

The analog MVM fails *finitely*: drift, stuck cells, and readout
corruption produce plausible-but-wrong numbers that sail through the
serving layer's finite-output gate.  This package closes that hole with
the Huang–Abraham checksum construction adapted to the PCM-MRR banks:

- :class:`~repro.integrity.abft.ChecksumUnit` programs each mapped
  layer's column-sum row onto dedicated checksum PEs (bank-column
  aligned, outside the layer's data tiles) and calibrates per-layer
  **noise-aware thresholds** — an analytic quantization bound plus a
  margin over the worst residual of a seeded calibration pass on the
  realized banks — so clean runs never trip.
- :class:`~repro.integrity.checker.IntegrityChecker` /
  :class:`~repro.integrity.checker.PipelineChecker` attest every
  executed batch via :func:`~repro.integrity.checker.attest_batch`'s
  escalation ladder: verify → re-execute once → digital-spare
  cross-check → retryable :class:`~repro.errors.IntegrityFault` that
  feeds breaker, rollup SDC-rate, and fleet quarantine.
- :func:`~repro.integrity.workload.run_integrity_workload` and
  :func:`~repro.integrity.workload.smoke_checks` back the
  ``repro integrity --smoke`` CI gate: injected ``silent_corrupt``
  chaos is provably caught (none settles unverified, per the audit),
  clean seeds never trip, and checked runs replay bit-identically.
"""

from repro.errors import IntegrityError, IntegrityFault
from repro.integrity.abft import ChecksumUnit, IntegrityConfig, Violation
from repro.integrity.checker import (
    IntegrityChecker,
    IntegrityCounters,
    PipelineChecker,
    attest_batch,
)
from repro.integrity.workload import (
    IntegrityWorkloadConfig,
    build_integrity_worker,
    make_sdc_plan,
    run_integrity_workload,
    smoke_checks,
)

__all__ = [
    "ChecksumUnit",
    "IntegrityChecker",
    "IntegrityConfig",
    "IntegrityCounters",
    "IntegrityError",
    "IntegrityFault",
    "IntegrityWorkloadConfig",
    "PipelineChecker",
    "Violation",
    "attest_batch",
    "build_integrity_worker",
    "make_sdc_plan",
    "run_integrity_workload",
    "smoke_checks",
]
